"""Telemetry under rescale churn: no leaked instruments, stable identity,
no dangling open spans (satellite for the autoscaler PR).

Rescaling creates and retires operator instances; the registry keys
instruments by (kind, name, labels) where labels are stable operator /
instance *names*, so repeated scale cycles must converge to a fixed
instrument set rather than growing one instrument per rescale.  The
tracer's per-track open-span stacks must likewise drain once every
subscale has settled.
"""

from repro.autoscale import ScalingSignals
from repro.core.drrs import DRRSController
from tests.helpers import build_keyed_job, drive


def _churned_job():
    """Drive a job through 2 -> 4 -> 2 -> 4 -> 2 rescale cycles while a
    signals sampler runs, and return everything the tests inspect."""
    job = drive(build_keyed_job(state_bytes_per_group=4e5), until=14.0,
                record_gap=0.004)
    job.enable_telemetry()
    drrs = DRRSController(job)
    signals = ScalingSignals(job, "agg")
    counts = []
    identity_probe = {}

    def sampler():
        while job.sim.now < 15.0:
            yield job.sim.timeout(0.25)
            signals.sample()

    def churn():
        reg = job.telemetry.registry
        yield job.sim.timeout(1.0)
        identity_probe["counter"] = reg.counter("churn.probe", op="agg")
        identity_probe["pre_set"] = set(map(id, reg.instruments()))
        for target in (4, 2, 4, 2):
            done = drrs.request_rescale("agg", target)
            yield done
            yield job.sim.timeout(0.6)
            counts.append(len(reg.instruments()))

    job.sim.spawn(sampler(), name="sampler")
    job.sim.spawn(churn(), name="churn")
    job.run(until=16.0)
    return job, signals, counts, identity_probe


def test_rescale_churn_does_not_leak_instruments():
    job, signals, counts, probe = _churned_job()
    assert len(counts) == 4, "not every rescale completed"
    # Labels are stable operator/instance/channel names, so the instrument
    # universe is bounded by the (bounded) instance-pair label space: once
    # every migration path has been exercised the set must stop growing —
    # the final out/in cycle may not mint a single new instrument.
    assert counts[3] == counts[2], (
        f"instrument set grew across identical cycles: {counts}")
    # Get-or-create identity survives churn.
    reg = job.telemetry.registry
    assert reg.counter("churn.probe", op="agg") is probe["counter"]
    # Every pre-churn instrument is still the same object (never
    # re-created behind callers' backs).
    post_set = set(map(id, reg.instruments()))
    assert probe["pre_set"] <= post_set


def test_no_open_spans_after_churn_settles():
    job, signals, counts, probe = _churned_job()
    tracer = job.telemetry.tracer
    dangling = {track: [s.name for s in stack]
                for track, stack in tracer._open.items() if stack}
    assert not dangling, f"open spans left after churn: {dangling}"
    # Sanity: churn actually produced rescale/transfer spans to begin with.
    assert any(s.category == "migration" for s in tracer.spans)
    assert any(s.category == "transfer" for s in tracer.spans)


def test_busy_cursor_prunes_retired_instances():
    job, signals, counts, probe = _churned_job()
    # Final parallelism is 2; cursors for the retired instances 2 and 3
    # must have been dropped on the next sample after scale-in.
    signals.sample()
    assert len(signals._busy_cursor) == len(job.instances("agg")) == 2
