"""Span-derived phase breakdown vs the controller's ScalingMetrics.

The acceptance bar for the telemetry subsystem: the decomposition computed
purely from spans must agree with the ground-truth ScalingMetrics the
figures are built from (Fig. 12/13's propagation/suspension split).
"""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.telemetry import migration_breakdown, phase_rows

TOL = 1e-9


def traced_rescale(config=None, new_parallelism=4):
    job = build_keyed_job()
    telemetry = job.enable_telemetry()
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job, config or DRRSConfig())
    done = controller.request_rescale("agg", new_parallelism)
    job.run(until=30.0)
    assert done.triggered
    return job, controller, telemetry


def test_propagation_delay_matches_scaling_metrics():
    _job, controller, telemetry = traced_rescale()
    breakdown = migration_breakdown(telemetry)
    assert breakdown["cumulative_propagation_delay_s"] == pytest.approx(
        controller.metrics.cumulative_propagation_delay(), abs=TOL)


def test_suspension_matches_scaling_metrics():
    _job, controller, telemetry = traced_rescale()
    breakdown = migration_breakdown(telemetry)
    assert breakdown["total_suspension_s"] == pytest.approx(
        controller.metrics.total_suspension(), abs=TOL)


def test_breakdown_covers_every_subscale_and_byte():
    _job, controller, telemetry = traced_rescale()
    breakdown = migration_breakdown(telemetry)
    assert breakdown["op"] == "agg"
    assert breakdown["controller"] == "drrs"
    assert breakdown["num_subscales"] == len(controller.metrics.injections)
    # Wave-level bytes equal transfer-level bytes: the same state moved.
    assert sum(w["bytes_moved"] for w in breakdown["waves"]) == (
        pytest.approx(breakdown["bytes_moved"]))
    # Every migrated key-group shows up in exactly one wave.
    covered = sorted(kg for w in breakdown["waves"]
                     for kg in w["key_groups"])
    assert covered == sorted(set(covered))
    assert breakdown["decouple_s"] > 0
    assert breakdown["duration_s"] == pytest.approx(
        controller.metrics.duration, abs=TOL)


def test_breakdown_selects_scale_by_id():
    job = build_keyed_job()
    telemetry = job.enable_telemetry()
    drive(job, until=35.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done1 = controller.request_rescale("agg", 4)
    job.run(until=20.0)
    assert done1.triggered
    done2 = controller.request_rescale("agg", 3)
    job.run(until=40.0)
    assert done2.triggered
    first = migration_breakdown(telemetry, scale_id=1)
    latest = migration_breakdown(telemetry)
    assert first["scale_id"] == 1
    assert latest["scale_id"] == 2
    assert latest["start"] >= first["end"]


def test_breakdown_raises_without_rescale():
    job = build_keyed_job()
    telemetry = job.enable_telemetry()
    drive(job, until=2.0)
    job.run(until=3.0)
    with pytest.raises(ValueError):
        migration_breakdown(telemetry)


def test_phase_rows_aggregate():
    _job, _controller, telemetry = traced_rescale()
    rows = phase_rows(telemetry)
    by_key = {(r["category"], r["name"]): r for r in rows}
    transfer = by_key[("transfer", "state-transfer")]
    assert transfer["count"] > 0
    assert transfer["total_s"] >= transfer["max_s"] >= transfer["mean_s"] \
        >= transfer["min_s"] >= 0
    only = phase_rows(telemetry, category="transfer")
    assert {r["category"] for r in only} == {"transfer"}
