"""Tracer semantics: spans, nesting, capacity, and determinism."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.core.drrs import DRRSController
from repro.simulation.kernel import Simulator
from repro.telemetry import Tracer, to_jsonl_lines


def test_span_lifecycle_and_attrs():
    sim = Simulator()
    tracer = Tracer(sim)
    span = tracer.begin("phase", category="c", track="t", a=1)
    assert not span.closed and span.duration == 0.0
    tracer.end(span, b=2)
    assert span.closed
    assert span.attrs == {"a": 1, "b": 2}
    with pytest.raises(ValueError):
        tracer.end(span)


def test_implicit_nesting_per_track():
    sim = Simulator()
    tracer = Tracer(sim)
    outer = tracer.begin("outer", track="t")
    inner = tracer.begin("inner", track="t")
    other = tracer.begin("elsewhere", track="u")
    assert inner.parent_id == outer.span_id
    assert other.parent_id is None
    tracer.end(inner)
    sibling = tracer.begin("sibling", track="t")
    assert sibling.parent_id == outer.span_id


def test_complete_records_retroactive_interval():
    sim = Simulator()
    tracer = Tracer(sim)
    span = tracer.complete("stall", category="suspension", track="agg[0]",
                           start=1.5, end=2.0)
    assert span.closed and span.duration == pytest.approx(0.5)
    with pytest.raises(ValueError):
        tracer.complete("bad", start=2.0, end=1.0)


def test_capacity_drops_latest_deterministically():
    sim = Simulator()
    tracer = Tracer(sim, capacity=3)
    kept = [tracer.begin(f"s{i}", track="t") for i in range(3)]
    overflow = tracer.begin("s3", track="t")
    dropped_instant = tracer.instant("i0", track="t")
    assert tracer.dropped == 2
    assert overflow.span_id == 0  # placeholder, not recorded
    assert dropped_instant is None
    assert len(tracer.spans) == 3
    tracer.end(overflow)  # placeholder end() is a harmless no-op
    for span in kept:
        tracer.end(span)
    assert all(s.closed for s in tracer.spans)


def test_closed_spans_filter_and_order():
    sim = Simulator()
    tracer = Tracer(sim)
    a = tracer.complete("x", category="c", track="t", start=2.0, end=3.0)
    b = tracer.complete("x", category="c", track="t", start=1.0, end=4.0)
    tracer.complete("y", category="d", track="t", start=0.0, end=1.0)
    tracer.begin("x", category="c", track="t")  # open: excluded
    spans = tracer.closed_spans(category="c", name="x")
    assert spans == [b, a]  # (start, span_id) order


def _traced_rescale():
    job = build_keyed_job()
    telemetry = job.enable_telemetry()
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=30.0)
    assert done.triggered
    return job, controller, telemetry


def test_identically_seeded_runs_trace_identically():
    job1, _c1, tel1 = _traced_rescale()
    job2, _c2, tel2 = _traced_rescale()
    assert job1.sim.events_processed == job2.sim.events_processed
    assert to_jsonl_lines(tel1) == to_jsonl_lines(tel2)
    assert tel1.registry.snapshot() == tel2.registry.snapshot()


def test_telemetry_does_not_perturb_simulation():
    """Bit-identical determinism: enabling the tracer (without the opt-in
    sampler) changes neither the event count nor any delivered record."""
    def run(enable):
        job = build_keyed_job()
        if enable:
            job.enable_telemetry()
        drive(job, until=25.0)
        job.run(until=5.0)
        controller = DRRSController(job)
        controller.request_rescale("agg", 4)
        job.run(until=30.0)
        return job

    plain, traced = run(False), run(True)
    assert plain.sim.events_processed == traced.sim.events_processed
    assert (plain.metrics.total_sink_input()
            == traced.metrics.total_sink_input())
    assert plain.metrics.latency_samples == traced.metrics.latency_samples


def test_kernel_dispatch_counter_matches_events_processed():
    # events_processed counts only dispatches that did work: superseded
    # schedule positions back themselves out via Simulator.discount(),
    # which the probe mirrors with its own (monotone) counter.
    job, _controller, telemetry = _traced_rescale()
    snap = telemetry.registry.snapshot()
    dispatched = snap["sim.events_dispatched"]
    discounted = snap.get("sim.events_discounted", 0)
    assert dispatched - discounted == job.sim.events_processed


def test_sampler_is_opt_in_and_samples():
    job = build_keyed_job()
    telemetry = job.enable_telemetry(sample_interval=0.5)
    drive(job, until=4.0)
    job.run(until=5.0)
    samples = telemetry.tracer.events_named("queue.sample")
    assert samples, "sampler produced no queue.sample instants"
    assert {e.category for e in samples} == {"sampling"}
