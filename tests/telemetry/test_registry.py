"""Metrics registry semantics: instruments, labels, snapshots, diffs."""

import math

import pytest

from repro.telemetry import MetricsRegistry, diff_snapshots


def test_counter_get_or_create_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("records", operator="agg")
    b = reg.counter("records", operator="agg")
    c = reg.counter("records", operator="map")
    assert a is b
    assert a is not c
    a.inc()
    a.inc(4)
    assert a.value == 5.0
    assert c.value == 0.0


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_label_order_is_irrelevant():
    reg = MetricsRegistry()
    a = reg.counter("x", op="agg", channel="c0")
    b = reg.counter("x", channel="c0", op="agg")
    assert a is b


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("depth", instance="agg[0]")
    g.set(7)
    g.add(-2)
    assert g.value == 5


def test_histogram_buckets_and_mean():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(55.55)
    assert h.mean == pytest.approx(55.55 / 4)
    cumulative = h.cumulative()
    assert cumulative == [(0.1, 1), (1.0, 2), (10.0, 3), (math.inf, 4)]


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("bad", buckets=(1.0, 0.1))


def test_snapshot_keys_and_shapes():
    reg = MetricsRegistry()
    reg.counter("records", operator="agg").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("lat", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["records{operator=agg}"] == 3.0
    assert snap["depth"] == 2.0
    assert snap["lat"]["count"] == 1
    assert snap["lat"]["buckets"][-1] == ["inf", 1]


def test_snapshot_order_independent_of_creation_order():
    reg1, reg2 = MetricsRegistry(), MetricsRegistry()
    for op in ("b", "a", "c"):
        reg1.counter("records", operator=op).inc(2)
    for op in ("c", "b", "a"):
        reg2.counter("records", operator=op).inc(2)
    assert reg1.snapshot() == reg2.snapshot()
    assert list(reg1.snapshot()) == list(reg2.snapshot())


def test_diff_snapshots():
    reg = MetricsRegistry()
    c = reg.counter("records")
    h = reg.histogram("lat", buckets=(1.0,))
    before = reg.snapshot()
    c.inc(5)
    h.observe(0.2)
    reg.counter("fresh").inc()  # appears only in `after`
    reg.gauge("idle")           # unchanged: omitted from the diff
    diff = diff_snapshots(before, reg.snapshot())
    assert diff["records"] == 5.0
    assert diff["fresh"] == 1.0
    assert diff["lat"] == {"count": 1, "sum": pytest.approx(0.2)}
    assert "idle" not in diff
