"""Exporters: Chrome trace golden properties, JSONL, summary tables."""

import json
import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.core.drrs import DRRSController
from repro.telemetry import (migration_breakdown, phase_summary_table,
                             to_chrome_trace, write_chrome_trace,
                             write_jsonl)

DRRS_PHASE_NAMES = {"rescale", "decouple", "state-transfer", "suspended",
                    "signal.injected"}


def traced_rescale():
    job = build_keyed_job()
    telemetry = job.enable_telemetry()
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=30.0)
    assert done.triggered
    return job, controller, telemetry


def test_chrome_trace_golden(tmp_path):
    """The exported file is valid JSON in Trace Event Format and contains
    every DRRS phase name on properly-mapped tracks."""
    _job, _controller, telemetry = traced_rescale()
    path = tmp_path / "trace.json"
    write_chrome_trace(telemetry, str(path))
    doc = json.loads(path.read_text())

    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["droppedRecords"] == 0
    assert isinstance(doc["metrics"], dict)

    names = {e["name"] for e in events}
    assert DRRS_PHASE_NAMES <= names
    assert any(n.startswith("subscale-") for n in names)

    # Metadata maps every tid to a track name; every event lands on one.
    thread_names = {e["tid"]: e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert complete and instants
    for e in complete + instants:
        assert e["tid"] in thread_names
        assert e["pid"] == 1
        assert e["ts"] >= 0
    for e in complete:
        assert e["dur"] >= 0

    # Operator instances appear as their own tracks.
    assert any(t.startswith("agg[") for t in thread_names.values())
    # All attrs survived JSON round-tripping (json.loads above proves
    # serialisability; spot-check a rescale arg).
    rescale = next(e for e in complete if e["name"] == "rescale")
    assert rescale["args"]["op"] == "agg"
    assert rescale["args"]["new_parallelism"] == 4


def test_chrome_trace_export_is_pure():
    _job, _controller, telemetry = traced_rescale()
    doc1 = to_chrome_trace(telemetry)
    doc2 = to_chrome_trace(telemetry)
    assert doc1 == doc2
    assert len(telemetry.tracer.spans) == len(
        [e for e in doc1["traceEvents"] if e["ph"] == "X"]), \
        "every span was closed by the end of this scenario"


def test_jsonl_lines_parse_and_sorted(tmp_path):
    _job, _controller, telemetry = traced_rescale()
    path = tmp_path / "spans.jsonl"
    write_jsonl(telemetry, str(path))
    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert records
    spans = [r for r in records if r["kind"] == "span"]
    starts = [r["start"] for r in spans]
    assert starts == sorted(starts)
    assert {r["name"] for r in spans} >= (DRRS_PHASE_NAMES
                                          - {"signal.injected"})


def test_phase_summary_table_renders():
    _job, _controller, telemetry = traced_rescale()
    table = phase_summary_table(telemetry)
    assert "state-transfer" in table
    assert "decouple" in table
    assert "suspension" in table


def test_breakdown_waves_reach_the_table(capsys):
    # The CLI trace handler renders waves from the same breakdown dict.
    _job, _controller, telemetry = traced_rescale()
    breakdown = migration_breakdown(telemetry)
    assert breakdown["num_subscales"] == len(breakdown["waves"])
    for wave in breakdown["waves"]:
        assert wave["bytes_moved"] > 0
        assert wave["end"] >= wave["start"]
