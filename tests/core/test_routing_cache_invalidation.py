"""Sender-side routing-cache invalidation across rescale and rollback.

The batched record plane makes the key-group -> channel cache on every
``OutputEdge`` hotter (bursts resolve a channel once per run, not per
record), so a stale entry surviving a routing swap would steer whole
batches at the wrong owner.  These tests pin the two bulk-swap paths that
must sweep the caches: the DRRS subscale routing swap and
``abort_and_rollback``.
"""

import sys

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController


def _assert_caches_match_assignment(job, op_name):
    """Every cached key-group -> channel entry agrees with the sender's
    routing table, which agrees with the authoritative assignment."""
    assignment = job.assignments[op_name].as_dict()
    for _sender, edge in job.senders_to(op_name):
        for kg, channel in edge._channel_cache.items():
            assert edge.channels[edge.routing_table[kg]] is channel, (
                f"stale cache entry for kg {kg}")
            assert edge.routing_table[kg] == assignment[kg], (
                f"sender table for kg {kg} disagrees with assignment")


def test_post_swap_records_land_on_new_owner():
    """Rescale mid-stream under the batched plane: records emitted after
    the routing swap must be processed by the new owners."""
    job = build_keyed_job()
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig())
    done = controller.request_rescale("agg", 4)
    job.run(until=15.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")

    instances = job.instances("agg")
    before = [inst.records_processed for inst in instances]
    job.run(until=25.0)
    fresh = [inst.records_processed - b
             for inst, b in zip(instances, before)]
    assignment = job.assignments["agg"].as_dict()
    moved = [kg for kg, owner in assignment.items() if owner >= 2]
    assert moved, "the rescale moved no key-groups to the new instances"
    assert any(fresh[i] > 0 for i in range(2, 4)), (
        f"new owners processed nothing post-swap: {fresh}")
    _assert_caches_match_assignment(job, "agg")


def test_abort_and_rollback_sweeps_sender_caches():
    """Aborting mid-scale drops every sender cache targeting the operator,
    and records after the revert land back at the restored sources."""
    job = build_keyed_job()
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig())
    controller.request_rescale("agg", 4)
    job.run(until=5.05)
    assert controller.active, "scale finished before the abort window"
    # Warm the caches so the sweep has something real to drop.
    for _sender, edge in job.senders_to("agg"):
        for kg in edge.routing_table:
            edge._channel_cache[kg] = edge.channels[edge.routing_table[kg]]

    controller.abort_and_rollback(reason="test", retry=False)
    for _sender, edge in job.senders_to("agg"):
        assert not edge._channel_cache, (
            "abort_and_rollback left a warm sender cache behind")

    job.run(until=12.0)
    assert_assignment_consistent(job, "agg")
    _assert_caches_match_assignment(job, "agg")
