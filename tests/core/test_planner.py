"""Subscale division and greedy scheduling (C1, §III-C / §IV-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import Subscale, SubscalePlanner
from repro.engine import KeyGroupAssignment
from repro.scaling import MigrationPlan


def plan(n=32, old=2, new=4):
    return MigrationPlan.uniform("op", KeyGroupAssignment(n, old), new)


def test_divide_covers_all_moves_once():
    p = plan()
    subscales = SubscalePlanner(num_subscales=6).divide(p)
    covered = [kg for s in subscales for kg in s.key_groups]
    assert sorted(covered) == p.migrating_groups


def test_divide_single_path_per_subscale():
    p = plan()
    for s in SubscalePlanner(num_subscales=6).divide(p):
        for kg in s.key_groups:
            move = p.move_for(kg)
            assert (move.src_index, move.dst_index) == (s.src_index,
                                                        s.dst_index)


def test_divide_lexicographic_within_path():
    p = plan()
    for s in SubscalePlanner(num_subscales=4).divide(p):
        assert s.key_groups == sorted(s.key_groups)


def test_divide_one_subscale_is_one_chunk_per_path():
    p = plan()
    subscales = SubscalePlanner(num_subscales=1).divide(p)
    assert len(subscales) == len(p.by_path())


def test_divide_empty_plan():
    p = MigrationPlan("op", 2, 4, [], KeyGroupAssignment(8, 4))
    assert SubscalePlanner().divide(p) == []


def test_planner_rejects_bad_args():
    with pytest.raises(ValueError):
        SubscalePlanner(num_subscales=0)
    with pytest.raises(ValueError):
        SubscalePlanner(max_concurrent_per_node=0)


def _subscale(sid, src, dst, kgs):
    return Subscale(subscale_id=sid, key_groups=list(kgs),
                    src_index=src, dst_index=dst)


def test_pick_next_prefers_fewest_held_keys():
    planner = SubscalePlanner(max_concurrent_per_node=2)
    pending = [_subscale(0, 0, 2, [1]), _subscale(1, 0, 3, [2])]
    node_of = {0: "n0", 2: "n2", 3: "n3"}
    held = {2: 10, 3: 0}
    pick = planner.pick_next(pending, {}, held, node_of)
    assert pick.subscale_id == 1  # instance 3 holds fewest keys


def test_pick_next_respects_concurrency_threshold():
    planner = SubscalePlanner(max_concurrent_per_node=2)
    pending = [_subscale(0, 0, 2, [1])]
    node_of = {0: "n0", 2: "n2"}
    assert planner.pick_next(pending, {"n0": 2}, {}, node_of) is None
    assert planner.pick_next(pending, {"n0": 1}, {}, node_of) is not None


def test_pick_next_same_node_counts_twice():
    planner = SubscalePlanner(max_concurrent_per_node=2)
    pending = [_subscale(0, 0, 1, [1])]
    node_of = {0: "shared", 1: "shared"}
    # src+dst on the same node consume two of the two slots
    assert planner.pick_next(pending, {}, {}, node_of) is not None
    assert planner.pick_next(pending, {"shared": 1}, {}, node_of) is None


def test_subscale_lifecycle_flags():
    s = _subscale(0, 0, 1, [1, 2])
    s.expected_predecessors = {10, 11}
    assert not s.launched and not s.aligned and not s.done
    s.launched_at = 1.0
    s.arrived_predecessors = {10, 11}
    assert s.aligned and not s.done
    s.migrated_groups = {1, 2}
    assert s.migrated and s.done


@given(n=st.integers(4, 256), old=st.integers(1, 6), extra=st.integers(1, 6),
       k=st.integers(1, 32))
@settings(max_examples=60, deadline=None)
def test_divide_partition_property(n, old, extra, k):
    new = old + extra
    if n < new:
        return
    p = MigrationPlan.uniform("op", KeyGroupAssignment(n, old), new)
    subscales = SubscalePlanner(num_subscales=k).divide(p)
    seen = set()
    for s in subscales:
        assert s.key_groups, "no empty subscales"
        for kg in s.key_groups:
            assert kg not in seen
            seen.add(kg)
    assert seen == set(p.migrating_groups)
    ids = [s.subscale_id for s in subscales]
    assert ids == sorted(set(ids))
