"""Scale Executor unit behaviour: classification, barriers, epochs (B1-B4)."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job  # noqa: E402

from repro.core.barriers import ConfirmBarrier, TriggerBarrier
from repro.core.drrs import DRRSConfig, DRRSController
from repro.core.executor import BLOCKED, INTERNAL, READY, ScaleExecutor
from repro.core.planner import Subscale
from repro.engine import Record, StateStatus, Watermark


def make_setup(record_scheduling=True):
    job = build_keyed_job(num_key_groups=8, agg_parallelism=2)
    job.start()
    controller = DRRSController(job, DRRSConfig(
        record_scheduling=record_scheduling))
    controller._op_name = "agg"
    src, dst = job.instances("agg")
    ex_src = ScaleExecutor(controller, src)
    ex_dst = ScaleExecutor(controller, dst)
    controller._executors = {id(src): ex_src, id(dst): ex_dst}
    subscale = Subscale(subscale_id=0, key_groups=[0, 1], src_index=0,
                        dst_index=1)
    subscale.expected_predecessors = {111, 222}
    ex_src.register_out(subscale)
    ex_dst.expect_subscale(subscale)
    return job, controller, src, dst, ex_src, ex_dst, subscale


def test_expect_subscale_registers_incoming_groups():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    for kg in (0, 1):
        group = dst.state.group(kg)
        assert group is not None
        assert group.status is StateStatus.INCOMING


def test_classify_untouched_group_is_ready():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    assert ex_src.classify(None, Record(key="x", key_group=5)) == READY
    assert ex_dst.classify(None, Record(key="x", key_group=5)) == READY


def test_classify_non_keyed_elements_ready():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    assert ex_src.classify(None, Watermark(timestamp=1.0)) == READY


def test_classify_src_states():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    record = Record(key="x", key_group=0)
    # Before the trigger: LOCAL → still processable.
    assert ex_src.classify(None, record) == READY
    src.state.group(0).status = StateStatus.PENDING_OUT
    assert ex_src.classify(None, record) == READY
    src.state.group(0).status = StateStatus.MIGRATED_OUT
    assert ex_src.classify(None, record) == INTERNAL  # re-route


def test_classify_dst_waits_for_bytes_then_alignment():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup(
        record_scheduling=False)
    record = Record(key="x", key_group=0)
    assert ex_dst.classify(None, record) == BLOCKED       # INCOMING
    dst.state.group(0).status = StateStatus.INACTIVE
    assert ex_dst.classify(None, record) == BLOCKED       # not aligned
    subscale.arrived_predecessors = {111, 222}
    ex_dst.activate_subscale(subscale)
    assert ex_dst.classify(None, record) == READY         # LOCAL now


def test_confirm_barrier_is_internal_at_src():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    barrier = ConfirmBarrier(subscale_id=0, predecessor_id=111)
    assert ex_src.classify(None, barrier) == INTERNAL


def test_on_trigger_marks_pending_and_spawns_once():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    started = []
    controller.start_subscale_migration = lambda s: started.append(s)
    trigger = TriggerBarrier(subscale_id=0, key_groups=(0, 1))
    ex_src.on_trigger(trigger)
    ex_src.on_trigger(trigger)  # duplicate from the other predecessor
    assert started == [subscale]
    assert src.state.group(0).status is StateStatus.PENDING_OUT
    assert src.state.group(1).status is StateStatus.PENDING_OUT


def test_rerouted_confirm_drives_implicit_alignment():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    dst.state.group(0).status = StateStatus.INACTIVE
    ex_dst.on_rerouted_confirm(ConfirmBarrier(
        subscale_id=0, predecessor_id=111, rerouted=True))
    assert not subscale.aligned
    assert dst.state.group(0).status is StateStatus.INACTIVE
    ex_dst.on_rerouted_confirm(ConfirmBarrier(
        subscale_id=0, predecessor_id=222, rerouted=True))
    assert subscale.aligned
    assert dst.state.group(0).status is StateStatus.LOCAL


def test_fluid_confirmation_per_channel():
    """With Record Scheduling, an E_f record becomes processable as soon as
    *its own* channel's predecessor confirmed ("fluid confirmation")."""
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup(
        record_scheduling=True)
    dst.state.group(0).status = StateStatus.INACTIVE
    channel0 = dst.input_channels[0]
    pred0 = channel0.channel.sender
    record = Record(key="x", key_group=0)
    assert ex_dst.classify(channel0, record) == BLOCKED
    subscale.arrived_predecessors.add(id(pred0))
    assert ex_dst.classify(channel0, record) == READY
    # a record on the other (unconfirmed) channel stays blocked
    channel1 = dst.input_channels[1]
    assert ex_dst.classify(channel1, record) == BLOCKED


def test_rerouted_ready_requires_bytes_only():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    record = Record(key="x", key_group=0)
    assert not ex_dst.rerouted_ready(record)      # INCOMING
    dst.state.group(0).status = StateStatus.INACTIVE
    assert ex_dst.rerouted_ready(record)          # bytes present is enough
    assert ex_dst.rerouted_ready(Watermark(timestamp=1.0))


def test_reroute_manager_created_lazily_and_counts():
    job, controller, src, dst, ex_src, ex_dst, subscale = make_setup()
    assert not ex_src.reroute_managers
    ex_src.reroute_record(Record(key="x", key_group=0, count=7))
    assert len(ex_src.reroute_managers) == 1
    assert controller.metrics.records_rerouted == 7
    # barrier uses the same manager (same destination)
    ex_src.on_confirm(ConfirmBarrier(subscale_id=0, predecessor_id=111))
    assert len(ex_src.reroute_managers) == 1
