"""Concurrent DRRS executions (§IV-B).

Case 1: a new scaling request for the same operator supersedes the one in
flight — launched subscales finish, unlaunched ones are dropped, and the
new plan starts from the partially migrated state (no redundant moves).

Case 2: an operator that is simultaneously a scaling operator and the
predecessor of another scaling operator — both rescales complete and every
deployment update stays consistent.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.experiments.scenarios import QUICK, make_workload
from repro.scaling import OTFSController


def test_supersede_same_operator():
    job = build_keyed_job(num_key_groups=32, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=50.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig(num_subscales=16,
                                                max_concurrent_per_node=1))
    first = controller.request_rescale("agg", 3)
    job.run(until=5.3)  # mid-scaling: some subscales launched, some pending
    assert not first.triggered
    second = controller.request_rescale("agg", 4)  # rapid load fluctuation
    job.run(until=60.0)
    assert first.triggered, "superseded operation must terminate"
    assert second.triggered, "superseding operation must complete"
    assert job.assignments["agg"].parallelism == 4
    assert_assignment_consistent(job, "agg")
    job.run(until=65.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_supersede_avoids_redundant_migrations():
    job = build_keyed_job(num_key_groups=32, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=50.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig(num_subscales=16,
                                                max_concurrent_per_node=1))
    controller.request_rescale("agg", 4)
    job.run(until=5.3)
    done = controller.request_rescale("agg", 4)  # same target, superseded
    job.run(until=60.0)
    assert done.triggered
    # The second operation only migrated what the first had not launched.
    second_moves = len(controller.metrics.migration_completed)
    assert second_moves < 30  # strictly less than the full move set


def test_cancel_without_supersede_commits_partial_state():
    job = build_keyed_job(num_key_groups=32, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=40.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig(num_subscales=16,
                                                max_concurrent_per_node=1))
    done = controller.request_rescale("agg", 4)
    job.run(until=5.2)
    controller.cancel()
    job.run(until=40.0)
    assert done.triggered
    # Whatever was committed is consistent and processing continues.
    assert_assignment_consistent(job, "agg")
    job.run(until=45.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_adjacent_operators_scale_concurrently():
    """Session (predecessor) and loyalty (successor) both rescale at once
    in the Twitch pipeline; deployment updates stay consistent."""
    workload = make_workload("twitch", QUICK, batch_size=400)
    job = workload.build()
    job.run(until=15.0)
    session_ctrl = DRRSController(job)
    loyalty_ctrl = DRRSController(job)
    done_loyalty = loyalty_ctrl.request_rescale("loyalty", 12)
    done_session = session_ctrl.request_rescale("session", 10)
    job.run(until=120.0)
    assert done_session.triggered
    assert done_loyalty.triggered
    assert_assignment_consistent(job, "session")
    assert_assignment_consistent(job, "loyalty")
    assert len(job.instances("session")) == 10
    assert len(job.instances("loyalty")) == 12


def test_non_drrs_controllers_reject_concurrent_requests():
    job = build_keyed_job()
    drive(job, until=20.0)
    job.run(until=5.0)
    controller = OTFSController(job)
    controller.request_rescale("agg", 3)
    with pytest.raises(RuntimeError):
        controller.request_rescale("agg", 4)
