"""DRRS controller integration properties."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import (CoupledSubscaleController, DRRSConfig,
                             DRRSController, make_variant)
from repro.scaling import OTFSController


def run_drrs(config=None, until=35.0, scale_at=5.0, new_parallelism=4,
             **job_kwargs):
    job = build_keyed_job(**job_kwargs)
    drive(job, until=until - 5.0)
    job.run(until=scale_at)
    controller = DRRSController(job, config or DRRSConfig())
    done = controller.request_rescale("agg", new_parallelism)
    job.run(until=until)
    return job, controller, done


def test_full_drrs_completes_consistently():
    job, controller, done = run_drrs()
    assert done.triggered
    assert_assignment_consistent(job, "agg")


def test_config_rejects_coupled_mode():
    job = build_keyed_job()
    with pytest.raises(ValueError):
        DRRSController(job, DRRSConfig(decouple_reroute=False))


def test_make_variant_names():
    job = build_keyed_job()
    assert make_variant(job, "drrs").name == "drrs"
    assert make_variant(job, "schedule").name == "otfs"
    assert isinstance(make_variant(job, "schedule"), OTFSController)
    assert isinstance(make_variant(job, "subscale"),
                      CoupledSubscaleController)
    with pytest.raises(ValueError):
        make_variant(job, "bogus")


def test_propagation_delay_is_tiny():
    """Trigger barriers bypass all in-flight data: per-subscale propagation
    stays at control-plane latency even though data queues exist."""
    job, controller, done = run_drrs(
        config=DRRSConfig(num_subscales=8))
    assert done.triggered
    m = controller.metrics
    per_signal = m.cumulative_propagation_delay() / max(len(m.injections), 1)
    assert per_signal < 0.05


def test_every_subscale_signal_injected_once():
    job, controller, done = run_drrs(config=DRRSConfig(num_subscales=8))
    assert done.triggered
    m = controller.metrics
    # one injection timestamp per subscale, each with a first migration
    assert set(m.first_migration) <= set(m.injections)
    assert len(m.injections) >= 3  # multiple subscales were used


def test_no_subscale_division_uses_one_subscale_per_path():
    job, controller, done = run_drrs(
        config=DRRSConfig(subscale_division=False))
    assert done.triggered
    m = controller.metrics
    # signals = number of distinct (src, dst) migration paths
    paths = {(controller._plan.move_for(kg).src_index,
              controller._plan.move_for(kg).dst_index)
             for kg in m.group_signal}
    assert len(m.injections) == len(paths)


def test_cleanup_restores_non_scaling_state():
    """Non-scaling neutrality: after scaling, no DRRS component remains
    active (§IV-A: resources released)."""
    job, controller, done = run_drrs()
    assert done.triggered
    for inst in job.instances("agg"):
        assert inst.control_handler is None
        assert type(inst.input_handler).__name__ != "DRRSInputHandler"
        for group in inst.state.groups():
            assert group.status.name in ("LOCAL",)
    assert job.signal_router is None
    # re-route managers drained and closed
    for executor in controller._executors.values():
        for manager in executor.reroute_managers.values():
            assert manager.pending == 0


def test_second_rescale_after_first():
    """DRRS can scale the same operator again (4 → 6) after completing."""
    job, controller, done = run_drrs(until=20.0)
    assert done.triggered
    controller2 = DRRSController(job)
    done2 = controller2.request_rescale("agg", 6)
    job.run(until=45.0)
    assert done2.triggered
    assert_assignment_consistent(job, "agg")
    assert job.assignments["agg"].parallelism == 6


def test_concurrency_threshold_limits_parallel_subscales():
    job = build_keyed_job(num_key_groups=32, agg_parallelism=2)
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig(
        num_subscales=16, max_concurrent_per_node=1))
    # Track concurrent running subscales via launched/completed stamps.
    done = controller.request_rescale("agg", 4)
    job.run(until=40.0)
    assert done.triggered
    subscales = [s for ex in controller._executors.values()
                 for s in ex.in_subscales.values()]
    events = []
    for s in subscales:
        events.append((s.launched_at, 1, s.subscale_id))
        events.append((s.completed_at, -1, s.subscale_id))
    # Count concurrency per destination container.
    by_dst = {}
    for s in subscales:
        by_dst.setdefault(s.dst_index, []).append(s)
    for dst, subs in by_dst.items():
        stamps = sorted([(s.launched_at, 1) for s in subs]
                        + [(s.completed_at, -1) for s in subs])
        level = peak = 0
        for _t, delta in stamps:
            level += delta
            peak = max(peak, level)
        assert peak <= 1, f"dst {dst} ran {peak} subscales concurrently"


def test_subscale_only_variant_migrates_everything():
    job = build_keyed_job()
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = make_variant(job, "subscale", num_subscales=6)
    done = controller.request_rescale("agg", 4)
    job.run(until=40.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")
