"""Scaling-decision policies (the C0 integration point, §VII future work)."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSController
from repro.core.policy import (BacklogPolicy, UserRequestPolicy,
                               UtilizationPolicy)
from repro.engine import Record


def test_user_request_policy_fires_once_at_time():
    job = build_keyed_job()
    drive(job, until=25.0)
    controller = DRRSController(job)
    policy = UserRequestPolicy(job, controller, "agg", at=5.0,
                               new_parallelism=4)
    policy.start()
    job.run(until=30.0)
    assert policy.decisions == [(5.0, 4)]
    assert len(job.instances("agg")) == 4
    assert_assignment_consistent(job, "agg")


def test_user_request_policy_can_be_stopped():
    job = build_keyed_job()
    drive(job, until=10.0)
    controller = DRRSController(job)
    policy = UserRequestPolicy(job, controller, "agg", at=5.0,
                               new_parallelism=4)
    policy.start()
    job.run(until=2.0)
    policy.stop()
    job.run(until=10.0)
    assert policy.decisions == []
    assert len(job.instances("agg")) == 2


def test_utilization_policy_scales_out_overloaded_operator():
    # 2 instances at ~100 % utilisation (arrival ≈ 2.2× capacity).
    job = build_keyed_job(agg_parallelism=2, agg_service=0.0022)
    drive(job, until=120.0, record_gap=0.005, count=5)
    controller = DRRSController(job)
    policy = UtilizationPolicy(job, controller, "agg",
                               high_threshold=0.85, target=0.6,
                               interval=3.0, hold_samples=2,
                               max_parallelism=8, cooldown=20.0)
    policy.start()
    job.run(until=120.0)
    assert policy.decisions, "overload must trigger a scale-out"
    assert len(job.instances("agg")) > 2
    assert_assignment_consistent(job, "agg")


def test_utilization_policy_stays_quiet_when_healthy():
    job = build_keyed_job(agg_parallelism=2, agg_service=0.0002)
    drive(job, until=40.0, record_gap=0.005, count=5)
    controller = DRRSController(job)
    policy = UtilizationPolicy(job, controller, "agg", interval=3.0,
                               hold_samples=2)
    policy.start()
    job.run(until=40.0)
    assert policy.decisions == []
    assert len(job.instances("agg")) == 2


def test_utilization_policy_validates_thresholds():
    job = build_keyed_job()
    controller = DRRSController(job)
    with pytest.raises(ValueError):
        UtilizationPolicy(job, controller, "agg", high_threshold=0.5,
                          target=0.6)


def test_backlog_policy_reacts_to_queue_growth():
    job = build_keyed_job(agg_parallelism=2, agg_service=0.004)

    def gen():
        sources = job.sources()
        i = 0
        while job.sim.now < 90.0:
            for s in sources:
                s.offer(Record(key=f"k{i % 40}", event_time=job.sim.now,
                               count=2))
            i += 1
            yield job.sim.timeout(0.004)

    job.sim.spawn(gen())
    controller = DRRSController(job)
    policy = BacklogPolicy(job, controller, "agg", max_backlog=100,
                           interval=3.0, hold_samples=2, step=2,
                           cooldown=25.0)
    policy.start()
    job.run(until=90.0)
    assert policy.decisions
    assert len(job.instances("agg")) >= 4
    assert_assignment_consistent(job, "agg")


def test_policy_respects_max_parallelism():
    job = build_keyed_job(agg_parallelism=2, agg_service=0.01)
    drive(job, until=120.0, record_gap=0.004, count=5)
    controller = DRRSController(job)
    policy = UtilizationPolicy(job, controller, "agg", interval=3.0,
                               hold_samples=2, max_parallelism=3,
                               cooldown=10.0)
    policy.start()
    job.run(until=120.0)
    assert len(job.instances("agg")) <= 3
