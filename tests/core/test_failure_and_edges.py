"""Edge cases and failure injection around scaling operations."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.engine import JobConfig, Record
from repro.scaling import MecesController, OTFSController


def test_scaling_with_tiny_network_buffers():
    """Outbox/inbox of 2: extreme backpressure everywhere — scaling must
    still complete and stay consistent."""
    job = build_keyed_job(job_config=JobConfig(outbox_capacity=2,
                                               inbox_capacity=2))
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=60.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")


def test_scaling_with_zero_state():
    """Empty key-groups migrate instantly but all bookkeeping still runs."""
    job = build_keyed_job(state_bytes_per_group=0.0)
    drive(job, until=20.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=30.0)
    assert done.triggered
    assert controller.metrics.migration_completed
    assert_assignment_consistent(job, "agg")


def test_scaling_idle_operator():
    """No traffic at all: scaling is pure state movement."""
    job = build_keyed_job()
    job.start()
    job.run(until=1.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=20.0)
    assert done.triggered
    assert controller.metrics.total_suspension() == 0.0
    assert_assignment_consistent(job, "agg")


def test_single_predecessor_single_channel():
    """One source instance → intra-channel scheduling is the only lever."""
    job = build_keyed_job(source_parallelism=1, agg_parallelism=2)
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job, DRRSConfig(intra_channel=True))
    done = controller.request_rescale("agg", 3)
    job.run(until=40.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")


def test_node_slowdown_mid_migration():
    """Failure injection: the migration source's node degrades to 10 %
    speed mid-scaling; the operation still completes correctly."""
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=40.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=5.5)

    src = job.instances("agg")[0]
    original_speed = src.node.speed
    src.node.speed = 0.1  # degrade
    job.run(until=8.0)
    src.node.speed = original_speed  # recover
    job.run(until=60.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")
    job.run(until=65.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_burst_arrival_during_migration():
    """Failure injection: a 20× input burst lands exactly during the
    migration window; nothing is lost and the system re-stabilizes."""
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          agg_service=0.001, state_bytes_per_group=4e6)

    def gen():
        sources = job.sources()
        i = 0
        while job.sim.now < 40.0:
            burst = 20 if 5.2 <= job.sim.now <= 6.2 else 1
            for _ in range(burst):
                for s in sources:
                    s.offer(Record(key=f"k{i % 40}",
                                   event_time=job.sim.now, count=5))
                i += 1
            yield job.sim.timeout(0.005)

    job.sim.spawn(gen())
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=90.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_meces_single_subgroup_degenerates_to_whole_group_fetch():
    job = build_keyed_job()
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = MecesController(job, sub_groups=1)
    done = controller.request_rescale("agg", 4)
    job.run(until=40.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")


def test_meces_rejects_bad_subgroups():
    job = build_keyed_job()
    with pytest.raises(ValueError):
        MecesController(job, sub_groups=0)


def test_otfs_rejects_bad_modes():
    job = build_keyed_job()
    with pytest.raises(ValueError):
        OTFSController(job, migration="warp")
    with pytest.raises(ValueError):
        OTFSController(job, injection="satellite")


def test_rescale_to_many_instances_at_once():
    """2 → 8 in one operation: six new instances, heavy re-wiring."""
    job = build_keyed_job(num_key_groups=32, agg_parallelism=2)
    drive(job, until=30.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 8)
    job.run(until=50.0)
    assert done.triggered
    assert len(job.instances("agg")) == 8
    assert_assignment_consistent(job, "agg")
