"""Execution-semantics preservation (§III-A): scaling must not change what
a deterministic pipeline computes.

The pipeline appends every record's unique sequence number to its key's
state and emits the full history; the *last* emission per key must be
exactly the generator's per-key sequence — any lost, duplicated or
key-order-reordered record changes it.  We compare scaled runs (every
correct controller, all DRRS variants) against the no-scale run.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_assignment_consistent  # noqa: E402

from repro.core.drrs import make_variant
from repro.engine import (JobGraph, KeyedReduceLogic, OperatorSpec,
                          Partitioning, Record, StreamJob, Watermark)
from repro.scaling import (MecesController, MegaphoneController,
                           OTFSController, StopRestartController)


def history_job(num_key_groups=16, parallelism=2):
    graph = JobGraph("hist", num_key_groups=num_key_groups)
    graph.add_source("src", parallelism=2)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or ()) + (r.value,)),
        parallelism=parallelism,
        service_time=0.0004,
        keyed=True,
        initial_state_bytes_per_group=5e5))
    graph.add_sink("sink", collect=True)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def feed(job, keys=24, until=20.0, gap=0.004):
    """Deterministic per-key sequence numbers, split across two sources
    by key parity (so per-key order is well-defined at the sources)."""
    counters = {}

    def gen():
        sources = job.sources()
        i = 0
        while job.sim.now < until:
            key = f"k{i % keys}"
            seq = counters.get(key, 0)
            counters[key] = seq + 1
            source = sources[(i % keys) % len(sources)]
            source.offer(Record(key=key, event_time=job.sim.now, value=seq,
                                count=1))
            if i % 50 == 0:
                for s in sources:
                    s.offer(Watermark(timestamp=job.sim.now))
            i += 1
            yield job.sim.timeout(gap)

    job.sim.spawn(gen())
    return counters


def final_histories(job):
    sink = job.sink_logic()
    last = {}
    for record in sink.collected:
        last[record.key] = record.value
    return last


def run_reference():
    job = history_job()
    counters = feed(job)
    job.run(until=30.0)
    return final_histories(job), counters


REFERENCE = None


def reference():
    global REFERENCE
    if REFERENCE is None:
        REFERENCE = run_reference()
    return REFERENCE


def run_with(make_controller, scale_at=6.0, new_parallelism=4):
    job = history_job()
    counters = feed(job)
    job.run(until=scale_at)
    controller = make_controller(job)
    done = controller.request_rescale("agg", new_parallelism)
    job.run(until=30.0)
    assert done.triggered, f"{controller.name} never completed"
    assert_assignment_consistent(job, "agg")
    return final_histories(job), counters


CONTROLLERS = [
    ("otfs-fluid", lambda job: OTFSController(job)),
    ("otfs-batch", lambda job: OTFSController(job,
                                              migration="all_at_once")),
    ("megaphone", lambda job: MegaphoneController(job, batch_size=2)),
    ("meces", lambda job: MecesController(job, sub_groups=2)),
    ("stop-restart", lambda job: StopRestartController(job)),
    ("drrs", lambda job: make_variant(job, "drrs", num_subscales=5)),
    ("drrs-dr", lambda job: make_variant(job, "dr")),
    ("drrs-schedule", lambda job: make_variant(job, "schedule")),
    ("drrs-subscale", lambda job: make_variant(job, "subscale",
                                               num_subscales=5)),
]


@pytest.mark.parametrize("name,factory", CONTROLLERS,
                         ids=[c[0] for c in CONTROLLERS])
def test_scaled_output_equals_unscaled(name, factory):
    ref_hist, ref_counts = reference()
    hist, counts = run_with(factory)
    assert counts == ref_counts, "generator must be deterministic"
    assert hist == ref_hist, f"{name} changed the computed result"


@pytest.mark.parametrize("name,factory", CONTROLLERS,
                         ids=[c[0] for c in CONTROLLERS])
def test_per_key_history_is_exact_sequence(name, factory):
    """Every key's final state is exactly 0..n-1 in order: nothing lost,
    duplicated or reordered within the key."""
    hist, counts = run_with(factory)
    for key, total in counts.items():
        assert hist.get(key) == tuple(range(total)), (
            f"{name}: key {key} history corrupted")


@pytest.mark.parametrize("scale_at", [2.0, 5.5, 10.0, 15.0])
def test_drrs_correct_at_any_scaling_instant(scale_at):
    hist, counts = run_with(
        lambda job: make_variant(job, "drrs", num_subscales=4),
        scale_at=scale_at)
    for key, total in counts.items():
        assert hist.get(key) == tuple(range(total))


def test_drrs_correct_with_single_subscale_and_no_scheduling():
    from repro.core.drrs import DRRSConfig, DRRSController
    hist, counts = run_with(lambda job: DRRSController(job, DRRSConfig(
        record_scheduling=False, intra_channel=False,
        subscale_division=False)))
    for key, total in counts.items():
        assert hist.get(key) == tuple(range(total))


def test_drrs_correct_with_many_tiny_subscales():
    hist, counts = run_with(
        lambda job: make_variant(job, "drrs", num_subscales=64))
    for key, total in counts.items():
        assert hist.get(key) == tuple(range(total))
