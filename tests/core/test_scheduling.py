"""Record Scheduling scans: inter-/intra-channel policies (§III-B)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import scan_inter_channel, scan_intra_channel
from repro.engine.channels import InputChannel
from repro.engine.records import CheckpointBarrier, Record, Watermark
from repro.simulation import Simulator


class FakeInstance:
    def __init__(self, sim):
        from repro.simulation import Signal
        self.sim = sim
        self.wake = Signal(sim)


def channel_with(sim, elements):
    ch = InputChannel(FakeInstance(sim), name="c")
    for e in elements:
        ch.queue.append(e)
    return ch


def rec(kg, key="k"):
    return Record(key=key, key_group=kg)


def ready_if(groups):
    return lambda e: (not isinstance(e, Record)
                      or e.key_group in groups)


def test_inter_channel_picks_processable_head():
    sim = Simulator()
    blocked = channel_with(sim, [rec(1)])
    open_ch = channel_with(sim, [rec(2)])
    found, saw = scan_inter_channel([blocked, open_ch], ready_if({2}))
    assert found is open_ch
    assert saw is True


def test_inter_channel_reports_idle():
    sim = Simulator()
    a = channel_with(sim, [])
    b = channel_with(sim, [])
    found, saw = scan_inter_channel([a, b], ready_if({1}))
    assert found is None and saw is False


def test_inter_channel_skips_blocked_channels():
    sim = Simulator()
    a = channel_with(sim, [rec(1)])
    a.block("align")
    b = channel_with(sim, [rec(1)])
    found, saw = scan_inter_channel([a, b], ready_if({1}))
    assert found is b
    assert saw is True  # blocked-with-data counts as unprocessable


def test_inter_channel_round_robin_start():
    sim = Simulator()
    a = channel_with(sim, [rec(1)])
    b = channel_with(sim, [rec(1)])
    found, _ = scan_inter_channel([a, b], ready_if({1}), start=1)
    assert found is b


def test_intra_channel_bypasses_unprocessable_record():
    sim = Simulator()
    ch = channel_with(sim, [rec(1), rec(2), rec(3)])
    found = scan_intra_channel([ch], ready_if({2}), buffer_size=200)
    assert found is not None
    channel, element = found
    assert element.key_group == 2


def test_intra_channel_never_crosses_watermark():
    sim = Simulator()
    ch = channel_with(sim, [rec(1), Watermark(timestamp=5.0), rec(2)])
    found = scan_intra_channel([ch], ready_if({2}), buffer_size=200)
    assert found is None


def test_intra_channel_never_crosses_checkpoint_barrier():
    sim = Simulator()
    ch = channel_with(sim, [rec(1), CheckpointBarrier(checkpoint_id=1),
                            rec(2)])
    assert scan_intra_channel([ch], ready_if({2}), buffer_size=200) is None


def test_intra_channel_never_crosses_confirm_barrier():
    from repro.core.barriers import ConfirmBarrier
    sim = Simulator()
    ch = channel_with(sim, [rec(1), ConfirmBarrier(subscale_id=0), rec(2)])
    assert scan_intra_channel([ch], ready_if({2}), buffer_size=200) is None


def test_intra_channel_respects_buffer_bound():
    sim = Simulator()
    ch = channel_with(sim, [rec(1)] * 50 + [rec(2)])
    assert scan_intra_channel([ch], ready_if({2}), buffer_size=10) is None
    found = scan_intra_channel([ch], ready_if({2}), buffer_size=200)
    assert found is not None


def test_intra_channel_skips_blocked_channels():
    sim = Simulator()
    ch = channel_with(sim, [rec(1), rec(2)])
    ch.block("align")
    assert scan_intra_channel([ch], ready_if({2}), buffer_size=200) is None


@given(st.lists(st.tuples(st.integers(0, 5), st.booleans()),
                min_size=0, max_size=30),
       st.integers(1, 40))
@settings(max_examples=100, deadline=None)
def test_intra_channel_result_is_first_ready_before_any_signal(
        items, buffer_size):
    """Property: the returned record is the earliest ready record in the
    channel that is not preceded by a time-semantics signal and within the
    scan budget; otherwise None."""
    sim = Simulator()
    elements = []
    for kg, is_signal in items:
        elements.append(Watermark(timestamp=1.0) if is_signal else rec(kg))
    ch = channel_with(sim, elements)
    ready = ready_if({0, 1, 2})
    found = scan_intra_channel([ch], ready, buffer_size=buffer_size)

    expected = None
    for i, e in enumerate(elements):
        if i >= buffer_size:
            break
        if e.is_time_signal:
            break
        if ready(e):
            expected = e
            break
    if expected is None:
        assert found is None
    else:
        assert found is not None and found[1] is expected
