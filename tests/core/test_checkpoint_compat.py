"""DRRS + fault tolerance (§IV-C): checkpoints across a rescale.

The paper requires scaling and checkpointing to coexist: barriers injected
before, during and after scaling must still produce consistent snapshots,
and results must stay correct.
"""

import sys

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.engine import CheckpointCoordinator


def run_with_checkpoints(interval=1.5, scale_at=5.0, until=40.0):
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          agg_service=0.001)
    drive(job, until=until - 10.0, marker_every=0)
    coordinator = CheckpointCoordinator(job, interval=interval)
    coordinator.start()
    job.run(until=scale_at)
    controller = DRRSController(job, DRRSConfig(num_subscales=6))
    done = controller.request_rescale("agg", 4)
    job.run(until=until)
    return job, coordinator, controller, done


def test_scaling_completes_with_concurrent_checkpoints():
    job, coordinator, controller, done = run_with_checkpoints()
    assert done.triggered
    assert_assignment_consistent(job, "agg")
    assert len(coordinator.completed) > 10


def test_checkpoints_cover_all_instances_after_scaling():
    job, coordinator, controller, done = run_with_checkpoints()
    assert done.triggered
    # Checkpoints triggered after scaling must cover the NEW instances too.
    agg_names = {inst.name for inst in job.instances("agg")}
    per_checkpoint = {}
    for _t, name, cid in job.snapshots:
        if name.startswith("agg"):
            per_checkpoint.setdefault(cid, set()).add(name)
    fully_covered = [cid for cid, names in per_checkpoint.items()
                     if names >= agg_names]
    assert fully_covered, "some post-scaling checkpoint must cover " \
                          "all four instances"


def test_no_records_lost_with_checkpoints_and_scaling():
    job, coordinator, controller, done = run_with_checkpoints()
    assert done.triggered
    job.run(until=45.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_checkpoint_during_migration_window():
    """A checkpoint triggered exactly while subscales are in flight still
    completes on the scaling operator's instances."""
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          agg_service=0.001)
    drive(job, until=30.0, marker_every=0)
    coordinator = CheckpointCoordinator(job, interval=1000.0)
    coordinator.start()
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=5.6)  # mid-scaling
    assert not done.triggered or controller.metrics.duration < 0.7
    cid = coordinator.trigger_now()
    job.run(until=40.0)
    assert done.triggered
    names = {name for _t, name, c in job.snapshots
             if c == cid and name.startswith("agg")}
    assert len(names) >= 2  # at least every old instance snapshotted
