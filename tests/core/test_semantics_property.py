"""Property-based semantics preservation: random workloads + random
scaling instants must never corrupt per-key histories (DRRS)."""

import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, "tests")
from helpers import assert_assignment_consistent  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.engine import (JobGraph, KeyedReduceLogic, OperatorSpec,
                          Partitioning, Record, StreamJob)


def run_random_scale(key_choices, scale_at_tenths, num_subscales,
                     scheduling):
    graph = JobGraph("prop", num_key_groups=8)
    graph.add_source("src", parallelism=1)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or ()) + (r.value,)),
        parallelism=2, service_time=0.002, keyed=True,
        initial_state_bytes_per_group=1e5))
    graph.add_sink("sink", collect=True)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()

    counters = {}

    def gen():
        source = job.sources()[0]
        for key_index in key_choices:
            key = f"k{key_index}"
            seq = counters.get(key, 0)
            counters[key] = seq + 1
            source.offer(Record(key=key, event_time=job.sim.now,
                                value=seq, count=1))
            yield job.sim.timeout(0.01)

    job.sim.spawn(gen())
    scale_at = 0.1 * scale_at_tenths
    job.run(until=max(scale_at, 0.01))
    controller = DRRSController(job, DRRSConfig(
        num_subscales=num_subscales,
        record_scheduling=scheduling,
        intra_channel=scheduling))
    done = controller.request_rescale("agg", 3)
    job.run(until=len(key_choices) * 0.01 + 30.0)
    assert done.triggered
    assert_assignment_consistent(job, "agg")

    sink = job.sink_logic()
    last = {}
    for record in sink.collected:
        last[record.key] = record.value
    for key, total in counters.items():
        assert last.get(key) == tuple(range(total)), (
            f"history of {key} corrupted: {last.get(key)}")


@given(key_choices=st.lists(st.integers(0, 11), min_size=20, max_size=120),
       scale_at_tenths=st.integers(0, 9),
       num_subscales=st.sampled_from([1, 3, 8]),
       scheduling=st.booleans())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_workload_random_instant_preserves_history(
        key_choices, scale_at_tenths, num_subscales, scheduling):
    run_random_scale(key_choices, scale_at_tenths, num_subscales,
                     scheduling)
