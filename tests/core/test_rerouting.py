"""Re-route Manager: order preservation and flush strategies (B4)."""

import pytest

from repro.core.barriers import ConfirmBarrier
from repro.core.rerouting import ReRouteManager
from repro.engine.channels import Channel, InputChannel
from repro.engine.cluster import LinkSpec
from repro.engine.records import Record
from repro.simulation import Simulator


class FakeInstance:
    def __init__(self, sim):
        from repro.simulation import Signal
        self.sim = sim
        self.wake = Signal(sim)


def make_channel(sim):
    channel = Channel(sim, LinkSpec(latency=0.0005, bandwidth=1e9),
                      name="reroute", outbox_capacity=32, inbox_capacity=64)
    inbox = InputChannel(FakeInstance(sim), name="in")
    channel.attach(inbox)
    return channel, inbox


def drain(inbox):
    out = []
    while len(inbox):
        out.append(inbox.pop())
    return out


def test_records_forwarded_in_order():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    manager = ReRouteManager(sim, channel, flush_capacity=4,
                             flush_timeout=0.001)
    records = [Record(key=i, key_group=0) for i in range(10)]
    for r in records:
        manager.forward_record(r)
    sim.run(until=1.0)
    assert drain(inbox) == records
    assert manager.records_forwarded == 10


def test_barrier_flushes_buffer_and_orders_after_records():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    # huge capacity + long timeout: only the barrier forces the flush
    manager = ReRouteManager(sim, channel, flush_capacity=1000,
                             flush_timeout=100.0)
    records = [Record(key=i, key_group=0) for i in range(3)]
    for r in records:
        manager.forward_record(r)
    barrier = ConfirmBarrier(subscale_id=7, predecessor_id=42,
                             key_groups=(0,))
    manager.forward_barrier(barrier)
    sim.run(until=1.0)
    out = drain(inbox)
    assert out[:3] == records
    assert isinstance(out[3], ConfirmBarrier)
    assert out[3].rerouted is True
    assert out[3].predecessor_id == 42
    assert out[3].subscale_id == 7


def test_capacity_based_flush():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    manager = ReRouteManager(sim, channel, flush_capacity=3,
                             flush_timeout=100.0)
    manager.forward_record(Record(key=1, key_group=0))
    manager.forward_record(Record(key=2, key_group=0))
    sim.run(until=1.0)
    assert len(inbox) == 0  # below capacity, long timeout: held back
    manager.forward_record(Record(key=3, key_group=0))
    sim.run(until=2.0)
    assert len(inbox) == 3  # capacity reached: flushed


def test_timeout_based_flush():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    manager = ReRouteManager(sim, channel, flush_capacity=1000,
                             flush_timeout=0.5)
    manager.forward_record(Record(key=1, key_group=0))
    sim.run(until=0.2)
    assert len(inbox) == 0
    sim.run(until=2.0)
    assert len(inbox) == 1  # timeout elapsed


def test_interleaved_records_and_barriers_preserve_relative_order():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    manager = ReRouteManager(sim, channel, flush_capacity=2,
                             flush_timeout=0.001)
    r1 = Record(key=1, key_group=0)
    b1 = ConfirmBarrier(subscale_id=1, predecessor_id=1)
    r2 = Record(key=2, key_group=0)
    b2 = ConfirmBarrier(subscale_id=1, predecessor_id=2)
    manager.forward_record(r1)
    manager.forward_barrier(b1)
    manager.forward_record(r2)
    manager.forward_barrier(b2)
    sim.run(until=1.0)
    out = drain(inbox)
    assert out[0] is r1
    assert isinstance(out[1], ConfirmBarrier) and out[1].predecessor_id == 1
    assert out[2] is r2
    assert isinstance(out[3], ConfirmBarrier) and out[3].predecessor_id == 2


def test_close_drains_remaining_buffer():
    sim = Simulator()
    channel, inbox = make_channel(sim)
    manager = ReRouteManager(sim, channel, flush_capacity=1000,
                             flush_timeout=100.0)
    manager.forward_record(Record(key=1, key_group=0))
    manager.close()
    sim.run(until=1.0)
    assert len(inbox) == 1
    assert manager.pending == 0


def test_rejects_bad_capacity():
    sim = Simulator()
    channel, _inbox = make_channel(sim)
    with pytest.raises(ValueError):
        ReRouteManager(sim, channel, flush_capacity=0)
