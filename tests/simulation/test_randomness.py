"""Zipf sampler and RNG helpers, including property-based checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import ZipfSampler, exponential_interarrival, make_rng


def test_make_rng_is_deterministic():
    a = make_rng(42)
    b = make_rng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_exponential_interarrival_positive():
    rng = make_rng(1)
    gaps = [exponential_interarrival(rng, 100.0) for _ in range(1000)]
    assert all(g > 0 for g in gaps)
    mean = sum(gaps) / len(gaps)
    assert 0.008 < mean < 0.012  # 1/rate = 0.01


def test_exponential_interarrival_rejects_bad_rate():
    with pytest.raises(ValueError):
        exponential_interarrival(make_rng(1), 0.0)


def test_zipf_zero_skew_is_uniform():
    sampler = ZipfSampler(10, 0.0, make_rng(3))
    pmf = sampler.probabilities()
    assert all(abs(p - 0.1) < 1e-9 for p in pmf)


def test_zipf_skew_concentrates_on_low_ranks():
    sampler = ZipfSampler(100, 1.2, make_rng(3))
    pmf = sampler.probabilities()
    assert pmf[0] > pmf[10] > pmf[50]


def test_zipf_empirical_matches_pmf():
    sampler = ZipfSampler(20, 1.0, make_rng(5))
    counts = [0] * 20
    n = 20000
    for _ in range(n):
        counts[sampler.sample()] += 1
    pmf = sampler.probabilities()
    for rank in (0, 1, 5):
        assert abs(counts[rank] / n - pmf[rank]) < 0.02


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, make_rng(1))
    with pytest.raises(ValueError):
        ZipfSampler(5, -0.1, make_rng(1))


@given(n=st.integers(1, 200), skew=st.floats(0.0, 3.0),
       seed=st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_zipf_samples_in_range(n, skew, seed):
    sampler = ZipfSampler(n, skew, make_rng(seed))
    for _ in range(20):
        assert 0 <= sampler.sample() < n


@given(n=st.integers(1, 100), skew=st.floats(0.0, 2.5))
@settings(max_examples=50, deadline=None)
def test_zipf_pmf_sums_to_one_and_is_monotone(n, skew):
    sampler = ZipfSampler(n, skew, make_rng(0))
    pmf = list(sampler.probabilities())
    assert math.isclose(sum(pmf), 1.0, abs_tol=1e-9)
    for a, b in zip(pmf, pmf[1:]):
        assert a >= b - 1e-12
