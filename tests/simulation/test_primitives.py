"""Signal, BoundedStore and Semaphore behaviour."""

import pytest

from repro.simulation import (BoundedStore, Semaphore, Signal,
                              SimulationError, Simulator)


class TestSignal:
    def test_fire_wakes_waiter(self):
        sim = Simulator()
        log = []
        signal = Signal(sim)

        def proc():
            yield signal.wait()
            log.append(sim.now)

        sim.spawn(proc())
        sim.call_at(2.0, signal.fire)
        sim.run()
        assert log == [2.0]

    def test_fire_before_wait_is_not_lost(self):
        sim = Simulator()
        signal = Signal(sim)
        signal.fire()
        log = []

        def proc():
            yield signal.wait()
            log.append("woke")

        sim.spawn(proc())
        sim.run()
        assert log == ["woke"]

    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        signal = Signal(sim)
        log = []

        def proc(i):
            yield signal.wait()
            log.append(i)

        for i in range(4):
            sim.spawn(proc(i))
        sim.call_at(1.0, signal.fire)
        sim.run()
        assert sorted(log) == [0, 1, 2, 3]


class TestBoundedStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = BoundedStore(sim, capacity=10)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        store = BoundedStore(sim, capacity=2)
        timeline = []

        def producer():
            for i in range(4):
                yield store.put(i)
                timeline.append(("put", i, sim.now))

        def consumer():
            yield sim.timeout(5.0)
            yield store.get()
            yield store.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        put_times = {i: t for _op, i, t in timeline}
        assert put_times[0] == 0.0
        assert put_times[1] == 0.0
        assert put_times[2] == 5.0
        assert put_times[3] == 5.0

    def test_get_blocks_when_empty(self):
        sim = Simulator()
        store = BoundedStore(sim, capacity=2)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        sim.spawn(consumer())
        sim.call_at(3.0, lambda: store.try_put("x"))
        sim.run()
        assert got == [("x", 3.0)]

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = BoundedStore(sim, capacity=1)
        assert store.try_put(1)
        assert not store.try_put(2)
        assert store.try_get() == 1
        assert store.try_get() is None

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BoundedStore(sim, capacity=0)


class TestSemaphore:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        sem = Semaphore(sim, 2)
        order = []

        def worker(i):
            yield sem.acquire()
            order.append(("start", i, sim.now))
            yield sim.timeout(1.0)
            sem.release()

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        starts = {i: t for _op, i, t in order}
        assert starts[0] == 0.0 and starts[1] == 0.0
        assert starts[2] == 1.0 and starts[3] == 1.0

    def test_try_acquire(self):
        sim = Simulator()
        sem = Semaphore(sim, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_over_release_raises(self):
        sim = Simulator()
        sem = Semaphore(sim, 1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_counts(self):
        sim = Simulator()
        sem = Semaphore(sim, 3)
        assert sem.available == 3 and sem.in_use == 0
        sem.try_acquire()
        assert sem.available == 2 and sem.in_use == 1


class TestEdgeWake:
    def test_fire_wakes_all_current_waiters(self):
        from repro.simulation import EdgeWake

        sim = Simulator()
        wake = EdgeWake(sim)
        log = []

        def proc(i):
            yield wake.wait()
            log.append(i)

        for i in range(3):
            sim.spawn(proc(i))
        sim.call_at(1.0, wake.fire)
        sim.run()
        assert sorted(log) == [0, 1, 2]

    def test_fire_with_no_waiters_is_dropped(self):
        # Edge-triggered: unlike Signal, a fire with nobody waiting latches
        # nothing.  A later wait() parks until the *next* fire.
        from repro.simulation import EdgeWake

        sim = Simulator()
        wake = EdgeWake(sim)
        wake.fire()  # dropped
        log = []

        def proc():
            yield wake.wait()
            log.append(sim.now)

        sim.spawn(proc())
        sim.call_at(3.0, wake.fire)
        sim.run()
        assert log == [3.0]

    def test_waiters_cleared_after_fire(self):
        from repro.simulation import EdgeWake

        sim = Simulator()
        wake = EdgeWake(sim)
        log = []

        def proc():
            yield wake.wait()
            log.append(("first", sim.now))
            yield wake.wait()
            log.append(("second", sim.now))

        sim.spawn(proc())
        sim.call_at(1.0, wake.fire)
        sim.call_at(2.0, wake.fire)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.0)]
