"""Sharded kernel units: partitioner, credit ledger, replan loop, config.

The full shard-vs-single equivalence runs (real worker processes) live in
``tests/experiments/test_shard_equivalence.py``; this file covers the
deterministic single-process pieces.
"""

import pytest

from repro.engine.graph import JobGraph, OperatorSpec
from repro.engine.routing import (ShardPlan, partition_graph,
                                  topological_order)
from repro.engine.runtime import JobConfig
from repro.simulation import sharded
from repro.simulation.sharded import (ShardedRunResult, _replay_credits,
                                      plan_for_job, run_sharded,
                                      supports_sharding)
from repro.workloads.nexmark import NexmarkQ7


def _chain_graph(*names, source=0, latencies=None):
    """A linear graph; ``latencies[i]`` is the latency of edge i."""
    g = JobGraph("chain")
    for i, name in enumerate(names):
        if i <= source:
            g.add_source(name)
        else:
            g.add_operator(OperatorSpec(name=name,
                                        logic_factory=lambda: None))
    for a, b in zip(names, names[1:]):
        g.connect(a, b)
    lat = dict(zip((f"{a}->{b}" for a, b in zip(names, names[1:])),
                   latencies or []))
    return g, (lambda e: lat.get(e.name, 0.001))


class TestPartitionGraph:
    def test_contiguous_balanced_split(self):
        g, lat = _chain_graph("s", "a", "b", "c", "d",
                              latencies=[0.1] * 4)
        weights = {"s": 1, "a": 4, "b": 4, "c": 4, "d": 4}
        plan = partition_graph(g, 2, lat, weights=weights)
        assert plan.num_shards == 2
        # contiguity in topological order, all ops covered exactly once
        flat = [op for shard in plan.shards for op in shard]
        assert flat == topological_order(g)
        # min-max balance: 9 vs 8 beats any other boundary
        loads = [sum(weights[op] for op in shard) for shard in plan.shards]
        assert max(loads) == 9

    def test_zero_latency_edges_are_never_cut(self):
        g, lat = _chain_graph("s", "a", "b", "c",
                              latencies=[0.1, 0.0, 0.1])
        plan = partition_graph(g, 2, lat)
        assert "a->b" not in plan.cut_edges
        assert all(lat_edge in ("s->a", "b->c")
                   for lat_edge in plan.cut_edges)

    def test_clamps_when_no_legal_boundary(self):
        g, lat = _chain_graph("s", "a", "b", latencies=[0.0, 0.0])
        plan = partition_graph(g, 4, lat)
        assert plan.num_shards == 1
        assert plan.cut_edges == []
        assert plan.lookahead == 0.0

    def test_sources_stay_in_shard_zero(self):
        g, lat = _chain_graph("s0", "s1", "a", "b", source=1,
                              latencies=[0.1] * 3)
        g.connect("s0", "a")
        plan = partition_graph(g, 4, lat)
        assert plan.shard_of["s0"] == 0
        assert plan.shard_of["s1"] == 0

    def test_lookahead_is_min_cut_latency(self):
        g, lat = _chain_graph("s", "a", "b", "c",
                              latencies=[0.5, 0.002, 0.3])
        plan = partition_graph(g, 4, lat)
        assert plan.lookahead == pytest.approx(
            min(0.5, 0.002, 0.3))

    def test_rejects_nonpositive_shards(self):
        g, lat = _chain_graph("s", "a", latencies=[0.1])
        with pytest.raises(ValueError, match="num_shards"):
            partition_graph(g, 0, lat)

    def test_describe_mentions_every_shard(self):
        g, lat = _chain_graph("s", "a", "b", latencies=[0.1, 0.1])
        plan = partition_graph(g, 3, lat)
        text = plan.describe()
        for i in range(plan.num_shards):
            assert f"shard {i}:" in text


class TestPlanForJob:
    def test_plans_real_workload_with_actual_latencies(self):
        job = NexmarkQ7().build(job_config=JobConfig())
        plan = plan_for_job(job, 2)
        assert plan.num_shards == 2
        assert plan.cut_edges
        assert plan.lookahead > 0.0

    def test_forbidden_edges_are_not_cut(self):
        job = NexmarkQ7().build(job_config=JobConfig())
        baseline = plan_for_job(job, 2)
        forbidden = set(baseline.cut_edges)
        replan = plan_for_job(job, 2, forbidden_edges=forbidden)
        assert not (set(replan.cut_edges) & forbidden)


class TestCreditLedger:
    def test_safe_when_capacity_never_exhausted(self):
        ok, problems, flagged = _replay_credits(
            {7: [(0.1, 2), (0.2, 2)]}, {7: [0.15, 0.15]}, capacity=4)
        assert ok and not problems and not flagged

    def test_flags_exhaustion_with_edge_name(self):
        debits = {7: [(0.1, 3), (0.2, 3)]}   # 6 debits, 4 credits, 0 back
        ok, problems, flagged = _replay_credits(
            debits, {}, capacity=4, edge_of={7: "a->b"})
        assert not ok
        assert flagged == {"a->b"}
        assert "a->b" in problems[0]
        assert "low-water -2" in problems[0]

    def test_returns_are_credited_before_same_time_debits(self):
        # at t=0.2 a return and a debit collide: the return lands first,
        # matching the receiver freeing a slot before the send is admitted
        ok, problems, _ = _replay_credits(
            {1: [(0.1, 1), (0.2, 1)]}, {1: [0.2]}, capacity=1)
        assert ok, problems


class TestReplanLoop:
    def _fake_result(self, plan, safe, flag_edges=()):
        result = ShardedRunResult({}, shards=plan.num_shards, plan=plan,
                                  backpressure_safe=safe)
        result._flagged_edges = set(flag_edges)
        return result

    def test_replans_on_flagged_cut_edge(self, monkeypatch):
        calls = []

        def fake_once(workload_factory, probe_job, plan, config, **kw):
            calls.append(list(plan.cut_edges))
            if len(calls) == 1:
                return self._fake_result(plan, safe=False,
                                         flag_edges=plan.cut_edges[:1])
            return self._fake_result(plan, safe=True)

        monkeypatch.setattr(sharded, "_run_sharded_once", fake_once)
        result = run_sharded(NexmarkQ7, until=1.0, shards=2,
                             job_config=JobConfig())
        assert len(calls) == 2
        assert result.backpressure_safe
        assert result.replans == 1
        assert result.forbidden_cuts == calls[0][:1]
        assert not (set(calls[1]) & set(result.forbidden_cuts))

    def test_gives_up_after_max_replans(self, monkeypatch):
        def fake_once(workload_factory, probe_job, plan, config, **kw):
            return self._fake_result(plan, safe=False,
                                     flag_edges=plan.cut_edges[:1])

        monkeypatch.setattr(sharded, "_run_sharded_once", fake_once)
        result = run_sharded(NexmarkQ7, until=1.0, shards=2,
                             job_config=JobConfig(), max_replans=1)
        assert not result.backpressure_safe
        assert result.replans == 1


class TestConfigPlumbing:
    def test_jobconfig_shards_validation(self):
        assert JobConfig(shards=4).shards == 4
        with pytest.raises(ValueError, match="shards"):
            JobConfig(shards=0)
        with pytest.raises(ValueError, match="shards"):
            JobConfig(shards=JobConfig.MAX_SHARDS + 1)
        with pytest.raises(ValueError, match="shards"):
            JobConfig(shards=True)

    def test_repro_shards_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert JobConfig().shards == 3
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            JobConfig()
        monkeypatch.delenv("REPRO_SHARDS")
        assert JobConfig().shards == 1

    def test_explicit_shards_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert JobConfig(shards=2).shards == 2

    def test_supports_sharding_degradations(self):
        assert supports_sharding(JobConfig())
        assert not supports_sharding(JobConfig(), controller=object())
        assert not supports_sharding(JobConfig(), telemetry=True)
        assert not supports_sharding(JobConfig(), faults=True)

    def test_supports_sharding_reasons_are_machine_readable(self):
        verdict = supports_sharding(JobConfig())
        assert verdict.supported and verdict.reason is None
        cases = {
            "controller": dict(controller=object()),
            "telemetry": dict(telemetry=True),
            "faults": dict(faults=True),
        }
        for reason, kwargs in cases.items():
            verdict = supports_sharding(JobConfig(), **kwargs)
            assert not verdict.supported
            assert verdict.reason == reason
            assert verdict.detail

    def test_supports_sharding_rejects_changelog_backend(self):
        verdict = supports_sharding(
            JobConfig(state_backend="changelog"))
        assert not verdict
        assert verdict.reason == "changelog-async-uploads"

    def test_degraded_run_warns_once_with_reason(self):
        with pytest.warns(RuntimeWarning,
                          match=r"\[changelog-async-uploads\]"):
            result = run_sharded(
                NexmarkQ7, until=2.0, shards=2,
                job_config=JobConfig(state_backend="changelog"))
        assert result.shards == 1
        assert result.plan is None

    def test_shards_one_falls_back_to_single_process(self):
        result = run_sharded(NexmarkQ7, until=2.0, shards=1,
                             job_config=JobConfig())
        assert result.shards == 1
        assert result.backpressure_safe
        assert result.plan is None

    def test_jobconfig_shard_inbox_validation(self):
        assert JobConfig().shard_inbox_capacity == 512
        assert JobConfig(shard_inbox_capacity=64).shard_inbox_capacity == 64
        for bad in (0, -1, True, "many",
                    JobConfig.MAX_SHARD_INBOX + 1):
            with pytest.raises(ValueError, match="shard_inbox_capacity"):
                JobConfig(shard_inbox_capacity=bad)

    def test_repro_shard_inbox_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_INBOX", "128")
        assert JobConfig().shard_inbox_capacity == 128
        # explicit beats env
        assert JobConfig(
            shard_inbox_capacity=256).shard_inbox_capacity == 256
        monkeypatch.setenv("REPRO_SHARD_INBOX", "lots")
        with pytest.raises(ValueError, match="REPRO_SHARD_INBOX"):
            JobConfig()

    def test_jobconfig_shard_transport_validation(self, monkeypatch):
        assert JobConfig().shard_transport == "auto"
        assert JobConfig(shard_transport="pipe").shard_transport == "pipe"
        with pytest.raises(ValueError, match="shard_transport"):
            JobConfig(shard_transport="carrier-pigeon")
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "shm")
        assert JobConfig().shard_transport == "shm"
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "smoke-signal")
        with pytest.raises(ValueError, match="shard_transport"):
            JobConfig()


class TestAdaptiveQuantum:
    def test_widen_after_productive_streak(self):
        aq = sharded._AdaptiveQuantum(0.25, growth_limit=32.0)
        assert aq.value == 0.25
        aq.productive()
        assert aq.value == 0.25  # one productive round is not enough
        aq.productive()
        assert aq.value == 0.5
        for _ in range(40):
            aq.productive()
        assert aq.value == 0.25 * 32.0  # capped at the growth limit

    def test_shrink_on_blocked_wait(self):
        aq = sharded._AdaptiveQuantum(0.25, growth_limit=32.0)
        for _ in range(8):
            aq.productive()
        widened = aq.value
        assert widened > 0.25
        aq.blocked()
        assert aq.value == widened / 2
        for _ in range(20):
            aq.blocked()
        assert aq.value == 0.25  # never below the initial quantum

    def test_blocked_resets_the_streak(self):
        aq = sharded._AdaptiveQuantum(0.25)
        aq.productive()
        aq.blocked()
        aq.productive()
        assert aq.value == 0.25  # streak was broken, no widening yet
        assert aq.widenings == 0 and aq.shrinks == 0

    def test_growth_limit_one_pins_the_quantum(self):
        aq = sharded._AdaptiveQuantum(0.25, growth_limit=1.0)
        for _ in range(10):
            aq.productive()
        assert aq.value == 0.25
        assert aq.widenings == 0


class TestPerEdgeCapacities:
    def test_replay_honours_per_channel_capacity(self):
        # channel 1 would exhaust a window of 2 but survives with 4;
        # channel 2 survives either way under its own window
        debits = {1: [(0.1, 3)], 2: [(0.1, 1)]}
        ok, problems, flagged = _replay_credits(
            debits, {}, capacity={1: 2, 2: 8},
            edge_of={1: "a->b", 2: "b->c"})
        assert not ok and flagged == {"a->b"}
        assert "capacity 2" in problems[0]
        ok, problems, flagged = _replay_credits(
            debits, {}, capacity={1: 4, 2: 8},
            edge_of={1: "a->b", 2: "b->c"})
        assert ok, problems

    def test_annotate_cuts_attaches_hints(self):
        g, lat = _chain_graph("s", "a", "b", "c", latencies=[0.1] * 3)
        plan = partition_graph(g, 3, lat)
        assert len(plan.cut_edges) >= 2
        first, second = plan.cut_edges[0], plan.cut_edges[1]
        plan.annotate_cuts(ring_bytes={first: 1 << 16},
                           inbox_overrides={second: 64,
                                            "not->cut": 99})
        assert plan.cut_hints[first] == {"ring_bytes": 1 << 16}
        assert plan.cut_hints[second] == {"inbox_capacity": 64}
        assert "not->cut" not in plan.cut_hints

    def test_annotate_cuts_int_applies_to_all(self):
        g, lat = _chain_graph("s", "a", "b", latencies=[0.1] * 2)
        plan = partition_graph(g, 3, lat)
        plan.annotate_cuts(ring_bytes=4096)
        for name in plan.cut_edges:
            assert plan.cut_hints[name]["ring_bytes"] == 4096

    def test_run_sharded_cut_inbox_reaches_plan_hints(self):
        # A per-cut-edge window override must land in the recorded
        # plan's cut_hints (the same dict the workers and the credit
        # replay consume).
        probe = NexmarkQ7().build(job_config=JobConfig())
        cuts = plan_for_job(probe, 2).cut_edges
        assert cuts
        overrides = {cuts[0]: 1024}
        result = run_sharded(NexmarkQ7, until=5.0, shards=2,
                             job_config=JobConfig(inbox_capacity=256),
                             cut_inbox=overrides)
        assert result.backpressure_safe
        assert result.plan.cut_hints[cuts[0]]["inbox_capacity"] == 1024
