"""SPSC shared-memory ring units: wraparound, backpressure, spill, flags.

Single-process tests — the ring's SPSC contract means one side at a time
is exercised here; the cross-process behaviour is covered by the
transport-matrix equivalence runs in
``tests/experiments/test_shard_equivalence.py``.
"""

import pytest

from repro.simulation.shm_ring import DEFAULT_RING_BYTES, SPILL, ShmRing


@pytest.fixture
def ring():
    r = ShmRing(capacity=256)
    yield r
    r.close()
    r.unlink()


class TestRoundtrip:
    def test_push_pop_roundtrip(self, ring):
        assert ring.push(b"hello")
        assert ring.push(b"")
        assert ring.push(b"world!")
        assert ring.pop() == b"hello"
        assert ring.pop() == b""
        assert ring.pop() == b"world!"
        assert ring.pop() is None

    def test_default_capacity(self):
        r = ShmRing()
        try:
            assert r.capacity == DEFAULT_RING_BYTES
        finally:
            r.close()
            r.unlink()

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmRing(capacity=8)


class TestWraparound:
    def test_frames_survive_many_wraps(self, ring):
        # 24-byte frames through a 256-byte ring: the payload region
        # wraps every ~10 frames; contents must survive the splits.
        for i in range(1000):
            payload = bytes([i % 251]) * 20
            assert ring.push(payload)
            assert ring.pop() == payload

    def test_split_frame_across_boundary(self, ring):
        # Position the cursor so the next frame straddles the physical
        # end of the buffer.
        filler = b"x" * 200
        assert ring.push(filler)
        assert ring.pop() == filler
        straddle = bytes(range(100))
        assert ring.push(straddle)
        assert ring.pop() == straddle


class TestBackpressure:
    def test_writer_full_returns_false(self, ring):
        big = b"a" * 120
        assert ring.push(big)
        assert ring.push(big)           # 2 x 124 bytes = 248 used
        assert ring.push(b"bbbb")       # 8 free, needs exactly 4 + 4
        assert not ring.push(b"")       # 0 free: even a header won't fit
        assert not ring.push(big)
        assert ring.pop() == big
        assert ring.pop() == big
        assert ring.pop() == b"bbbb"
        # draining freed space for the writer again
        assert ring.push(big)

    def test_reader_empty_returns_none(self, ring):
        assert ring.pop() is None
        ring.push(b"one")
        assert ring.pop() == b"one"
        assert ring.pop() is None

    def test_oversized_frame_never_fits(self, ring):
        # A frame larger than the ring returns False even when empty —
        # the caller must spill it through the side channel.
        assert not ring.push(b"z" * 300)
        assert ring.pop() is None


class TestSpill:
    def test_spill_marker_preserves_order(self, ring):
        assert ring.push(b"before")
        assert ring.push_spill_marker()
        assert ring.push(b"after")
        assert ring.pop() == b"before"
        assert ring.pop() is SPILL
        assert ring.pop() == b"after"

    def test_spill_marker_respects_capacity(self, ring):
        assert ring.push(b"f" * 249)  # 253 of 256 used, 3 free
        assert not ring.push_spill_marker()
        ring.pop()
        assert ring.push_spill_marker()


class TestBlockedFlag:
    def test_flag_roundtrip(self, ring):
        assert not ring.reader_blocked()
        ring.set_blocked(True)
        assert ring.reader_blocked()
        ring.set_blocked(False)
        assert not ring.reader_blocked()


class TestLifecycle:
    def test_close_and_unlink_are_idempotent(self):
        r = ShmRing(capacity=128)
        r.close()
        r.unlink()
        r.unlink()  # second unlink is a no-op, not an error

    def test_corrupt_length_raises(self):
        r = ShmRing(capacity=128)
        try:
            r.push(b"abcdef")
            # Corrupt the frame's length prefix beyond any valid value.
            r.buf[64:68] = (2 ** 31).to_bytes(4, "little")
            with pytest.raises(RuntimeError, match="corrupt"):
                r.pop()
        finally:
            r.close()
            r.unlink()
