"""Kernel semantics: time, ordering, events, processes."""

import pytest

from repro.simulation import (Event, Interrupt, SimulationError, Simulator)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_time():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(1.5)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert fired == [1.5]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_at(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-0.1)


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    sim.spawn(waiter())
    sim.call_at(2.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.call_at(1.0, lambda: ev.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_multiple_waiters_all_wake():
    sim = Simulator()
    ev = sim.event()
    woke = []

    def waiter(i):
        yield ev
        woke.append(i)

    for i in range(3):
        sim.spawn(waiter(i))
    sim.call_at(1.0, lambda: ev.succeed())
    sim.run()
    assert sorted(woke) == [0, 1, 2]


def test_callback_on_processed_event_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["late"]


def test_run_until_stops_at_time():
    sim = Simulator()
    fired = []

    def proc():
        while True:
            yield sim.timeout(1.0)
            fired.append(sim.now)

    sim.spawn(proc())
    end = sim.run(until=3.5)
    assert end == 3.5
    assert fired == [1.0, 2.0, 3.0]


def test_process_completion_is_waitable():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        result = yield sim.spawn(child())
        assert result == "done"
        assert sim.now == 2.0

    p = sim.spawn(parent())
    sim.run()
    assert p.triggered


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        first = yield sim.any_of([sim.timeout(5.0, "slow"),
                                  sim.timeout(1.0, "fast")])
        results.append((sim.now, first.value))

    sim.spawn(proc())
    sim.run()
    assert results == [(1.0, "fast")]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    results = []

    def proc():
        yield sim.all_of([sim.timeout(5.0), sim.timeout(1.0)])
        results.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert results == [5.0]


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    proc = sim.spawn(sleeper())
    sim.call_at(3.0, lambda: proc.interrupt("stop"))
    sim.run()
    assert log == [("interrupted", 3.0, "stop")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.triggered


def test_yielding_non_event_raises():
    # Bare ints/floats are valid (timeout shorthand); anything else is not.
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_bare_delay_yield_is_timeout_shorthand():
    sim = Simulator()
    seen = []

    def proc():
        yield 1.5
        seen.append(sim.now)
        yield 2  # ints work too
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [1.5, 3.5]


def test_bare_delay_interrupt_cancels_cleanly():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield 10.0
            seen.append("overslept")
        except Interrupt:
            seen.append(("interrupted", sim.now))
        yield 1.0
        seen.append(("resumed", sim.now))

    proc = sim.spawn(sleeper())

    def waker():
        yield 2.0
        proc.interrupt("wake up")

    sim.spawn(waker())
    sim.run()
    assert seen == [("interrupted", 2.0), ("resumed", 3.0)]


def test_call_at_past_raises():
    sim = Simulator()
    sim.call_at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_at(4.0, lambda: None)
    assert sim.peek() == 4.0


def test_determinism_same_program_same_trace():
    def run_once():
        sim = Simulator()
        trace = []

        def proc(name, gap):
            while sim.now < 10:
                yield sim.timeout(gap)
                trace.append((round(sim.now, 6), name))

        sim.spawn(proc("a", 0.7))
        sim.spawn(proc("b", 1.1))
        sim.run(until=10)
        return trace

    assert run_once() == run_once()


def test_done_singleton_resumes_synchronously():
    # Yielding the shared pre-succeeded `done` event must not touch the
    # heap: the process continues inside the same dispatch.
    sim = Simulator()
    log = []

    def proc():
        yield 1.0
        heap_before = len(sim._heap)
        yield sim.done
        yield sim.done
        log.append((sim.now, heap_before, len(sim._heap)))

    sim.spawn(proc())
    sim.run()
    assert len(log) == 1
    now, before, after = log[0]
    assert now == 1.0          # no simulated time passed
    assert after == before     # no heap entries scheduled


def test_completed_event_preserves_tie_order():
    # completed() fires "now" but *after* anything already scheduled at the
    # current time with an earlier counter — same ordering as
    # sim.event().succeed().
    sim = Simulator()
    log = []

    def proc():
        sim.call_at(sim.now, lambda: log.append("earlier"))
        ev = sim.completed("value")
        got = yield ev
        log.append(("completed", got))

    sim.spawn(proc())
    sim.run()
    assert log == ["earlier", ("completed", "value")]


def test_schedule_entry_reuses_one_entry_across_fires():
    from repro.simulation.kernel import _Callback

    sim = Simulator()
    log = []
    entry = _Callback(lambda: log.append(sim.now))
    sim.schedule_entry(1.0, entry)
    sim.run()
    sim.schedule_entry(2.0, entry)  # same object, re-armed
    sim.run()
    assert log == [1.0, 2.0]


def test_schedule_entry_multiple_positions_dispatch_each():
    from repro.simulation.kernel import _Callback

    sim = Simulator()
    log = []
    entry = _Callback(lambda: log.append(sim.now))
    sim.schedule_entry(1.0, entry)
    sim.schedule_entry(2.0, entry)  # same object at two heap positions
    sim.run()
    assert log == [1.0, 2.0]


def test_schedule_entry_past_raises():
    from repro.simulation.kernel import _Callback

    sim = Simulator()

    def proc():
        yield 5.0
        with pytest.raises(SimulationError):
            sim.schedule_entry(1.0, _Callback(lambda: None))

    sim.spawn(proc())
    sim.run()


class TestSchedulerValidation:
    """Unknown scheduler names fail fast at Simulator construction with a
    clear ValueError, whether passed directly or via REPRO_SCHEDULER."""

    def test_direct_unknown_scheduler(self):
        with pytest.raises(ValueError, match=r"unknown scheduler: 'splay'"):
            Simulator(scheduler="splay")

    def test_error_lists_supported_schedulers(self):
        with pytest.raises(ValueError, match=r"heap.*calendar"):
            Simulator(scheduler="fifo")

    def test_env_unknown_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        with pytest.raises(
                ValueError,
                match=r"unknown scheduler \(from REPRO_SCHEDULER\): 'wheel'"):
            Simulator()

    def test_env_does_not_shadow_explicit_argument(self, monkeypatch):
        # a bad env value must not poison explicitly-configured simulators
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert Simulator(scheduler="calendar").scheduler == "calendar"

    def test_env_valid_value_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Simulator().scheduler == "calendar"
