"""Property-based kernel tests: ordering, composites, determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator


@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_timers_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for i, delay in enumerate(delays):
        sim.call_at(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    for now, delay in fired:
        assert now == delay


@given(delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_any_of_fires_at_minimum_delay(delays):
    sim = Simulator()
    observed = []

    def proc():
        first = yield sim.any_of([sim.timeout(d, d) for d in delays])
        observed.append((sim.now, first.value))

    sim.spawn(proc())
    sim.run()
    now, value = observed[0]
    assert now == min(delays)
    assert value == min(delays)


@given(delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_all_of_fires_at_maximum_delay(delays):
    sim = Simulator()
    observed = []

    def proc():
        yield sim.all_of([sim.timeout(d) for d in delays])
        observed.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert observed == [max(delays)]


@given(gaps=st.lists(st.floats(0.001, 2.0), min_size=1, max_size=30),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_identical_programs_produce_identical_traces(gaps, seed):
    def run_once():
        sim = Simulator()
        trace = []

        def proc(name, sequence):
            for gap in sequence:
                yield sim.timeout(gap)
                trace.append((round(sim.now, 9), name))

        sim.spawn(proc("a", gaps))
        sim.spawn(proc("b", list(reversed(gaps))))
        sim.run()
        return trace, sim.events_processed

    first = run_once()
    second = run_once()
    assert first == second


@given(n_waiters=st.integers(1, 20), fire_at=st.floats(0.0, 10.0))
@settings(max_examples=50, deadline=None)
def test_signal_wakes_every_waiter_exactly_once(n_waiters, fire_at):
    from repro.simulation import Signal

    sim = Simulator()
    signal = Signal(sim)
    wakes = []

    def waiter(i):
        yield signal.wait()
        wakes.append(i)

    for i in range(n_waiters):
        sim.spawn(waiter(i))
    sim.call_at(fire_at, signal.fire)
    sim.run()
    assert sorted(wakes) == list(range(n_waiters))


@given(capacity=st.integers(1, 10),
       items=st.lists(st.integers(), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_bounded_store_is_lossless_fifo(capacity, items):
    from repro.simulation import BoundedStore

    sim = Simulator()
    store = BoundedStore(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)
            yield sim.timeout(0.01)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == items
