"""Calendar-queue scheduler: dispatch order identical to the binary heap.

The calendar queue is a pure wall-clock optimization — ``(time, seq)`` is a
strict total order, so the wheel must pop the exact sequence the heap pops,
including ties on time (broken by seq), boundary-bucket rounding, and
rotations.  These tests drive both the queue directly (randomized
push/pop interleavings) and the Simulator under both schedulers (same
workload, same dispatch trace, same event counts).
"""

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Simulator
from repro.simulation.calqueue import CalendarQueue


def _drain_both(items, pop_interleave=None, seed=None):
    """Push items into heap + calendar, pop everything, compare sequences.

    ``pop_interleave``: after every push, pop with this probability — the
    interleaving exercises cursor/rotation states a pure push-all/pop-all
    run never reaches.
    """
    heap = []
    cal = CalendarQueue()
    rng = random.Random(seed)
    heap_out, cal_out = [], []
    for item in items:
        heapq.heappush(heap, item)
        cal.push(item)
        if pop_interleave and rng.random() < pop_interleave and heap:
            heap_out.append(heapq.heappop(heap))
            cal_out.append(cal.pop())
    while heap:
        heap_out.append(heapq.heappop(heap))
        cal_out.append(cal.pop())
    assert cal.pop() is None
    assert len(cal) == 0
    assert cal_out == heap_out
    return heap_out


@given(times=st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_pop_order_matches_heap(times):
    items = [(t, seq, object()) for seq, t in enumerate(times)]
    _drain_both(items)


@given(times=st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200),
    seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_interleaved_push_pop_matches_heap(times, seed):
    items = [(t, seq, object()) for seq, t in enumerate(times)]
    _drain_both(items, pop_interleave=0.4, seed=seed)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_clustered_timer_population_matches_heap(seed):
    """The paper-scale regime: ties, near-now clusters, far-future tails."""
    rng = random.Random(seed)
    items = []
    now, seq = 0.0, 0
    for _ in range(rng.randrange(50, 400)):
        roll = rng.random()
        if roll < 0.5:
            t = now + rng.choice((0.0001, 0.0005, 0.001, 0.002))
        elif roll < 0.8:
            t = now  # exact tie with the cursor time
        else:
            t = now + rng.uniform(1.0, 500.0)  # overflow lane
        items.append((t, seq, seq))
        seq += 1
        if rng.random() < 0.3:
            now += rng.uniform(0.0, 0.01)
    _drain_both(items, pop_interleave=0.3, seed=seed)


def test_pop_at_and_pop_le_semantics():
    cal = CalendarQueue()
    for seq, t in enumerate((1.0, 1.0, 2.0, 5.0)):
        cal.push((t, seq, None))
    assert cal.pop_at(0.5) is None
    assert cal.pop_at(1.0) == (1.0, 0, None)
    assert cal.pop_at(1.0) == (1.0, 1, None)
    assert cal.pop_at(1.0) is None          # next item is at 2.0
    assert cal.pop_le(4.0) == (2.0, 2, None)
    assert cal.pop_le(4.0) is None          # 5.0 > limit
    assert cal.pop_le(5.0) == (5.0, 3, None)
    assert cal.pop_le(99.0) is None         # empty
    assert cal.peek_time() == float("inf")


def test_far_future_rotation_and_resize():
    """Items beyond the horizon rotate in; the wheel adapts its width."""
    cal = CalendarQueue()
    items = [(float(k) * 100.0, k, k) for k in range(2000)]
    rng = random.Random(11)
    shuffled = items[:]
    rng.shuffle(shuffled)
    for item in shuffled:
        cal.push(item)
    out = [cal.pop() for _ in range(len(items))]
    assert out == sorted(items)
    assert cal.rotations > 0


def test_huge_base_degenerate_horizon():
    """Float absorption at huge t: width can vanish; drain must progress."""
    t0 = 1e18
    items = [(t0, 0, "a"), (t0, 1, "b"), (t0 + 1e3, 2, "c")]
    cal = CalendarQueue()
    for item in items:
        cal.push(item)
    assert [cal.pop() for _ in range(3)] == items


def _run_random_workload(scheduler, seed):
    """A process + callback + cancellation mix; returns the dispatch trace."""
    sim = Simulator(scheduler=scheduler)
    rng = random.Random(seed)
    trace = []

    def proc(name, delays):
        for d in delays:
            yield sim.timeout(d)
            trace.append((name, sim.now))

    for p in range(8):
        delays = [rng.choice((0.001, 0.001, 0.01, 0.25, 7.5))
                  for _ in range(rng.randrange(5, 40))]
        sim.spawn(proc(p, delays))
    for c in range(30):
        at = rng.uniform(0.0, 20.0)
        sim.call_at(at, lambda c=c, at=at: trace.append(("cb", c, at)))
    end = sim.run()
    return trace, end, sim.events_processed


def test_simulator_dispatch_trace_identical_across_schedulers():
    for seed in (3, 17, 92):
        heap_trace, heap_end, heap_events = _run_random_workload("heap", seed)
        cal_trace, cal_end, cal_events = _run_random_workload("calendar",
                                                              seed)
        assert cal_trace == heap_trace
        assert cal_end == heap_end
        assert cal_events == heap_events


def test_simulator_rejects_unknown_scheduler():
    try:
        Simulator(scheduler="wheel-of-fortune")
    except Exception as error:
        assert "unknown scheduler" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected an unknown-scheduler error")


def test_all_same_bucket_cluster_shrinks_wheel():
    """A zero-span cluster (every item the same time) after a wide phase:
    rotation must shrink the wheel back down and keep the span-0 width
    fallback, and ties still pop in seq order."""
    cal = CalendarQueue()
    wide = [(float(k) * 50.0, k, k) for k in range(6000)]
    for item in wide:
        cal.push(item)
    # Drain the wide phase; the spacing-adaptive rotation grows the wheel.
    out = [cal.pop() for _ in range(len(wide))]
    assert out == wide
    grown = cal._nbuckets
    assert grown > 64
    t0 = 1.0e6
    cluster = [(t0, 10_000 + k, k) for k in range(40)]
    for item in cluster:
        cal.push(item)
    assert cal.pop() == cluster[0]  # forces the rotation over the cluster
    assert cal._nbuckets < grown    # wheel shrank for the small cluster
    assert cal._width >= 1e-9       # span-0 fallback kept a positive width
    assert [cal.pop() for _ in range(len(cluster) - 1)] == cluster[1:]
    assert cal.pop() is None


def test_exponential_spread_adapts_width_per_rotation():
    """Exponentially spaced times past the rotation sample cap: each
    rotation sees a different cluster spacing, so the width must re-adapt
    (several rotations, several widths) and the drain stays sorted."""
    items = [(1.01 ** k, k, k) for k in range(6000)]
    rng = random.Random(23)
    shuffled = items[:]
    rng.shuffle(shuffled)
    cal = CalendarQueue()
    widths = set()
    out = []
    for item in shuffled:
        cal.push(item)
    for _ in range(len(items)):
        out.append(cal.pop())
        widths.add(cal._width)
    assert out == items
    assert cal.rotations > 1
    assert len(widths) > 1  # width actually re-adapted across rotations


def test_small_capacity_randomized_drain_matches_heap():
    """Tiny wheels (down to one bucket) force a rotation nearly every
    step; the drain must still match the heap item-for-item."""
    for nbuckets, width, seed in ((1, 1e-6, 5), (2, 0.5, 6), (3, 1e3, 7),
                                  (5, 1e-3, 8)):
        rng = random.Random(seed)
        heap = []
        cal = CalendarQueue(width=width, nbuckets=nbuckets)
        heap_out, cal_out = [], []
        for seq in range(500):
            t = rng.choice((0.0, rng.uniform(0.0, 1e-3),
                            rng.uniform(0.0, 1.0), rng.uniform(0.0, 1e6)))
            item = (t, seq, seq)
            heapq.heappush(heap, item)
            cal.push(item)
            if rng.random() < 0.4:
                heap_out.append(heapq.heappop(heap))
                cal_out.append(cal.pop())
        while heap:
            heap_out.append(heapq.heappop(heap))
            cal_out.append(cal.pop())
        assert cal_out == heap_out
        assert cal.pop() is None and len(cal) == 0


def test_single_bucket_peek_pop_at_across_rotation():
    """peek/pop_at/pop_le agree with a heap when every access rotates."""
    cal = CalendarQueue(width=1e-9, nbuckets=1)
    items = [(float(t), seq, seq) for seq, t in
             enumerate((3.0, 1.0, 2.0, 1.0, 9.0))]
    for item in items:
        cal.push(item)
    ordered = sorted(items)
    assert cal.peek_time() == 1.0
    assert cal.pop_at(0.5) is None
    assert cal.pop_at(1.0) == ordered[0]
    assert cal.pop_le(2.5) == ordered[1]
    assert cal.peek_item() == ordered[2]
    assert cal.pop_le(0.1) is None
    assert [cal.pop() for _ in range(3)] == ordered[2:]
