"""Shared pipeline builders used by tests and benchmarks."""

from __future__ import annotations

from repro.engine import (JobGraph, KeyedReduceLogic, LatencyMarker,
                          OperatorSpec, Partitioning, Record, StreamJob,
                          Watermark)
from repro.engine.graph import OperatorSpec
from repro.engine.runtime import JobConfig


def build_keyed_job(num_key_groups: int = 16,
                    source_parallelism: int = 2,
                    agg_parallelism: int = 2,
                    agg_service: float = 0.0004,
                    state_bytes_per_group: float = 2e6,
                    collect: bool = False,
                    job_config: JobConfig = None) -> StreamJob:
    """source → keyed sum → sink, the canonical scaling test pipeline."""
    graph = JobGraph("test-job", num_key_groups=num_key_groups)
    graph.add_source("src", parallelism=source_parallelism,
                     service_time=0.00005)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=agg_parallelism,
        service_time=agg_service,
        keyed=True,
        initial_state_bytes_per_group=state_bytes_per_group))
    graph.add_sink("sink", collect=collect)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    return StreamJob(graph, config=job_config).build()


def drive(job: StreamJob, until: float, record_gap: float = 0.005,
          keys: int = 40, count: int = 5, marker_every: int = 5,
          watermark_every: int = 20):
    """Deterministic generator: round-robin keys at a fixed rate."""
    def gen():
        sources = job.sources()
        i = 0
        while job.sim.now < until:
            for s in sources:
                s.offer(Record(key=f"k{i % keys}", event_time=job.sim.now,
                               count=count))
            if marker_every and i % marker_every == 0:
                sources[0].offer(LatencyMarker(key=f"k{i % keys}"))
            if watermark_every and i % watermark_every == 0:
                for s in sources:
                    s.offer(Watermark(timestamp=job.sim.now))
            i += 1
            yield job.sim.timeout(record_gap)
    job.sim.spawn(gen(), name="test-driver")
    return job


def assert_assignment_consistent(job: StreamJob, op_name: str) -> None:
    """Post-scaling invariant: every key-group lives exactly where the
    authoritative assignment says, and nowhere else (processable)."""
    assignment = job.assignments[op_name]
    instances = job.instances(op_name)
    for kg, owner in assignment.as_dict().items():
        assert instances[owner].state.has_processable(kg), (
            f"kg {kg} missing at declared owner {owner}")
        for other in instances:
            if other.index != owner:
                group = other.state.group(kg)
                assert group is None or not group.processable, (
                    f"kg {kg} duplicated on instance {other.index}")
