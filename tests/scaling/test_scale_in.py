"""Scale-in (N → M, M < N): migration off trailing instances +
decommission.  An extension beyond the paper's scale-out-only evaluation."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                     drive)  # noqa: E402

from repro.core.drrs import DRRSController
from repro.engine import KeyGroupAssignment, Watermark
from repro.scaling import (MecesController, MegaphoneController,
                           MigrationPlan, OTFSController,
                           StopRestartController)


def test_plan_scale_in_moves_off_trailing_instances():
    plan = MigrationPlan.uniform("op", KeyGroupAssignment(16, 4), 2)
    assert plan.is_scale_in
    assert plan.new_instance_indices == []
    assert plan.removed_instance_indices == [2, 3]
    for move in plan.moves:
        assert move.dst_index < 2
    # every group owned by a removed instance must move
    current = KeyGroupAssignment(16, 4)
    for kg in range(16):
        if current.owner(kg) >= 2:
            assert any(m.key_group == kg for m in plan.moves)


@pytest.mark.parametrize("controller_cls,kwargs", [
    (DRRSController, {}),
    (OTFSController, {}),
    (MegaphoneController, {"batch_size": 2}),
    (MecesController, {"sub_groups": 2}),
    (StopRestartController, {}),
], ids=["drrs", "otfs", "megaphone", "meces", "stop-restart"])
def test_scale_in_completes_and_is_consistent(controller_cls, kwargs):
    job = build_keyed_job(num_key_groups=16, agg_parallelism=4)
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = controller_cls(job, **kwargs)
    done = controller.request_rescale("agg", 2)
    job.run(until=35.0)
    assert done.triggered
    assert len(job.instances("agg")) == 2
    assert job.assignments["agg"].parallelism == 2
    assert_assignment_consistent(job, "agg")
    job.run(until=40.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_scale_in_removes_channels_from_predecessors():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=4)
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 2)
    job.run(until=35.0)
    assert done.triggered
    for _sender, edge in job.senders_to("agg"):
        assert len(edge.channels) == 2
        assert all(target < 2 for target in edge.routing_table.values())


def test_scale_in_then_scale_out():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=4)
    drive(job, until=50.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 2)
    job.run(until=25.0)
    assert done.triggered
    controller2 = DRRSController(job)
    done2 = controller2.request_rescale("agg", 3)
    job.run(until=55.0)
    assert done2.triggered
    assert len(job.instances("agg")) == 3
    assert_assignment_consistent(job, "agg")
    job.run(until=60.0)
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_scale_in_preserves_per_key_history():
    from tests.core.test_semantics import (feed, final_histories,
                                           history_job)

    job = history_job(parallelism=4)
    counters = feed(job)
    job.run(until=6.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 2)
    job.run(until=30.0)
    assert done.triggered
    histories = final_histories(job)
    for key, total in counters.items():
        assert histories.get(key) == tuple(range(total))


def test_watermarks_still_advance_after_scale_in():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=4)
    drive(job, until=25.0, watermark_every=10)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 2)
    job.run(until=24.0)
    assert done.triggered
    sink = job.instances("sink")[0]
    before = sink.current_watermark
    for source in job.sources():
        source.offer(Watermark(timestamp=99.0))
    job.run(until=26.0)
    assert sink.current_watermark >= before
    assert sink.current_watermark == 99.0


def test_scale_in_to_one_instance():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=4)
    drive(job, until=25.0)
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale("agg", 1)
    job.run(until=35.0)
    assert done.triggered
    assert len(job.instances("agg")) == 1
    assert_assignment_consistent(job, "agg")


def test_parallelism_cannot_exceed_key_groups():
    job = build_keyed_job(num_key_groups=16)
    controller = DRRSController(job)
    with pytest.raises(ValueError):
        controller.request_rescale("agg", 17)
    with pytest.raises(ValueError):
        controller.request_rescale("agg", 0)