"""Migration plans: uniform repartitioning and views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import KeyGroupAssignment
from repro.scaling import MigrationPlan


def make_plan(n=16, old=2, new=4):
    return MigrationPlan.uniform("op", KeyGroupAssignment(n, old), new)


def test_uniform_plan_properties():
    plan = make_plan()
    assert plan.old_parallelism == 2
    assert plan.new_parallelism == 4
    assert plan.new_instance_indices == [2, 3]
    assert len(plan) == len(plan.moves)


def test_routing_updates_cover_exactly_moves():
    plan = make_plan()
    updates = plan.routing_updates()
    assert set(updates) == set(plan.migrating_groups)
    for move in plan.moves:
        assert updates[move.key_group] == move.dst_index


def test_by_path_partitions_moves():
    plan = make_plan()
    total = sum(len(kgs) for kgs in plan.by_path().values())
    assert total == len(plan.moves)
    for (src, dst), kgs in plan.by_path().items():
        assert kgs == sorted(kgs)
        for kg in kgs:
            move = plan.move_for(kg)
            assert (move.src_index, move.dst_index) == (src, dst)


def test_moves_from():
    plan = make_plan()
    for src in range(plan.old_parallelism):
        for move in plan.moves_from(src):
            assert move.src_index == src


def test_move_for_unknown_raises():
    plan = make_plan()
    stationary = set(range(16)) - set(plan.migrating_groups)
    if stationary:
        with pytest.raises(KeyError):
            plan.move_for(next(iter(stationary)))


@given(n=st.integers(4, 256), old=st.integers(1, 8), extra=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_plan_target_consistency(n, old, extra):
    new = old + extra
    if n < new:
        return
    plan = MigrationPlan.uniform("op", KeyGroupAssignment(n, old), new)
    # applying all moves to the source assignment yields the target
    assignment = KeyGroupAssignment(n, old)
    mapping = assignment.as_dict()
    for move in plan.moves:
        assert mapping[move.key_group] == move.src_index
        mapping[move.key_group] = move.dst_index
    assert mapping == plan.target.as_dict()
    # every new instance receives at least one key-group
    for idx in plan.new_instance_indices:
        assert any(m.dst_index == idx for m in plan.moves)
