"""ScalingMetrics: the Fig. 12/13 quantities in isolation."""

import pytest

from repro.scaling import ScalingMetrics


class FakeInstance:
    def __init__(self, name):
        self.name = name


def test_propagation_delay_sums_per_signal():
    m = ScalingMetrics()
    m.signal_injected("s1", 10.0)
    m.signal_injected("s2", 20.0)
    m.assign_group(1, "s1")
    m.assign_group(2, "s2")
    m.note_migration_started(1, 10.5)   # s1: 0.5
    m.note_migration_started(2, 22.0)   # s2: 2.0
    assert m.cumulative_propagation_delay() == pytest.approx(2.5)


def test_first_injection_wins():
    m = ScalingMetrics()
    m.signal_injected("s", 10.0)
    m.signal_injected("s", 9.0)   # another predecessor, earlier
    m.signal_injected("s", 11.0)  # later: ignored
    assert m.injections["s"] == 9.0


def test_first_migration_only_counts_once_per_signal():
    m = ScalingMetrics()
    m.signal_injected("s", 10.0)
    m.assign_group(1, "s")
    m.assign_group(2, "s")
    m.note_migration_started(1, 11.0)
    m.note_migration_started(2, 15.0)  # not the first of the signal
    assert m.cumulative_propagation_delay() == pytest.approx(1.0)


def test_dependency_uses_anchor_when_given():
    m = ScalingMetrics()
    m.signal_injected("phase0", 10.0)
    m.signal_injected("phase1", 30.0)
    m.assign_group(1, "phase0", anchor_id="phase0")
    m.assign_group(2, "phase1", anchor_id="phase0")  # Naive-Division chain
    m.note_migration_completed(1, 12.0)   # 2 from phase0
    m.note_migration_completed(2, 34.0)   # 24 from phase0 (not 4!)
    assert m.average_dependency_overhead() == pytest.approx((2 + 24) / 2)


def test_dependency_defaults_to_own_signal():
    m = ScalingMetrics()
    m.signal_injected("a", 10.0)
    m.assign_group(1, "a")
    m.note_migration_completed(1, 13.0)
    assert m.average_dependency_overhead() == pytest.approx(3.0)


def test_suspension_accounting_and_series():
    m = ScalingMetrics()
    m.note_suspension(FakeInstance("i0"), 1.0, 2.0)
    m.note_suspension(FakeInstance("i1"), 1.5, 4.0)
    m.note_suspension(FakeInstance("i0"), 5.0, 5.5)
    assert m.total_suspension() == pytest.approx(4.0)
    series = m.suspension_series()
    assert [t for t, _v in series] == [2.0, 4.0, 5.5]
    values = [v for _t, v in series]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(4.0)


def test_duration_requires_both_stamps():
    m = ScalingMetrics()
    assert m.duration is None
    m.begin(5.0)
    assert m.duration is None
    m.finish(12.0)
    assert m.duration == pytest.approx(7.0)


def test_remigration_and_reroute_counters():
    m = ScalingMetrics()
    m.note_remigration()
    m.note_remigration(3)
    m.note_reroute(100)
    assert m.remigrations == 4
    assert m.records_rerouted == 100


def test_migration_started_is_idempotent():
    m = ScalingMetrics()
    m.signal_injected("s", 0.0)
    m.assign_group(1, "s")
    m.note_migration_started(1, 5.0)
    m.note_migration_started(1, 9.0)   # e.g. a re-migration
    assert m.migration_started[1] == 5.0
