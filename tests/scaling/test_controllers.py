"""End-to-end behaviour of every baseline controller.

Shared checks: scaling completes, the authoritative assignment is
consistent, no records are lost, and each mechanism shows its signature
overhead profile.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import (assert_assignment_consistent, build_keyed_job,
                      drive)  # noqa: E402

from repro.scaling import (MecesController, MegaphoneController,
                           OTFSController, StopRestartController,
                           UnboundController)


def run_scaled(controller_cls, until=35.0, scale_at=5.0, new_parallelism=4,
               **kwargs):
    job = build_keyed_job()
    drive(job, until=until - 5.0)
    job.run(until=scale_at)
    controller = controller_cls(job, **kwargs)
    done = controller.request_rescale("agg", new_parallelism)
    job.run(until=until)
    return job, controller, done


CONTROLLERS = [
    (OTFSController, {"migration": "fluid", "injection": "source"}),
    (OTFSController, {"migration": "fluid", "injection": "predecessor"}),
    (OTFSController, {"migration": "all_at_once", "injection": "source"}),
    (MegaphoneController, {"batch_size": 2}),
    (MecesController, {"sub_groups": 2}),
    (UnboundController, {}),
    (StopRestartController, {}),
]


@pytest.mark.parametrize("cls,kwargs", CONTROLLERS,
                         ids=lambda v: getattr(v, "name", str(v)))
def test_controller_completes_and_is_consistent(cls, kwargs):
    job, controller, done = run_scaled(cls, **kwargs)
    assert done.triggered, f"{controller.name} did not finish"
    assert_assignment_consistent(job, "agg")
    assert job.assignments["agg"].parallelism == 4


@pytest.mark.parametrize("cls,kwargs", CONTROLLERS,
                         ids=lambda v: getattr(v, "name", str(v)))
def test_controller_conserves_records(cls, kwargs):
    job, controller, done = run_scaled(cls, **kwargs)
    assert done.triggered
    job.run(until=40.0)  # drain
    assert job.sink_logic().records_in == job.metrics.total_source_output()


@pytest.mark.parametrize("cls,kwargs", CONTROLLERS,
                         ids=lambda v: getattr(v, "name", str(v)))
def test_controller_migrates_every_group(cls, kwargs):
    job, controller, done = run_scaled(cls, **kwargs)
    assert done.triggered
    m = controller.metrics
    migrating = set(m.group_signal)
    assert migrating, "plan should migrate something"
    assert set(m.migration_completed) >= migrating


def test_rescale_rejects_non_keyed_operator():
    job = build_keyed_job()
    controller = OTFSController(job)
    with pytest.raises(ValueError):
        controller.request_rescale("src", 4)


def test_rescale_rejects_invalid_parallelism():
    job = build_keyed_job()
    controller = OTFSController(job)
    with pytest.raises(ValueError):
        controller.request_rescale("agg", 0)
    with pytest.raises(ValueError):
        controller.request_rescale("agg", job.graph.num_key_groups + 1)


def test_rescale_same_parallelism_allowed_for_resume():
    """Equal parallelism is legal: a superseding request may need to finish
    the remaining moves of a cancelled operation (§IV-B)."""
    job = build_keyed_job()
    drive(job, until=10.0)
    job.run(until=2.0)
    controller = OTFSController(job)
    done = controller.request_rescale("agg", 2)  # no moves, no provisioning
    job.run(until=10.0)
    assert done.triggered


def test_megaphone_has_highest_propagation_delay():
    _j1, mega, d1 = run_scaled(MegaphoneController, batch_size=2)
    _j2, otfs, d2 = run_scaled(OTFSController)
    assert d1.triggered and d2.triggered
    assert (mega.metrics.cumulative_propagation_delay()
            > otfs.metrics.cumulative_propagation_delay())


def test_meces_has_lowest_propagation_delay():
    _j1, meces, d1 = run_scaled(MecesController)
    _j2, otfs, d2 = run_scaled(OTFSController)
    assert d1.triggered and d2.triggered
    assert (meces.metrics.cumulative_propagation_delay()
            <= otfs.metrics.cumulative_propagation_delay())


def test_unbound_has_zero_suspension():
    _job, unbound, done = run_scaled(UnboundController)
    assert done.triggered
    assert unbound.metrics.total_suspension() == 0.0


def test_stop_restart_halts_everything():
    job, controller, done = run_scaled(StopRestartController)
    assert done.triggered
    # the halt shows up as suspension on the scaling instances
    assert controller.metrics.total_suspension() > 0


def test_all_at_once_single_transfer_per_source():
    job, controller, done = run_scaled(
        OTFSController, migration="all_at_once")
    assert done.triggered
    m = controller.metrics
    # every group of one source completes at the same instant (batch)
    by_completion = {}
    for kg, t in m.migration_completed.items():
        by_completion.setdefault(round(t, 9), []).append(kg)
    assert len(by_completion) <= 2  # one batch per old instance


def test_meces_back_and_forth_under_backlog():
    """Fetch-on-demand thrash (§V-B): with a deep input backlog at routing
    flip time, hot sub-key-groups bounce between instances."""
    from repro.engine import Record

    job = build_keyed_job(num_key_groups=8, agg_parallelism=2,
                          agg_service=0.01)

    def gen():
        sources = job.sources()
        i = 0
        while job.sim.now < 20.0:
            for s in sources:
                s.offer(Record(key=f"k{i % 32}", event_time=job.sim.now,
                               count=1))
            i += 1
            yield job.sim.timeout(0.004)

    job.sim.spawn(gen())
    job.run(until=3.0)
    controller = MecesController(job, sub_groups=4)
    done = controller.request_rescale("agg", 4)
    job.run(until=60.0)
    assert done.triggered
    assert controller.metrics.remigrations > 0
    assert max(controller._move_counts.values()) > 1
