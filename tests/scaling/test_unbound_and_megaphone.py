"""Mechanism-specific behaviours: Unbound's documented correctness
violation and Megaphone's Naive-Division phase structure."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import (JobGraph, KeyedReduceLogic, OperatorSpec,
                          Partitioning, Record, StreamJob)
from repro.scaling import MegaphoneController, UnboundController


def test_unbound_violates_per_key_history_under_load():
    """Unbound processes records against missing state ("universal keys");
    with enough in-flight traffic the per-key history breaks — exactly why
    the paper uses it only as a lower-bound probe (§II-B)."""
    graph = JobGraph("unbound-violation", num_key_groups=8)
    graph.add_source("src", parallelism=1)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or ()) + (r.value,)),
        parallelism=2, service_time=0.01, keyed=True,
        initial_state_bytes_per_group=5e6))
    graph.add_sink("sink", collect=True)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()

    counters = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < 25.0:
            key = f"k{i % 24}"
            seq = counters.get(key, 0)
            counters[key] = seq + 1
            src.offer(Record(key=key, event_time=job.sim.now, value=seq,
                             count=1))
            i += 1
            yield job.sim.timeout(0.004)

    job.sim.spawn(gen())
    job.run(until=3.0)  # deep backlog builds (service ≫ arrival)
    controller = UnboundController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=80.0)
    assert done.triggered
    last = {}
    for record in job.sink_logic().collected:
        last[record.key] = record.value
    corrupted = [key for key, total in counters.items()
                 if last.get(key) != tuple(range(total))]
    assert corrupted, ("Unbound should corrupt some per-key history under "
                       "load — if this starts passing, the probe is no "
                       "longer bypassing correctness")


def test_megaphone_batch_size_controls_signal_count():
    for batch_size, expected_min in ((2, 6), (8, 2)):
        job = build_keyed_job(num_key_groups=16, agg_parallelism=2)
        drive(job, until=25.0)
        job.run(until=5.0)
        controller = MegaphoneController(job, batch_size=batch_size)
        done = controller.request_rescale("agg", 4)
        job.run(until=30.0)
        assert done.triggered
        signals = len(controller.metrics.injections)
        assert signals >= expected_min
        moves = len(controller.metrics.migration_completed)
        import math
        assert signals == math.ceil(moves / batch_size)


def test_megaphone_phases_are_sequential():
    """Naive Division: phase k+1's signal is injected only after phase k's
    batch finished migrating — the linear dependency chain of Fig. 7a."""
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=40.0)
    job.run(until=5.0)
    controller = MegaphoneController(job, batch_size=4)
    done = controller.request_rescale("agg", 4)
    job.run(until=45.0)
    assert done.triggered
    m = controller.metrics
    phases = sorted(m.injections)  # (scale_id, phase) tuples
    for earlier, later in zip(phases, phases[1:]):
        batch_done = max(
            m.migration_completed[kg]
            for kg, sig in m.group_signal.items() if sig == earlier)
        assert m.injections[later] >= batch_done, (
            f"phase {later} injected before {earlier} completed")


def test_megaphone_dependency_grows_along_the_chain():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          state_bytes_per_group=4e6)
    drive(job, until=40.0)
    job.run(until=5.0)
    controller = MegaphoneController(job, batch_size=2)
    done = controller.request_rescale("agg", 4)
    job.run(until=45.0)
    assert done.triggered
    m = controller.metrics
    # Completion times ordered by phase: later phases complete later.
    by_phase = {}
    for kg, sig in m.group_signal.items():
        by_phase.setdefault(sig[1], []).append(m.migration_completed[kg])
    phases = sorted(by_phase)
    lasts = [max(by_phase[p]) for p in phases]
    assert lasts == sorted(lasts)
