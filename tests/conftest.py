"""Pytest fixtures shared across the test suite."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import build_keyed_job  # noqa: E402


@pytest.fixture
def keyed_job():
    return build_keyed_job()
