"""Chaos bank regression: every scenario must pass at the pinned seed.

``crash-mid-subscale`` is the §IV-C acceptance scenario — its internal
expectations pin that recovery restored a checkpoint taken *during* the
scaling operation and that the controller's rollback + retry completed
the rescale.  The others cover phase-triggered crashes, lossy windows,
stalled transfers, re-ordering, and double faults.
"""

import pytest

from repro.experiments.chaos_bank import CHAOS_SCENARIOS
from repro.faults import ChaosHarness

SEED = 7


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_scenario_passes_at_pinned_seed(name):
    report = ChaosHarness(CHAOS_SCENARIOS[name], seed=SEED).run()
    assert report.passed, report.summary()


def test_report_shape():
    report = ChaosHarness(CHAOS_SCENARIOS["delay-blip"], seed=SEED).run()
    doc = report.to_dict()
    assert doc["scenario"] == "delay-blip"
    assert doc["seed"] == SEED
    assert doc["passed"] is True
    assert doc["violations"] == []
    assert "delay-blip" in report.summary()


def test_acceptance_scenario_across_seeds():
    # The mid-subscale crash must not be a lucky seed: a small sweep.
    for seed in (0, 3, 11):
        report = ChaosHarness(CHAOS_SCENARIOS["crash-mid-subscale"],
                              seed=seed).run()
        assert report.passed, report.summary()
