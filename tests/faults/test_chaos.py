"""Chaos bank regression: every scenario must pass at the pinned seed —
under *both* keyed-state backends, with identical semantic traces.

``crash-mid-subscale`` is the §IV-C acceptance scenario — its internal
expectations pin that recovery restored a checkpoint taken *during* the
scaling operation and that the controller's rollback + retry completed
the rescale.  The others cover phase-triggered crashes, lossy windows,
stalled transfers, stalled checkpoint uploads, re-ordering, double
faults, and the recovery-time comparison on large state.
"""

import pytest

from repro.experiments.chaos_bank import CHAOS_SCENARIOS
from repro.faults import ChaosHarness, check_backend_equivalence

SEED = 7


@pytest.mark.parametrize("backend", ["dict", "changelog"])
@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_scenario_passes_at_pinned_seed(name, backend):
    report = ChaosHarness(CHAOS_SCENARIOS[name], seed=SEED,
                          state_backend=backend).run()
    assert report.passed, report.summary()
    assert report.state_backend == backend


@pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
def test_backend_equivalence_at_pinned_seed(name):
    """Dict and changelog runs of one scenario converge to the same
    semantic trace — state, final sink values, watermarks, digest."""
    traces = {
        backend: ChaosHarness(CHAOS_SCENARIOS[name], seed=SEED,
                              state_backend=backend).run().semantic_trace
        for backend in ("dict", "changelog")
    }
    assert check_backend_equivalence(traces["dict"],
                                     traces["changelog"]) == []


def test_report_shape():
    report = ChaosHarness(CHAOS_SCENARIOS["delay-blip"], seed=SEED).run()
    doc = report.to_dict()
    assert doc["scenario"] == "delay-blip"
    assert doc["seed"] == SEED
    assert doc["passed"] is True
    assert doc["violations"] == []
    assert doc["state_backend"] == "dict"
    assert doc["semantic_trace"]["digest"]
    assert "delay-blip" in report.summary()


def test_recovery_time_measurements_recorded():
    report = ChaosHarness(CHAOS_SCENARIOS["crash-large-state"],
                          seed=SEED).run()
    assert report.passed, report.summary()
    m = report.measurements
    assert m["state_backend"] == "changelog"
    # The two headline claims, as recorded numbers: ~constant barrier
    # cost and recovery in at most half the dict backend's time.
    assert m["max_checkpoint_sync_seconds"] <= \
        0.1 * m["dict_max_checkpoint_sync_seconds"]
    assert m["recovery_restore_seconds"] <= \
        0.5 * m["dict_recovery_restore_seconds"]


def test_acceptance_scenario_across_seeds():
    # The mid-subscale crash must not be a lucky seed: a small sweep.
    for seed in (0, 3, 11):
        report = ChaosHarness(CHAOS_SCENARIOS["crash-mid-subscale"],
                              seed=seed).run()
        assert report.passed, report.summary()
