"""FaultInjector: inertness, determinism, windows, phase triggers."""

import pytest

from repro.engine import (CheckpointCoordinator, JobGraph, KeyedReduceLogic,
                          OperatorSpec, Partitioning, Record, StreamJob)
from repro.engine.recovery import RecoveryManager
from repro.faults import (CrashInstance, DropRecords, DuplicateRecords,
                          FaultInjector)


def small_job(stop_at=6.0):
    graph = JobGraph("inj", num_key_groups=8)
    graph.add_source("src", parallelism=1)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=1e-4, keyed=True))
    graph.add_sink("sink")
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()
    produced = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < stop_at:
            key = f"k{i % 10}"
            src.offer(Record(key=key, event_time=job.sim.now, count=1))
            produced[key] = produced.get(key, 0) + 1
            i += 1
            yield job.sim.timeout(0.01)

    job.sim.spawn(gen())
    return job, produced


def merged_state(job):
    totals = {}
    for inst in job.instances("agg"):
        for group in inst.state.groups():
            for key, value in group.entries.items():
                totals[key] = totals.get(key, 0) + value
    return totals


def test_armed_empty_injector_is_inert():
    job_a, _ = small_job()
    job_a.run(until=10.0)
    job_b, _ = small_job()
    FaultInjector(job_b, seed=3).arm()
    job_b.run(until=10.0)
    assert job_b.sim.events_processed == job_a.sim.events_processed


def test_fault_needs_a_trigger():
    job, _ = small_job()
    with pytest.raises(ValueError):
        FaultInjector(job).add(CrashInstance("agg", 0))


def test_crash_before_any_checkpoint_is_reported_not_raised():
    job, _ = small_job()
    recovery = RecoveryManager(job).install()
    injector = FaultInjector(job, recovery=recovery, seed=0)
    injector.add(CrashInstance("agg", 0, at=0.5)).arm()
    job.run(until=3.0)
    assert injector.injected  # it fired ...
    assert injector.errors    # ... but nothing was recoverable
    assert "checkpoint" in injector.errors[0][1]


def test_drop_window_loses_records():
    job, produced = small_job()
    injector = FaultInjector(job, seed=1)
    injector.add(DropRecords("src", "agg", duration=1.0,
                             probability=1.0, at=2.0)).arm()
    job.run(until=10.0)
    state = merged_state(job)
    assert sum(state.values()) < sum(produced.values())


def test_duplicate_window_double_counts():
    job, produced = small_job()
    injector = FaultInjector(job, seed=1)
    injector.add(DuplicateRecords("src", "agg", duration=1.0,
                                  probability=1.0, at=2.0)).arm()
    job.run(until=10.0)
    state = merged_state(job)
    assert sum(state.values()) > sum(produced.values())


def test_phase_trigger_fires_on_span_open():
    from repro.core.drrs import DRRSController

    job, _ = small_job(stop_at=8.0)
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.2).install()
    controller = DRRSController(job)
    job.sim.call_at(4.0, lambda: controller.request_rescale("agg", 3))
    injector = FaultInjector(job, recovery=recovery, seed=0)
    injector.add(CrashInstance("agg", 0, phase="state-transfer")).arm()
    job.run(until=20.0)
    assert injector.injected
    when, kind, _detail = injector.injected[0]
    assert kind == "CrashInstance"
    assert when >= 4.0  # only once the migration actually began
    assert recovery.recoveries


def test_phase_trigger_requires_telemetry():
    job, _ = small_job()
    injector = FaultInjector(job, seed=0)
    with pytest.raises(ValueError):
        injector.add(CrashInstance("agg", 0, phase="state-transfer")).arm()


def test_same_seed_same_run():
    def one_run():
        job, produced = small_job()
        checkpoints = CheckpointCoordinator(job, interval=1.0)
        checkpoints.start()
        recovery = RecoveryManager(job, restart_seconds=0.2).install()
        injector = FaultInjector(job, recovery=recovery, seed=5)
        injector.add(DropRecords("src", "agg", duration=0.4,
                                 probability=0.5, at=1.3)).arm()
        job.run(until=12.0)
        return job.sim.events_processed, list(injector.injected)

    assert one_run() == one_run()
