"""Recovery edge cases: no checkpoint, double failures, post-rescale
crashes, and a seeded fault-time property sweep."""

import random

import pytest

from repro.engine import (CheckpointCoordinator, JobConfig, JobGraph,
                          KeyedReduceLogic, OperatorSpec, Partitioning,
                          Record, StreamJob)
from repro.engine.recovery import RecoveryError, RecoveryManager
from repro.faults.invariants import check_all


@pytest.fixture(params=["dict", "changelog"])
def backend(request):
    """Every edge case must hold under both keyed-state backends."""
    return request.param


def counting_job(stop_at=30.0, parallelism=2, state_backend="dict"):
    graph = JobGraph("edges", num_key_groups=8)
    graph.add_source("src", parallelism=1)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=parallelism, service_time=2e-4, keyed=True))
    graph.add_sink("sink")
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(
        graph,
        config=JobConfig(state_backend=state_backend)).build()
    produced = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < stop_at:
            key = f"k{i % 12}"
            src.offer(Record(key=key, event_time=job.sim.now, count=1))
            produced[key] = produced.get(key, 0) + 1
            i += 1
            yield job.sim.timeout(0.01)

    job.sim.spawn(gen())
    return job, produced


def total_state(job):
    totals = {}
    for inst in job.instances("agg"):
        for group in inst.state.groups():
            for key, value in group.entries.items():
                totals[key] = value
    return totals


def test_failure_before_first_checkpoint_completes(backend):
    job, _produced = counting_job(state_backend=backend)
    coordinator = CheckpointCoordinator(job, interval=5.0)
    coordinator.start()
    manager = RecoveryManager(job).install()
    # Run just long enough for traffic but not for checkpoint #1 to
    # complete its full alignment round.
    job.run(until=0.05)
    with pytest.raises(RecoveryError):
        manager.fail_and_recover("too early")


def test_double_failure_during_restore(backend):
    job, produced = counting_job(state_backend=backend)
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    # Long restart window so the second failure reliably lands inside
    # the first restore.
    manager = RecoveryManager(job, restart_seconds=2.0).install()
    job.run(until=10.0)
    first = manager.fail_and_recover("first")
    job.run(until=10.5)  # mid-restore: restart window is still open
    assert not first.triggered
    second = manager.fail_and_recover("second")
    job.run(until=40.0)
    assert first.triggered and second.triggered
    assert len(manager.recoveries) == 2
    assert total_state(job) == produced


def test_failure_right_after_rescale_completes(backend):
    from repro.core.drrs import DRRSController

    job, produced = counting_job(state_backend=backend)
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job, restart_seconds=0.5,
                              retain_checkpoints=50).install()
    controller = DRRSController(job)
    holder = {}

    def kick():
        holder["done"] = controller.request_rescale("agg", 4)

    job.sim.call_at(6.0, kick)
    job.run(until=20.0)
    done = holder["done"]
    assert done.triggered and done._ok
    assert len(job.instances("agg")) == 4
    # Crash immediately after the scale settles; the restored topology
    # must keep the post-rescale parallelism and exact state.
    manager.fail_and_recover("post-rescale crash")
    job.run(until=45.0)
    assert len(job.instances("agg")) == 4
    assert total_state(job) == produced
    assert check_all(job, "agg", oracle=produced) == []


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_seeded_crash_time_property(seed, backend):
    """Whatever instant the crash lands at, recovery restores
    exactly-once keyed state and unique key-group ownership."""
    rng = random.Random(seed)
    crash_at = rng.uniform(3.0, 14.0)
    job, produced = counting_job(stop_at=16.0, state_backend=backend)
    coordinator = CheckpointCoordinator(job, interval=1.5)
    coordinator.start()
    manager = RecoveryManager(job, restart_seconds=0.3).install()
    job.sim.call_at(crash_at,
                    lambda: manager.fail_and_recover(f"seeded@{crash_at}"))
    job.run(until=45.0)
    assert manager.recoveries
    assert check_all(job, "agg", oracle=produced) == [], (
        f"seed={seed} crash_at={crash_at}")
