"""Per-record explode of batch carriers, at every site that needs it.

Batches (including columnar carriers with a cached column view) are
transport envelopes only: whenever a consumer-side structure must hold
individual records — checkpoint barriers, fault windows, rescale
re-routing, recovery surgery — the plane collapses and the member records
come back out with identity, order and per-record delivery times intact.
"""

import sys
from types import SimpleNamespace

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine.channels import Channel, InputChannel
from repro.engine.cluster import LinkSpec
from repro.engine.records import Record, RecordBatch, Watermark
from repro.engine.runtime import JobConfig
from repro.simulation import Simulator
from repro.simulation.primitives import Signal


class _Receiver:
    def __init__(self, sim):
        self.sim = sim
        self.wake = Signal(sim)

    def on_control(self, channel, element):
        pass


def _wire_channel(columnar=False):
    """A batching channel into a bare receiver, outside any StreamJob."""
    sim = Simulator()
    channel = Channel(sim, LinkSpec(bandwidth=1e6, latency=0.001),
                      name="t", outbox_capacity=64, inbox_capacity=64)
    channel.batching = True
    channel.max_batch = 32
    if columnar:
        channel._job = SimpleNamespace(columnar_active=True,
                                       scaling_active=0)
    receiver = _Receiver(sim)
    input_channel = InputChannel(receiver, name="t-in")
    channel.attach(input_channel)
    return sim, channel, input_channel


def _send_records(sim, channel, n):
    records = [Record(key=f"k{i}", key_group=i % 4, event_time=float(i),
                      count=2, size_bytes=200.0) for i in range(n)]

    def producer():
        for rec in records:
            yield channel.send(rec)

    sim.spawn(producer(), name="producer")
    return records


def _materialize_roundtrip(columnar):
    sim, channel, input_channel = _wire_channel(columnar=columnar)
    records = _send_records(sim, channel, 20)
    # Run just long enough for a carrier to be queued with some members
    # still invisible (per-record plane would not have delivered them yet).
    while not any(e.__class__ is RecordBatch for e in input_channel.queue):
        if sim.peek() == float("inf"):
            raise AssertionError("no batch ever formed")
        sim.step()
    batch = next(e for e in input_channel.queue
                 if e.__class__ is RecordBatch)
    if columnar:
        assert batch.columns() is not None  # column view cached pre-explode
    visible = list(batch.visible_times)
    now = sim.now
    input_channel.materialize(now)
    # Round trip: no carriers left anywhere on the consumer side.
    assert all(e.__class__ is not RecordBatch for e in input_channel.queue)
    queued_ids = [e.record_id for e in input_channel.queue
                  if isinstance(e, Record)]
    visible_ids = [rec.record_id for rec, t in
                   zip(batch.records, visible) if t <= now]
    assert queued_ids == visible_ids  # identity + order preserved
    # Late members are re-delivered at their original per-record times.
    sim.run()
    delivered = [e.record_id for e in input_channel.queue
                 if isinstance(e, Record)]
    assert delivered == [rec.record_id for rec in records]


def test_materialize_roundtrip_batched():
    _materialize_roundtrip(columnar=False)


def test_materialize_roundtrip_columnar():
    _materialize_roundtrip(columnar=True)


def test_batches_never_cross_a_watermark():
    """Formation stops at time signals: a watermark is never swallowed."""
    sim, channel, input_channel = _wire_channel(columnar=True)

    def producer():
        for i in range(6):
            yield channel.send(Record(key=f"a{i}", key_group=0,
                                      event_time=float(i), size_bytes=200.0))
        yield channel.send(Watermark(timestamp=3.0))
        for i in range(6):
            yield channel.send(Record(key=f"b{i}", key_group=1,
                                      event_time=10.0 + i, size_bytes=200.0))

    sim.spawn(producer(), name="producer")
    sim.run()
    kinds = [type(e).__name__ for e in input_channel.queue]
    wm = kinds.index("Watermark")
    # Every element before the watermark is an a-record (or carrier of
    # them), every element after is a b-record: no reordering across it.
    for e in list(input_channel.queue)[:wm]:
        members = e.records if e.__class__ is RecordBatch else [e]
        assert all(m.key.startswith("a") for m in members)
    for e in list(input_channel.queue)[wm + 1:]:
        members = e.records if e.__class__ is RecordBatch else [e]
        assert all(m.key.startswith("b") for m in members)


def test_quiesce_batches_explodes_everything_columnar():
    """StreamJob.quiesce_batches: the rescale/fault collapse, columnar."""
    job = build_keyed_job(job_config=JobConfig(record_plane="columnar"))
    drive(job, until=0.5)
    job.start()
    job.sim.run(until=0.25)
    from repro.engine.columnar import HAVE_NUMPY
    assert job.columnar_active or not HAVE_NUMPY
    job.quiesce_batches()
    for inst in job.all_instances():
        for ic in inst.input_channels:
            assert all(e.__class__ is not RecordBatch for e in ic.queue)
    # Visible members stay queued; invisible ones are re-delivered later —
    # nothing is lost once the run finishes.
    job.sim.run(until=0.5)
    job.stop()


def test_disable_batching_clears_columnar_flag():
    job = build_keyed_job(job_config=JobConfig(record_plane="columnar"))
    job.start()
    job.disable_batching()
    assert job._batching is False
    assert job.columnar_active is False
    job.stop()
