"""Sliding-window aggregation and windowed join."""

import pytest

from repro.engine import (JobGraph, OperatorSpec, Partitioning, Record,
                          SlidingWindowAggregateLogic, StreamJob, Watermark,
                          WindowedJoinLogic)
from repro.engine.windows import _window_starts


class TestWindowStarts:
    def test_tumbling(self):
        assert _window_starts(5.0, 10.0, 10.0) == [0.0]
        assert _window_starts(15.0, 10.0, 10.0) == [10.0]

    def test_sliding_counts(self):
        # size 10, slide 2 → every event belongs to 5 windows
        starts = _window_starts(11.0, 10.0, 2.0)
        assert len(starts) == 5
        for s in starts:
            assert s <= 11.0 < s + 10.0

    def test_boundary_event(self):
        starts = _window_starts(10.0, 10.0, 5.0)
        for s in starts:
            assert s <= 10.0 < s + 10.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SlidingWindowAggregateLogic(size=0, slide=1)
        with pytest.raises(ValueError):
            SlidingWindowAggregateLogic(size=1, slide=2)


def window_job(logic_factory, num_key_groups=4):
    g = JobGraph("w", num_key_groups=num_key_groups)
    g.add_source("src")
    g.add_operator(OperatorSpec("win", logic_factory=logic_factory,
                                parallelism=1, keyed=True))
    g.add_sink("sink", collect=True)
    g.connect("src", "win", Partitioning.HASH)
    g.connect("win", "sink")
    return StreamJob(g).build()


def test_sliding_window_fires_on_watermark():
    logic_holder = []

    def factory():
        logic = SlidingWindowAggregateLogic(size=10.0, slide=5.0,
                                            bytes_per_record=8.0)
        logic_holder.append(logic)
        return logic

    job = window_job(factory)
    job.start()
    src = job.sources()[0]
    src.offer(Record(key="a", event_time=1.0, value=7, count=1))
    src.offer(Record(key="a", event_time=2.0, value=9, count=1))
    src.offer(Watermark(timestamp=11.0))  # window [-5,5) and [0,10) end
    job.run(until=2.0)
    sink = job.sink_logic()
    fired_values = [r.value for r in sink.collected]
    assert 9 in fired_values  # max over the fired window
    assert logic_holder[0].windows_fired >= 1


def test_sliding_window_state_bytes_grow_and_release():
    job = window_job(lambda: SlidingWindowAggregateLogic(
        size=10.0, slide=10.0, bytes_per_record=100.0))
    job.start()
    src = job.sources()[0]
    for i in range(5):
        src.offer(Record(key=f"k{i}", event_time=1.0, count=2))
    job.run(until=1.0)
    win = job.instances("win")[0]
    assert win.state.total_bytes() >= 5 * 2 * 100.0
    src.offer(Watermark(timestamp=25.0))
    job.run(until=2.0)
    # all panes fired and purged; only entry-bookkeeping bytes may linger
    assert win.state.total_bytes() < 5 * 2 * 100.0


def test_sliding_window_does_not_fire_inactive_groups():
    from repro.engine import StateStatus
    job = window_job(lambda: SlidingWindowAggregateLogic(
        size=10.0, slide=10.0, bytes_per_record=1.0))
    job.start()
    src = job.sources()[0]
    src.offer(Record(key="a", event_time=1.0, count=1))
    job.run(until=0.5)
    win = job.instances("win")[0]
    for group in win.state.groups():
        group.status = StateStatus.INACTIVE
    src.offer(Watermark(timestamp=30.0))
    job.run(until=1.0)
    assert job.sink_logic().records_in == 0
    # reactivate → next watermark fires the pane
    for group in win.state.groups():
        group.status = StateStatus.LOCAL
    src.offer(Watermark(timestamp=31.0))
    job.run(until=1.5)
    assert job.sink_logic().records_in >= 1


def test_windowed_join_emits_only_matched_panes():
    # Panes aggregate at key-group granularity (the batching compromise
    # documented in repro.engine.windows): keys in the same key-group share
    # a pane; a key-group pane without both sides present never fires.
    job = window_job(lambda: WindowedJoinLogic(
        size=10.0, side_fn=lambda r: r.value[0],
        bytes_per_record=10.0), num_key_groups=64)
    job.start()
    src = job.sources()[0]
    src.offer(Record(key="both", key_group=1, event_time=1.0,
                     value=("left", 1), count=2))
    src.offer(Record(key="both", key_group=1, event_time=2.0,
                     value=("right", 1), count=3))
    src.offer(Record(key="only-left", key_group=2, event_time=1.0,
                     value=("left", 1), count=1))
    src.offer(Watermark(timestamp=15.0))
    job.run(until=2.0)
    sink = job.sink_logic()
    joined = [r for r in sink.collected]
    assert len(joined) == 1
    assert joined[0].value == (2, 3)


def test_windowed_join_purges_state():
    job = window_job(lambda: WindowedJoinLogic(
        size=10.0, side_fn=lambda r: r.value[0], bytes_per_record=50.0))
    job.start()
    src = job.sources()[0]
    src.offer(Record(key="k", event_time=1.0, value=("left", 1), count=1))
    job.run(until=0.5)
    win = job.instances("win")[0]
    assert win.state.total_bytes() > 0
    src.offer(Watermark(timestamp=20.0))
    job.run(until=1.0)
    assert win.state.total_bytes() < 50.0 + 300  # entry bookkeeping only


def test_join_rejects_bad_window():
    with pytest.raises(ValueError):
        WindowedJoinLogic(size=0)
    with pytest.raises(ValueError):
        WindowedJoinLogic(size=5, slide=10)
