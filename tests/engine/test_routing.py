"""Output routing: partitioning modes and per-sender routing tables."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import (JobGraph, LatencyMarker, OperatorSpec,
                          Partitioning, Record)
from repro.engine.routing import OutputEdge


def hash_edge(channels=4, num_key_groups=16):
    edge = OutputEdge("e", Partitioning.HASH, num_key_groups=num_key_groups)
    for i in range(channels):
        edge.add_channel(_FakeChannel(i))
    for kg in range(num_key_groups):
        edge.set_routing(kg, kg % channels)
    return edge


class _FakeChannel:
    def __init__(self, index):
        self.index = index


def test_hash_edge_uses_routing_table():
    edge = hash_edge()
    record = Record(key="x", key_group=5)
    assert edge.channel_for_record(record).index == 5 % 4


def test_hash_edge_computes_key_group_once():
    edge = hash_edge()
    record = Record(key="somekey")
    assert record.key_group is None
    edge.channel_for_record(record)
    assert record.key_group is not None
    first = record.key_group
    edge.channel_for_record(record)
    assert record.key_group == first


def test_set_routing_validates_target():
    edge = hash_edge(channels=2)
    with pytest.raises(ValueError):
        edge.set_routing(0, 5)


def test_forward_edge_uses_sender_index():
    edge = OutputEdge("e", Partitioning.FORWARD, sender_index=1)
    edge.add_channel(_FakeChannel(0))
    edge.add_channel(_FakeChannel(1))
    assert edge.channel_for_record(Record(key="a")).index == 1


def test_rebalance_round_robins():
    edge = OutputEdge("e", Partitioning.REBALANCE)
    for i in range(3):
        edge.add_channel(_FakeChannel(i))
    picks = [edge.channel_for_record(Record(key="a")).index
             for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_marker_routing_follows_key_on_hash_edges():
    edge = hash_edge()
    marker = LatencyMarker(key="probe")
    channel = edge.channel_for_marker(marker)
    assert channel.index == marker.key_group % 4


def test_routing_tables_are_per_sender():
    """Each sender instance owns a private copy of the routing table —
    mutating one must not affect another (the property scaling-signal
    coordination depends on)."""
    job = build_keyed_job()
    senders = job.senders_to("agg")
    assert len(senders) == 2
    (s0, e0), (s1, e1) = senders
    assert e0 is not e1
    before = e1.routing_table[0]
    e0.set_routing(0, 1)
    assert e1.routing_table[0] == before


def test_watermarks_broadcast_to_every_channel():
    job = build_keyed_job()
    drive(job, until=1.0, marker_every=0, watermark_every=5)
    job.run(until=2.0)
    # every agg instance saw a watermark on every channel
    for inst in job.instances("agg"):
        for ch in inst.input_channels:
            assert ch.watermark > float("-inf")
