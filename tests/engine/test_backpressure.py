"""End-to-end backpressure: a slow stage throttles everything upstream."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import (JobGraph, KeyedReduceLogic, OperatorSpec,
                          Partitioning, Record, StreamJob)


def slow_sink_job(sink_service=0.01):
    graph = JobGraph("bp", num_key_groups=8)
    graph.add_source("src", parallelism=1, service_time=1e-5)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=1, service_time=1e-4, keyed=True))
    graph.add_sink("sink", service_time=sink_service)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def feed(job, rate_gap=0.002, until=20.0):
    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < until:
            src.offer(Record(key=f"k{i % 16}", event_time=job.sim.now,
                             count=1))
            i += 1
            yield job.sim.timeout(rate_gap)
    job.sim.spawn(gen())


def test_slow_sink_throttles_source():
    """Offered 500 rec/s, sink capacity 100 rec/s: the source must slow to
    the sink's rate — credit-based flow control propagates end to end."""
    job = slow_sink_job(sink_service=0.01)
    feed(job, rate_gap=0.002, until=20.0)
    job.run(until=20.0)
    emitted = job.metrics.total_source_output(start=10.0, end=20.0)
    assert emitted <= 110 * 10  # ~sink capacity, small slack


def test_backlog_accumulates_at_admission_queue():
    job = slow_sink_job(sink_service=0.01)
    feed(job, rate_gap=0.002, until=20.0)
    job.run(until=20.0)
    backlog = job.sources()[0].backlog
    assert backlog > 1000  # offered - consumed piled up at the Kafka stand-in


def test_fast_sink_keeps_up():
    job = slow_sink_job(sink_service=1e-5)
    feed(job, rate_gap=0.002, until=10.0)
    job.run(until=11.0)
    assert job.sources()[0].backlog < 10
    assert job.sink_logic().records_in == job.metrics.total_source_output()


def test_backpressure_shows_in_marker_latency():
    """Latency markers pass through the admission queue, so backpressure
    appears in end-to-end latency (the §V-A measurement property)."""
    from repro.engine import LatencyMarker

    job = slow_sink_job(sink_service=0.01)

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < 15.0:
            src.offer(Record(key=f"k{i % 16}", event_time=job.sim.now,
                             count=1))
            if i % 20 == 0:
                src.offer(LatencyMarker(key=f"k{i % 16}"))
            i += 1
            yield job.sim.timeout(0.002)

    job.sim.spawn(gen())
    job.run(until=25.0)
    early = job.metrics.latency_stats(0.0, 3.0)
    late = job.metrics.latency_stats(10.0, 25.0)
    assert late["mean"] > early["mean"] * 3  # latency grows with backlog


def test_release_of_backpressure_flushes_backlog():
    """Throughput overshoots after the bottleneck is relieved (the Fig. 11
    overcompensation cycle)."""
    job = slow_sink_job(sink_service=0.005)
    feed(job, rate_gap=0.002, until=10.0)
    job.run(until=8.0)
    sink = job.instances("sink")[0]
    sink.spec.service_time = 1e-5  # bottleneck relieved
    job.run(until=20.0)
    series = job.metrics.throughput_series(window=1.0, end=20.0)
    before = max(v for t, v in series if t < 8.0)
    after = max(v for t, v in series if 8.0 <= t < 15.0)
    assert after > before * 1.5  # flush overshoot
