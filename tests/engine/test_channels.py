"""Channel model: delivery, backpressure, control lane, redirection."""

import pytest

from repro.engine import JobGraph, OperatorSpec, Partitioning, StreamJob
from repro.engine.channels import Channel, InputChannel
from repro.engine.cluster import LinkSpec
from repro.engine.records import Record, Watermark
from repro.simulation import Simulator


class FakeInstance:
    """Just enough of OperatorInstance for channel unit tests."""

    def __init__(self, sim):
        from repro.simulation import Signal
        self.sim = sim
        self.wake = Signal(sim)
        self.controls = []

    def on_control(self, channel, element):
        self.controls.append(element)


def make_pair(sim, latency=0.001, bandwidth=1e6, outbox=4, inbox=4):
    channel = Channel(sim, LinkSpec(latency=latency, bandwidth=bandwidth),
                      name="test", outbox_capacity=outbox,
                      inbox_capacity=inbox)
    receiver = FakeInstance(sim)
    input_channel = InputChannel(receiver, name="in")
    channel.attach(input_channel)
    return channel, input_channel, receiver


def test_delivery_includes_serialize_and_latency():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, latency=0.01, bandwidth=1000)
    record = Record(key="a", size_bytes=100)  # serialize = 0.1s

    def sender():
        yield channel.send(record)

    sim.spawn(sender())
    sim.run(until=0.05)
    assert len(inbox) == 0
    sim.run(until=0.2)
    assert len(inbox) == 1
    assert inbox.peek() is record


def test_fifo_order_preserved():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, outbox=16, inbox=16)
    records = [Record(key=i, size_bytes=10) for i in range(6)]

    def sender():
        for r in records:
            yield channel.send(r)

    sim.spawn(sender())
    sim.run()
    delivered = [inbox.pop() for _ in range(len(inbox))]
    assert delivered == records


def test_outbox_backpressure_blocks_sender():
    sim = Simulator()
    # Tiny inbox and outbox; no consumer → sender must stall.
    channel, inbox, _r = make_pair(sim, outbox=2, inbox=2)
    accepted = []

    def sender():
        for i in range(10):
            yield channel.send(Record(key=i, size_bytes=10))
            accepted.append(i)

    sim.spawn(sender())
    sim.run(until=10.0)
    # 2 inbox credits + 2 outbox slots (+1 freed as elements serialize).
    assert len(accepted) < 10


def test_consuming_returns_credit_and_unblocks():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, outbox=2, inbox=2)
    accepted = []

    def sender():
        for i in range(10):
            yield channel.send(Record(key=i, size_bytes=10))
            accepted.append(i)

    def consumer():
        consumed = 0
        while consumed < 10:
            if len(inbox):
                inbox.pop()
                consumed += 1
            else:
                yield sim.timeout(0.01)
        return None
        yield  # pragma: no cover

    sim.spawn(sender())
    sim.spawn(consumer())
    sim.run(until=10.0)
    assert len(accepted) == 10


def test_send_control_bypasses_queued_data():
    sim = Simulator()
    channel, inbox, receiver = make_pair(sim, latency=0.005,
                                         bandwidth=100.0, outbox=16)

    def sender():
        for i in range(8):  # each takes 0.1s to serialize
            yield channel.send(Record(key=i, size_bytes=10))

    sim.spawn(sender())
    sim.call_at(0.01, lambda: channel.send_control(Watermark(timestamp=1.0)))
    sim.run(until=0.05)
    # Control arrived (0.01 + 0.005) while data still serializing.
    assert len(receiver.controls) == 1
    assert len(inbox) == 0


def test_send_front_jumps_outbox_queue():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=1e9, outbox=16, inbox=16)
    first = Record(key="data", size_bytes=10)
    priority = Watermark(timestamp=9.0)
    channel.send(first)
    channel.send(Record(key="data2", size_bytes=10))
    channel.send_front(priority)
    sim.run()
    order = [inbox.pop() for _ in range(len(inbox))]
    # the priority element overtakes everything still in the outbox
    assert order[0] is priority


def test_extract_outbox_preserves_order_and_residuals():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=1e9, outbox=16)
    records = [Record(key=f"k{i}", key_group=i % 2, size_bytes=10)
               for i in range(8)]
    for r in records:
        channel.send(r)
    # Immediately extract key-group 1 before the drainer runs.
    extracted = channel.extract_outbox(
        lambda e: getattr(e, "key_group", None) == 1)
    assert [r.key for r in extracted if r in records] == [
        r.key for r in records if r.key_group == 1][-len(extracted):] or \
        [r.key_group for r in extracted] == [1] * len(extracted)
    sim.run()
    remaining = [inbox.pop() for _ in range(len(inbox))]
    assert all(r.key_group == 0 for r in remaining if isinstance(r, Record))


def test_extract_outbox_redirects_blocked_waiters():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=100.0, outbox=1, inbox=1)
    sent = []

    def sender():
        for i in range(5):
            yield channel.send(Record(key=i, key_group=1, size_bytes=10))
            sent.append(i)

    sim.spawn(sender())
    sim.run(until=0.01)
    assert len(sent) < 5  # sender blocked
    extracted = channel.extract_outbox(
        lambda e: getattr(e, "key_group", None) == 1)
    sim.run(until=0.02)
    # The waiter's element was extracted and the send unblocked.
    assert extracted
    assert len(sent) >= len(extracted)


def test_block_tokens_stack():
    sim = Simulator()
    _channel, inbox, _r = make_pair(sim)
    inbox.block("a")
    inbox.block("b")
    assert inbox.blocked
    inbox.unblock("a")
    assert inbox.blocked
    inbox.unblock("b")
    assert not inbox.blocked


def test_remove_returns_credit():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, inbox=2)
    r1, r2 = Record(key=1, size_bytes=1), Record(key=2, size_bytes=1)

    def sender():
        yield channel.send(r1)
        yield channel.send(r2)

    sim.spawn(sender())
    sim.run()
    before = channel.credits
    inbox.remove(r2)
    assert channel.credits == before + 1
    assert inbox.peek() is r1


def test_backlog_accounting():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=1e9)
    channel.send(Record(key=1, size_bytes=1))
    assert channel.backlog == 1
    sim.run()
    assert channel.backlog == 1  # now in the inbox
    inbox.pop()
    assert channel.backlog == 0


def test_inject_confirm_without_checkpoint_barrier_goes_front():
    from repro.engine.records import Watermark as WM
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=1e9, outbox=16, inbox=16)
    records = [Record(key=f"k{i}", key_group=i % 2, size_bytes=10)
               for i in range(6)]
    for r in records:
        channel.send(r)
    marker = WM(timestamp=99.0)  # stands in for a confirm barrier
    bypassed = channel.inject_confirm(
        lambda e: getattr(e, "key_group", None) == 1, marker)
    assert [e.key_group for e in bypassed] == [1, 1, 1]
    sim.run()
    delivered = [inbox.pop() for _ in range(len(inbox))]
    assert delivered[0] is marker
    assert all(getattr(e, "key_group", 0) == 0 for e in delivered[1:])


def test_inject_confirm_redirection_concludes_at_checkpoint_barrier():
    """§IV-C Fig. 9a: records at or before a checkpoint barrier in the
    output cache belong to the snapshot cut — never redirected — and the
    confirm barrier lands right after the checkpoint barrier."""
    from repro.engine.records import CheckpointBarrier, Watermark as WM
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=1e9, outbox=16, inbox=16)
    pre = Record(key="pre", key_group=1, size_bytes=10)
    ckpt = CheckpointBarrier(checkpoint_id=7)
    post = Record(key="post", key_group=1, size_bytes=10)
    other = Record(key="other", key_group=0, size_bytes=10)
    for e in (pre, ckpt, post, other):
        channel.send(e)
    confirm = WM(timestamp=99.0)
    bypassed = channel.inject_confirm(
        lambda e: getattr(e, "key_group", None) == 1, confirm)
    # only the record AFTER the checkpoint barrier was redirected
    assert bypassed == [post]
    sim.run()
    delivered = [inbox.pop() for _ in range(len(inbox))]
    assert delivered[0] is pre          # cut preserved
    assert delivered[1] is ckpt
    assert delivered[2] is confirm      # integrated signal position
    assert delivered[3] is other


def test_inject_confirm_redirects_blocked_waiters_always():
    from repro.engine.records import CheckpointBarrier, Watermark as WM
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=100.0, outbox=1, inbox=1)
    accepted = []

    def sender():
        for i in range(4):
            yield channel.send(Record(key=i, key_group=1, size_bytes=10))
            accepted.append(i)

    sim.spawn(sender())
    sim.run(until=0.01)
    bypassed = channel.inject_confirm(
        lambda e: getattr(e, "key_group", None) == 1, WM(timestamp=1.0))
    # waiters are logically behind the cache: always redirected
    assert len(bypassed) >= 1


def test_closed_channel_send_returns_shared_event_without_heap_growth():
    sim = Simulator()
    channel, inbox, _r = make_pair(sim)
    sim.run()  # let construction-time events settle
    channel.close()
    heap_before = len(sim._heap)
    events = [channel.send(Record(key=f"k{i}", size_bytes=10))
              for i in range(50)]
    # Every send is accepted-and-dropped via the one shared pre-succeeded
    # event: no per-send allocation, and the heap does not grow.
    assert all(ev is sim.done for ev in events)
    assert len(sim._heap) == heap_before
    sim.run()
    assert len(inbox) == 0


def test_send_front_and_extract_outbox_order_under_backpressure():
    # A slow link keeps the outbox full: senders block, elements queue.
    sim = Simulator()
    channel, inbox, _r = make_pair(sim, bandwidth=100.0, outbox=3, inbox=16)
    accepted = []

    def sender():
        for i in range(6):
            yield channel.send(Record(key=i, key_group=i % 2,
                                      size_bytes=10))
            accepted.append(i)

    sim.spawn(sender())
    sim.run(until=0.01)
    # Record 0 is mid-serialize, 1-3 queue in the outbox, 4 is blocked.
    assert accepted == [0, 1, 2, 3]

    # A control element jumps the queued data...
    priority = Watermark(timestamp=1.0)
    channel.send_front(priority)
    # ...and extract_outbox removes queued matches (records 1 and 3, the
    # key-group-1 residents) in FIFO order without disturbing the rest.
    extracted = channel.extract_outbox(
        lambda e: isinstance(e, Record) and e.key_group == 1)
    assert [e.key for e in extracted] == [1, 3]

    sim.run()
    delivered = [inbox.pop() for _ in range(len(inbox))]
    # Record 0 was already on the wire; the watermark overtakes everything
    # that was still in the outbox; extraction freed slots, so the blocked
    # sends (4, 5) completed and delivered after the survivors.
    assert [e.key for e in delivered if isinstance(e, Record)] == [0, 2,
                                                                   4, 5]
    assert delivered.index(priority) == 1
    # The extracted instances themselves were never delivered.
    assert not any(e in extracted for e in delivered)
    # All six sends eventually completed (extraction unblocks waiters).
    assert accepted == list(range(6))
