"""Exact-equality guard for the window operator's columnar batch path.

The columnar plane lets ``SlidingWindowAggregateLogic.on_record_batch``
consume :meth:`RecordBatch.columns` views: batch-wide vectorized slide
bucketing plus count/byte-sum accumulation over same-(key-group, bucket)
runs.  The contract is *bit*-exact equality with the per-record scalar
path — these tests compare full keyed state (pane lists and
``size_bytes``) at float-bit granularity after every batch.
"""

import random
import struct
import types

import pytest

from repro.engine.columnar import HAVE_NUMPY
from repro.engine.records import Record
from repro.engine.state import KeyedStateBackend
from repro.engine.windows import (_COLUMNAR_MIN_BATCH, _COLUMNAR_MIN_RUN,
                                  SlidingWindowAggregateLogic)

columnar = pytest.mark.skipif(not HAVE_NUMPY,
                              reason="columnar plane needs numpy")


def _instance(columnar_active):
    return types.SimpleNamespace(
        state=KeyedStateBackend(),
        job=types.SimpleNamespace(columnar_active=columnar_active))


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return value


def _state_snapshot(inst):
    """Keyed state at float-bit granularity (0.0 vs -0.0, NaN-safe)."""
    snap = {}
    for group in inst.state.groups():
        entries = sorted(
            (key, tuple(_bits(v) for v in pane))
            for key, pane in group.entries.items())
        snap[group.key_group] = (_bits(group.size_bytes), entries)
    return snap


def _apply_scalar(logic, records, inst):
    for rec in records:
        logic.on_record(rec, inst)


def _make_batch(rng, n, num_kgs=4, runs=False):
    records = []
    t = rng.uniform(0.0, 50.0)
    for i in range(n):
        if runs and i % 2 == 0:
            # bias towards same-(kg, bucket) runs so the vectorized
            # accumulation path actually executes
            kg = 1
            event_time = 40.0 + rng.uniform(0.0, 1.5)
        else:
            kg = rng.randrange(num_kgs)
            event_time = t + rng.uniform(0.0, 30.0)
        value = rng.choice(
            [None, rng.uniform(-5.0, 5.0), rng.randrange(100), 0.1 * i])
        records.append(Record(key=f"k{kg}", key_group=kg,
                              event_time=event_time,
                              count=rng.randrange(1, 5), value=value))
    return records


def _compare_paths(batches, size=8.0, slide=2.0, bpr=7.3):
    """Run scalar / batched / columnar paths over ``batches``; assert
    their keyed state stays bit-identical after every batch."""
    scalar = SlidingWindowAggregateLogic(size=size, slide=slide,
                                         bytes_per_record=bpr)
    batched = SlidingWindowAggregateLogic(size=size, slide=slide,
                                          bytes_per_record=bpr)
    col = SlidingWindowAggregateLogic(size=size, slide=slide,
                                      bytes_per_record=bpr)
    i_scalar = _instance(False)
    i_batched = _instance(False)
    i_col = _instance(True)
    for batch in batches:
        _apply_scalar(scalar, batch, i_scalar)
        batched.on_record_batch(batch, 0, len(batch), i_batched)
        col.on_record_batch(batch, 0, len(batch), i_col)
        ref = _state_snapshot(i_scalar)
        assert _state_snapshot(i_batched) == ref
        assert _state_snapshot(i_col) == ref
    return _state_snapshot(i_scalar)


@columnar
def test_columnar_path_fires_and_matches(monkeypatch):
    """The vectorized run path executes (non-vacuous) and is bit-exact."""
    taken = []
    orig = SlidingWindowAggregateLogic._columnar_run_max

    def spy(recs, a, b, panes):
        result = orig(recs, a, b, panes)
        if result is not None:
            taken.append(b - a)
        return result

    monkeypatch.setattr(SlidingWindowAggregateLogic, "_columnar_run_max",
                        staticmethod(spy))
    rng = random.Random(7)
    batches = [_make_batch(rng, 24, runs=True) for _ in range(6)]
    _compare_paths(batches)
    assert taken, "columnar run path never executed"
    assert all(n >= _COLUMNAR_MIN_RUN for n in taken)


@columnar
def test_randomized_batches_bit_exact():
    rng = random.Random(1234)
    for trial in range(10):
        batches = [_make_batch(rng, rng.randrange(1, 40),
                               runs=bool(trial % 2))
                   for _ in range(rng.randrange(1, 6))]
        _compare_paths(batches)


@columnar
def test_small_batches_skip_column_build():
    """Batches below the size floor never build columns but still match."""
    rng = random.Random(5)
    batches = [_make_batch(rng, _COLUMNAR_MIN_BATCH - 1) for _ in range(8)]
    _compare_paths(batches)


@columnar
def test_mixed_type_values_fall_back_exactly():
    """Non-numeric/bool/NaN aggregate values keep scalar try/except
    semantics: the run gate refuses and results still match bit-for-bit."""
    rng = random.Random(9)
    specials = ["zz", True, float("nan"), None, 3, 2.5]
    batches = []
    for _ in range(4):
        batch = _make_batch(rng, 20, runs=True)
        for rec in batch:
            rec.value = rng.choice(specials)
        batches.append(batch)
    _compare_paths(batches)


@columnar
def test_gate_rejects_non_numeric_candidates():
    logic = SlidingWindowAggregateLogic(size=8.0, slide=2.0)
    recs = [Record(key="k", key_group=1, event_time=40.5, count=1,
                   value=v)
            for v in (1.0, 2.0, "oops", 3.0)]
    pane = [0, 0.0, None]
    assert logic._columnar_run_max(recs, 0, len(recs), [pane]) is None
    # NaN candidates are order-sensitive under the scalar fold: refuse.
    recs[2].value = float("nan")
    assert logic._columnar_run_max(recs, 0, len(recs), [pane]) is None
    # a non-numeric value already in the pane also refuses the collapse
    recs[2].value = 2.5
    assert logic._columnar_run_max(recs, 0, len(recs),
                                   [[0, 0.0, "sticky"]]) is None
    assert logic._columnar_run_max(recs, 0, len(recs), [pane]) == 3.0


def test_columnar_inactive_matches_scalar():
    """Without numpy/columnar plane the batch path is the grouped scalar
    one — still bit-identical to per-record application."""
    rng = random.Random(3)
    scalar = SlidingWindowAggregateLogic(size=8.0, slide=2.0)
    grouped = SlidingWindowAggregateLogic(size=8.0, slide=2.0)
    i_scalar = _instance(False)
    i_grouped = _instance(False)
    for _ in range(5):
        batch = _make_batch(rng, 16, runs=True)
        _apply_scalar(scalar, batch, i_scalar)
        grouped.on_record_batch(batch, 0, len(batch), i_grouped)
        assert _state_snapshot(i_grouped) == _state_snapshot(i_scalar)
