"""Cluster model: nodes, links, placement."""

import pytest

from repro.engine import (ClusterModel, LinkSpec, NodeSpec, single_machine,
                          swarm_cluster)


def test_single_machine_has_one_node():
    cluster = single_machine()
    assert len(cluster.nodes) == 1
    node = cluster.place()
    assert node.name == "server-0"


def test_swarm_cluster_matches_paper_hardware():
    cluster = swarm_cluster()
    assert len(cluster.nodes) == 4
    names = {n.name for n in cluster.nodes}
    assert {"gold-5218", "silver-4210-a", "silver-4210-b",
            "gold-6230"} == names
    # heterogeneous speeds
    speeds = {n.speed for n in cluster.nodes}
    assert len(speeds) > 1
    # Gigabit default links
    link = cluster.link("gold-5218", "gold-6230")
    assert link.bandwidth == pytest.approx(125_000_000.0)


def test_loopback_differs_from_remote_link():
    cluster = swarm_cluster()
    local = cluster.link("gold-5218", "gold-5218")
    remote = cluster.link("gold-5218", "gold-6230")
    assert local.latency < remote.latency


def test_link_override_is_symmetric():
    cluster = swarm_cluster()
    custom = LinkSpec(latency=0.5, bandwidth=1.0)
    cluster.set_link("gold-5218", "gold-6230", custom)
    assert cluster.link("gold-5218", "gold-6230") is custom
    assert cluster.link("gold-6230", "gold-5218") is custom


def test_round_robin_placement():
    cluster = swarm_cluster()
    placed = [cluster.place().name for _ in range(8)]
    assert placed[:4] != [placed[0]] * 4  # spread over nodes
    occupancy = cluster.occupancy()
    assert sum(occupancy.values()) == 8


def test_preferred_placement():
    cluster = swarm_cluster()
    node = cluster.place(preferred="gold-6230")
    assert node.name == "gold-6230"


def test_unknown_node_rejected():
    cluster = swarm_cluster()
    with pytest.raises(KeyError):
        cluster.node("missing")


def test_overcommit_picks_least_loaded():
    cluster = ClusterModel([NodeSpec("a", slots=1), NodeSpec("b", slots=1)])
    cluster.place()
    cluster.place()
    extra = cluster.place()  # both full: overcommit
    assert extra.name in ("a", "b")


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        ClusterModel([])
