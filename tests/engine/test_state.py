"""Keyed state backend: lifecycle, sizes, snapshots."""

import pytest

from repro.engine import KeyedStateBackend, StateStatus
from repro.engine.state import StateTransferCostModel


def test_register_and_lookup():
    backend = KeyedStateBackend()
    group = backend.register_group(3, StateStatus.LOCAL, size_bytes=100.0)
    assert backend.group(3) is group
    assert backend.group(4) is None
    assert backend.require_group(3) is group
    with pytest.raises(KeyError):
        backend.require_group(4)


def test_put_get_delete_and_entry_sizing():
    backend = KeyedStateBackend(bytes_per_entry=10.0)
    backend.put(0, "a", 1)
    backend.put(0, "b", 2)
    backend.put(0, "a", 3)  # overwrite: no size growth
    assert backend.get(0, "a") == 3
    assert backend.group(0).size_bytes == 20.0
    backend.delete(0, "a")
    assert backend.get(0, "a") is None
    assert backend.group(0).size_bytes == 10.0
    backend.delete(0, "missing")  # no-op
    assert backend.group(0).size_bytes == 10.0


def test_get_default_for_absent_group():
    backend = KeyedStateBackend()
    assert backend.get(9, "x", default="d") == "d"


def test_add_bytes_never_negative():
    backend = KeyedStateBackend()
    backend.add_bytes(1, 50.0)
    backend.add_bytes(1, -500.0)
    assert backend.group(1).size_bytes == 0.0


def test_owned_groups_excludes_migrated():
    backend = KeyedStateBackend()
    backend.register_group(0, StateStatus.LOCAL)
    backend.register_group(1, StateStatus.PENDING_OUT)
    backend.register_group(2, StateStatus.MIGRATED_OUT)
    backend.register_group(3, StateStatus.INCOMING)
    backend.register_group(4, StateStatus.INACTIVE)
    assert backend.owned_groups() == [0, 1]


def test_processable_statuses():
    backend = KeyedStateBackend()
    for status, expected in [
            (StateStatus.LOCAL, True),
            (StateStatus.PENDING_OUT, True),
            (StateStatus.MIGRATED_OUT, False),
            (StateStatus.INCOMING, False),
            (StateStatus.INACTIVE, False)]:
        backend.register_group(0, status)
        assert backend.has_processable(0) is expected
        backend.drop_group(0)


def test_total_bytes():
    backend = KeyedStateBackend()
    backend.register_group(0, size_bytes=10.0)
    backend.register_group(1, size_bytes=30.0)
    assert backend.total_bytes() == 40.0


def test_snapshot_is_independent_copy():
    backend = KeyedStateBackend()
    backend.put(0, "k", 1)
    snap = backend.snapshot()
    backend.put(0, "k", 2)
    assert snap[0].entries["k"] == 1
    assert backend.get(0, "k") == 2


def test_transfer_cost_model():
    model = StateTransferCostModel(extract_seconds_per_group=0.0,
                                   bandwidth_fraction=0.5,
                                   handshake_seconds=0.001)
    # 1 MB at 2 MB/s effective (4 MB/s x 0.5) + 1 ms handshake + 1 ms latency
    cost = model.transfer_seconds(1e6, 4e6, 0.001)
    assert cost == pytest.approx(0.001 + 0.001 + 0.5)


def test_transfer_cost_handles_zero_bandwidth():
    model = StateTransferCostModel()
    assert model.transfer_seconds(100.0, 0.0, 0.0) > 0
