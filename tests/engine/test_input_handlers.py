"""Default and migration-aware input handlers in isolation."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job  # noqa: E402

from repro.engine import Record, StateStatus
from repro.engine.operators import DefaultInputHandler
from repro.scaling.base import MigrationAwareHandler


class StubController:
    """Processability keyed off instance state, like real controllers."""

    def record_ready(self, instance, record):
        group = instance.state.group(record.key_group)
        return group is not None and group.processable


def agg_with_queued(job, elements_per_channel):
    inst = job.instances("agg")[0]
    for channel, elements in zip(inst.input_channels, elements_per_channel):
        for element in elements:
            channel.queue.append(element)
    return inst


def rec(kg):
    return Record(key=f"kg{kg}", key_group=kg)


def test_default_handler_round_robins_nonempty_channels():
    job = build_keyed_job()
    inst = agg_with_queued(job, [[rec(0), rec(0)], [rec(1), rec(1)]])
    handler = DefaultInputHandler(inst)
    order = [handler.poll()[0] for _ in range(4)]
    assert order[0] is not order[1]  # alternates between channels
    assert handler.poll() is None
    assert handler.suspended is False


def test_default_handler_skips_blocked_channels():
    job = build_keyed_job()
    inst = agg_with_queued(job, [[rec(0)], [rec(1)]])
    inst.input_channels[0].block("x")
    handler = DefaultInputHandler(inst)
    channel, element = handler.poll()
    assert channel is inst.input_channels[1]
    assert handler.poll() is None
    assert handler.suspended is True  # blocked channel still has data


def test_committed_handler_suspends_on_unready_head():
    job = build_keyed_job()
    inst = agg_with_queued(job, [[rec(0)], [rec(1)]])
    inst.state.require_group(0).status = StateStatus.MIGRATED_OUT
    handler = MigrationAwareHandler(inst, StubController(),
                                    scheduling=False)
    # RR starts at channel 0 whose head is unready: committed, suspended,
    # even though channel 1 is processable.
    assert handler.poll() is None
    assert handler.suspended is True
    # still committed on a later poll
    assert handler.poll() is None
    # once the state comes back, the committed head is delivered first
    inst.state.require_group(0).status = StateStatus.LOCAL
    channel, element = handler.poll()
    assert element.key_group == 0


def test_scheduling_handler_switches_channels():
    job = build_keyed_job()
    inst = agg_with_queued(job, [[rec(0)], [rec(1)]])
    inst.state.require_group(0).status = StateStatus.MIGRATED_OUT
    handler = MigrationAwareHandler(inst, StubController(),
                                    scheduling=True)
    channel, element = handler.poll()
    assert element.key_group == 1  # inter-channel switch
    assert handler.poll() is None
    assert handler.suspended is True  # kg0 record still stuck


def test_scheduling_handler_bypasses_within_channel():
    job = build_keyed_job()
    inst = agg_with_queued(job, [[rec(0), rec(1)], []])
    inst.state.require_group(0).status = StateStatus.MIGRATED_OUT
    handler = MigrationAwareHandler(inst, StubController(),
                                    scheduling=True, buffer_size=200)
    channel, element = handler.poll()
    assert element.key_group == 1  # intra-channel bypass
    # the bypassed record stays at the head
    assert channel.peek().key_group == 0


def test_scheduling_handler_respects_buffer_bound():
    job = build_keyed_job()
    stuck = [rec(0) for _ in range(10)] + [rec(1)]
    inst = agg_with_queued(job, [stuck, []])
    inst.state.require_group(0).status = StateStatus.MIGRATED_OUT
    handler = MigrationAwareHandler(inst, StubController(),
                                    scheduling=True, buffer_size=5)
    assert handler.poll() is None  # kg1 beyond the 5-element scan budget
    assert handler.suspended is True
