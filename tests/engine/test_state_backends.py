"""Unit tests for the pluggable keyed-state backends.

Covers the changelog backend's core mechanics in isolation: delta
logging and segment cuts, periodic materialization, the bounded-log
truncation trigger, chain replay at restore, rejection of incomplete
chains, the constant barrier-path manifest, version-break whole-group
images, and the migration tail fast path.
"""

import pytest

from repro.engine import (ChangelogChainError, ChangelogStateBackend,
                          DictStateBackend, JobConfig, StateBackend)
from repro.engine.runtime import StreamJob
from repro.engine.state import KeyedStateBackend


def make_backend(**kwargs):
    kwargs.setdefault("materialize_interval", 10_000)
    return ChangelogStateBackend(bytes_per_entry=100.0, **kwargs)


class TestBackendSelection:
    def test_dict_is_the_default_and_the_legacy_alias(self):
        assert KeyedStateBackend is DictStateBackend
        assert DictStateBackend.name == "dict"
        assert not DictStateBackend.is_incremental
        assert ChangelogStateBackend.name == "changelog"
        assert ChangelogStateBackend.is_incremental

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="state_backend"):
            JobConfig(state_backend="rocksdb")

    def test_job_factory_builds_configured_backend(self):
        from repro.engine import (JobGraph, KeyedReduceLogic,
                                  OperatorSpec, Partitioning)
        graph = JobGraph("backends", num_key_groups=4)
        graph.add_source("src", parallelism=1)
        graph.add_operator(OperatorSpec(
            "agg",
            logic_factory=lambda: KeyedReduceLogic(
                lambda old, r: (old or 0) + r.count),
            parallelism=1, keyed=True))
        graph.add_sink("sink")
        graph.connect("src", "agg", Partitioning.HASH)
        graph.connect("agg", "sink", Partitioning.FORWARD)
        job = StreamJob(graph, config=JobConfig(
            state_backend="changelog",
            changelog_materialize_interval=123)).build()
        state = job.instances("agg")[0].state
        assert isinstance(state, ChangelogStateBackend)
        assert state.materialize_interval == 123

    def test_abstract_backend_is_not_usable(self):
        with pytest.raises(NotImplementedError):
            StateBackend().put(0, "k", 1)


class TestSegmentsAndSync:
    def test_first_cut_is_a_full_anchor(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.put(1, "b", 2)
        seg = backend.cut_segment(1)
        assert seg.full_base and seg.anchors_chain
        assert {kg: payload[0] for kg, payload in seg.groups.items()} == \
            {0: "full", 1: "full"}

    def test_subsequent_cuts_carry_deltas_only(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.cut_segment(1)
        backend.put(0, "a", 2)
        backend.put(0, "c", 3)
        seg = backend.cut_segment(2)
        assert not seg.full_base
        kind, ops = seg.groups[0]
        assert kind == "deltas" and len(ops) == 2
        # Two ops at 100 bytes/entry — not the whole group.
        assert seg.delta_bytes == pytest.approx(200.0)

    def test_barrier_path_cost_is_constant_in_state_size(self):
        backend = make_backend()
        for i in range(50):
            backend.put(i % 4, f"k{i}", i)
        backend.add_bytes(0, 1e9)
        assert backend.checkpoint_sync_bytes() == \
            ChangelogStateBackend.MANIFEST_BYTES
        # The dict backend pays the full state on the barrier path.
        dict_backend = DictStateBackend()
        dict_backend.put(0, "a", 1)
        dict_backend.add_bytes(0, 1e9)
        assert dict_backend.checkpoint_sync_bytes() == \
            dict_backend.total_bytes()

    def test_version_break_forces_whole_group_image(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.cut_segment(1)
        # Bulk mutation bypassing the logging surface (what a scaling
        # controller's install does) bumps the version.
        group = backend.require_group(0)
        group.entries = {"x": 99}
        group.bump_version()
        seg = backend.cut_segment(2)
        assert seg.groups[0][0] == "full"
        assert seg.groups[0][1] == {"x": 99}


class TestMaterialization:
    def test_interval_triggers_materialization(self):
        backend = make_backend(materialize_interval=10)
        for i in range(25):
            backend.put(0, f"k{i}", i)
        assert backend.materializations == 2
        assert backend.log_length(0) < 10

    def test_materialize_clears_logs_and_re_anchors(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.cut_segment(1)
        backend.put(0, "b", 2)
        backend.materialize()
        assert backend.log_length(0) == 0
        seg = backend.cut_segment(2)
        assert seg.groups[0][0] == "full"
        assert seg.full_base

    def test_oversized_log_truncates_via_materialization(self):
        backend = make_backend(max_log_entries=16)
        for i in range(200):
            backend.put(0, "hot", i)
        assert backend.materializations >= 1
        assert backend.log_length(0) <= 16 + 1


class TestChainReplay:
    def test_delta_replay_rebuilds_exact_entries(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.put(1, "b", 2)
        chain = [backend.cut_segment(1)]
        backend.put(0, "a", 10)
        backend.delete(1, "b")
        backend.put(2, "c", 3)
        chain.append(backend.cut_segment(2))
        backend.put(2, "c", 30)
        chain.append(backend.cut_segment(3))
        restored = ChangelogStateBackend.replay_chain(chain)
        entries = {kg: dict(g.entries) for kg, g in restored.items()}
        assert entries == {0: {"a": 10}, 1: {}, 2: {"c": 30}}

    def test_drop_marker_removes_group(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.put(1, "b", 2)
        chain = [backend.cut_segment(1)]
        backend.drop_group(1)
        chain.append(backend.cut_segment(2))
        restored = ChangelogStateBackend.replay_chain(chain)
        assert set(restored) == {0}

    def test_unanchored_chain_is_rejected(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.cut_segment(1)
        backend.put(0, "a", 2)
        tail_only = [backend.cut_segment(2)]
        with pytest.raises(ChangelogChainError, match="anchor"):
            ChangelogStateBackend.replay_chain(tail_only)

    def test_gapped_chain_is_rejected(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        first = backend.cut_segment(1)
        backend.put(0, "a", 2)
        backend.cut_segment(2)  # the missing middle
        backend.put(0, "a", 3)
        third = backend.cut_segment(3)
        with pytest.raises(ChangelogChainError, match="gap"):
            ChangelogStateBackend.replay_chain([first, third])

    def test_empty_chain_is_rejected(self):
        with pytest.raises(ChangelogChainError, match="empty"):
            ChangelogStateBackend.replay_chain([])


class TestMigrationFastPath:
    def test_tail_bytes_require_a_durable_base(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        # No cut yet: nothing durable covers the group.
        assert backend.changelog_tail_bytes(0) is None
        backend.cut_segment(1)
        backend.put(0, "b", 2)
        tail = backend.changelog_tail_bytes(0)
        assert tail is not None
        assert tail < backend.require_group(0).size_bytes + 1

    def test_bulk_mutation_invalidates_the_tail(self):
        backend = make_backend()
        backend.put(0, "a", 1)
        backend.cut_segment(1)
        group = backend.require_group(0)
        group.entries = {"x": 1}
        group.bump_version()
        assert backend.changelog_tail_bytes(0) is None
