"""SourceInstance behaviour: admission, stamping, injection, EOS."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job  # noqa: E402

from repro.engine import (EndOfStream, JobGraph, LatencyMarker, OperatorSpec,
                          Partitioning, Record, StreamJob, Watermark)


def simple_source_job(collect=True):
    graph = JobGraph("src-test", num_key_groups=4)
    graph.add_source("src")
    graph.add_sink("sink", collect=collect)
    graph.connect("src", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def test_offer_stamps_created_at_on_admission():
    job = simple_source_job()
    job.start()
    job.run(until=2.5)
    record = Record(key="a", created_at=0.0)
    job.sources()[0].offer(record)
    assert record.created_at == 2.5


def test_offer_stamps_marker_emitted_at():
    job = simple_source_job()
    job.start()
    job.run(until=1.5)
    marker = LatencyMarker(key="a")
    job.sources()[0].offer(marker)
    assert marker.emitted_at == 1.5


def test_injected_elements_jump_the_admission_queue():
    from repro.engine.records import CheckpointBarrier

    job = simple_source_job()
    source = job.sources()[0]
    for i in range(5):
        source.offer(Record(key=f"k{i}"))
    source.inject(CheckpointBarrier(checkpoint_id=1))
    job.run(until=1.0)
    # the barrier was handled before the pending records were all emitted:
    # the snapshot timestamp precedes the last record's emission.
    assert job.snapshots
    assert job.snapshots[0][2] == 1


def test_end_of_stream_terminates_pipeline():
    job = simple_source_job()
    source = job.sources()[0]
    source.offer(Record(key="a"))
    source.offer(EndOfStream())
    job.run(until=2.0)
    assert not source.running
    assert not job.instances("sink")[0].running
    assert job.sink_logic().records_in == 1


def test_consumed_elements_counts_admitted_pops():
    job = simple_source_job()
    source = job.sources()[0]
    for i in range(7):
        source.offer(Record(key=f"k{i}"))
    job.run(until=1.0)
    assert source.consumed_elements == 7
    assert source.backlog == 0


def test_paused_source_stops_consuming():
    job = simple_source_job()
    source = job.sources()[0]
    job.start()
    job.run(until=0.1)
    source.pause()
    for i in range(3):
        source.offer(Record(key=f"k{i}"))
    job.run(until=1.0)
    assert source.backlog == 3
    source.resume()
    job.run(until=2.0)
    assert source.backlog == 0


def test_watermarks_flow_from_admission_queue():
    job = simple_source_job()
    source = job.sources()[0]
    source.offer(Watermark(timestamp=42.0))
    job.run(until=1.0)
    assert source.current_watermark == 42.0
    assert job.instances("sink")[0].current_watermark == 42.0


def test_replay_history_snapshot_includes_prior_pending():
    job = simple_source_job()
    source = job.sources()[0]
    source.offer(Record(key="before"))
    source.enable_replay_history()
    source.offer(Record(key="after"))
    assert len(source._history) == 2
