"""Property-based channel tests: conservation and order under random
operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.channels import Channel, InputChannel
from repro.engine.cluster import LinkSpec
from repro.engine.records import Record
from repro.simulation import Simulator


class FakeInstance:
    def __init__(self, sim):
        from repro.simulation import Signal
        self.sim = sim
        self.wake = Signal(sim)

    def on_control(self, channel, element):
        pass


def build(sim, outbox, inbox):
    channel = Channel(sim, LinkSpec(latency=0.0001, bandwidth=1e8),
                      name="prop", outbox_capacity=outbox,
                      inbox_capacity=inbox)
    receiver = FakeInstance(sim)
    input_channel = InputChannel(receiver, name="in")
    channel.attach(input_channel)
    return channel, input_channel


@given(n=st.integers(1, 60), outbox=st.integers(1, 8),
       inbox=st.integers(1, 8),
       consume_gap=st.floats(0.0001, 0.01))
@settings(max_examples=60, deadline=None)
def test_every_sent_element_arrives_exactly_once_in_order(
        n, outbox, inbox, consume_gap):
    sim = Simulator()
    channel, input_channel = build(sim, outbox, inbox)
    records = [Record(key=i, size_bytes=8) for i in range(n)]
    received = []

    def sender():
        for r in records:
            yield channel.send(r)

    def consumer():
        while len(received) < n:
            while len(input_channel):
                received.append(input_channel.pop())
            yield sim.timeout(consume_gap)

    sim.spawn(sender())
    sim.spawn(consumer())
    sim.run(until=60.0)
    assert received == records


@given(n=st.integers(2, 40),
       extract_group=st.integers(0, 2),
       groups=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_extract_partitions_the_outbox(n, extract_group, groups):
    sim = Simulator()
    channel, input_channel = build(sim, outbox=64, inbox=64)
    records = [Record(key=i, key_group=i % groups, size_bytes=8)
               for i in range(n)]
    for r in records:
        channel.send(r)
    extracted = channel.extract_outbox(
        lambda e: getattr(e, "key_group", None) == extract_group)
    sim.run(until=10.0)
    delivered = []
    while len(input_channel):
        delivered.append(input_channel.pop())
    # partition: extracted + delivered == sent, each preserving order
    assert extracted == [r for r in records
                         if r.key_group == extract_group]
    assert delivered == [r for r in records
                         if r.key_group != extract_group]


@given(data=st.data(),
       n=st.integers(2, 30))
@settings(max_examples=40, deadline=None)
def test_inject_confirm_conserves_and_orders(data, n):
    from repro.engine.records import CheckpointBarrier, Watermark
    sim = Simulator()
    channel, input_channel = build(sim, outbox=64, inbox=128)
    elements = []
    for i in range(n):
        if data.draw(st.booleans(), label=f"is_ckpt_{i}") and i % 7 == 3:
            elements.append(CheckpointBarrier(checkpoint_id=i))
        else:
            elements.append(Record(key=i, key_group=i % 2, size_bytes=8))
    for e in elements:
        channel.send(e)
    confirm = Watermark(timestamp=123.0)
    bypassed = channel.inject_confirm(
        lambda e: getattr(e, "key_group", None) == 1, confirm)
    sim.run(until=10.0)
    delivered = []
    while len(input_channel):
        delivered.append(input_channel.pop())
    # conservation: everything sent is either delivered or bypassed, plus
    # the confirm barrier itself is delivered exactly once.
    assert sorted(map(id, delivered + bypassed)) == sorted(
        map(id, elements + [confirm]))
    # nothing at or before the last checkpoint barrier was bypassed
    ckpt_positions = [i for i, e in enumerate(elements)
                      if isinstance(e, CheckpointBarrier)]
    if ckpt_positions:
        cut = ckpt_positions[-1]
        protected = set(map(id, elements[:cut + 1]))
        assert not protected & set(map(id, bypassed))
        # confirm barrier delivered right after that checkpoint barrier
        ckpt = elements[cut]
        idx = delivered.index(ckpt)
        assert delivered[idx + 1] is confirm
    else:
        assert delivered[0] is confirm
    # relative order of survivors and of bypassed both preserved
    survivor_order = [e for e in elements if e in delivered]
    assert [e for e in delivered if e in elements] == survivor_order
    bypass_order = [e for e in elements if e in bypassed]
    assert bypassed == bypass_order
