"""Operator logic classes and the instance runtime loop."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import (FilterLogic, JobGraph, KeyByLogic,
                          KeyedReduceLogic, MapLogic, OperatorSpec,
                          Partitioning, Record, StreamJob, Watermark)
from repro.engine.operators import PassThroughLogic, SinkLogic


class FakeInstance:
    """Minimal stand-in for logic unit tests."""

    class _State:
        def __init__(self):
            self.data = {}
            self.bytes = {}

        def get(self, kg, key, default=None):
            return self.data.get((kg, key), default)

        def put(self, kg, key, value):
            self.data[(kg, key)] = value

        def add_bytes(self, kg, delta):
            self.bytes[kg] = self.bytes.get(kg, 0) + delta

    def __init__(self):
        self.state = self._State()


def test_map_logic_transforms():
    logic = MapLogic(lambda r: r.copy_with(value=(r.value or 0) + 1))
    out = logic.on_record(Record(key="a", value=1), FakeInstance())
    assert len(out) == 1 and out[0].value == 2


def test_filter_logic_predicate():
    logic = FilterLogic(predicate=lambda r: r.key == "keep")
    inst = FakeInstance()
    assert logic.on_record(Record(key="keep"), inst)
    assert logic.on_record(Record(key="drop"), inst) == []


def test_filter_logic_pass_fraction_thins_batches():
    logic = FilterLogic(pass_fraction=0.5)
    out = logic.on_record(Record(key="a", count=100, size_bytes=1000),
                          FakeInstance())
    assert out[0].count == 50
    assert out[0].size_bytes == pytest.approx(500)


def test_keyby_logic_clears_key_group():
    logic = KeyByLogic(lambda r: r.value)
    out = logic.on_record(Record(key="old", key_group=3, value="new"),
                          FakeInstance())
    assert out[0].key == "new"
    assert out[0].key_group is None


def test_keyed_reduce_accumulates_per_key():
    logic = KeyedReduceLogic(lambda old, r: (old or 0) + r.count)
    inst = FakeInstance()
    logic.on_record(Record(key="a", key_group=0, count=2), inst)
    out = logic.on_record(Record(key="a", key_group=0, count=3), inst)
    assert out[0].value == 5
    out_b = logic.on_record(Record(key="b", key_group=0, count=1), inst)
    assert out_b[0].value == 1


def test_keyed_reduce_state_bytes_growth():
    logic = KeyedReduceLogic(lambda old, r: r.count,
                             state_bytes_per_record=10.0)
    inst = FakeInstance()
    logic.on_record(Record(key="a", key_group=2, count=4), inst)
    assert inst.state.bytes[2] == 40.0


def test_end_to_end_record_conservation():
    job = build_keyed_job(collect=True)
    drive(job, until=5.0, count=3, marker_every=0)
    job.run(until=8.0)
    sink = job.sink_logic()
    # 2 sources x 1000 ticks x 3 records
    assert sink.records_in == job.metrics.total_source_output()
    assert sink.records_in > 0


def test_markers_reach_sink_and_record_latency():
    job = build_keyed_job()
    drive(job, until=3.0, marker_every=2)
    job.run(until=6.0)
    stats = job.metrics.latency_stats()
    assert stats["count"] > 100
    assert 0 < stats["mean"] < 1.0


def test_watermark_propagates_min_across_channels():
    job = build_keyed_job()
    job.start()
    sources = job.sources()
    sources[0].offer(Watermark(timestamp=10.0))
    sources[1].offer(Watermark(timestamp=4.0))
    job.run(until=1.0)
    for inst in job.instances("agg"):
        # min of the two source watermarks
        assert inst.current_watermark == 4.0


def test_sink_collects_records():
    job = build_keyed_job(collect=True)
    drive(job, until=1.0, marker_every=0)
    job.run(until=2.0)
    sink = job.sink_logic()
    assert sink.collected
    assert all(isinstance(r, Record) for r in sink.collected)


def test_pause_resume_stops_processing():
    job = build_keyed_job()
    drive(job, until=4.0, marker_every=0)
    job.start()
    job.run(until=1.0)
    agg = job.instances("agg")
    for inst in agg:
        inst.pause()
    before = sum(i.records_processed for i in agg)
    job.run(until=2.0)
    assert sum(i.records_processed for i in agg) == before
    for inst in agg:
        inst.resume()
    job.run(until=4.5)
    assert sum(i.records_processed for i in agg) > before


def test_service_time_scales_with_count_and_node_speed():
    job = build_keyed_job()
    inst = job.instances("agg")[0]
    assert inst.service_time(10) == pytest.approx(
        10 * inst.spec.service_time / inst.node.speed)


def test_run_inband_executes_between_elements():
    job = build_keyed_job()
    drive(job, until=2.0, marker_every=0)
    job.start()
    job.run(until=1.0)
    ran = []
    inst = job.instances("agg")[0]

    def action(instance):
        ran.append(instance.sim.now)
        return
        yield  # pragma: no cover

    inst.run_inband(action)
    job.run(until=1.5)
    assert ran and ran[0] >= 1.0


def test_records_processed_counts_physical_records():
    job = build_keyed_job()
    drive(job, until=1.0, count=7, marker_every=0)
    job.run(until=2.0)
    total = sum(i.records_processed for i in job.instances("agg"))
    assert total == job.metrics.total_source_output()
    assert total % 7 == 0
