"""Aligned checkpointing: coordination, alignment, snapshot records."""

import sys

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import CheckpointCoordinator
import pytest


def test_periodic_checkpoints_complete():
    job = build_keyed_job()
    drive(job, until=10.0, marker_every=0)
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    job.run(until=11.0)
    assert len(coordinator.completed) >= 4
    # every instance snapshots every completed checkpoint (source + agg +
    # sink instances)
    instance_count = len(job.all_instances())
    by_id = {}
    for _t, name, cid in job.snapshots:
        by_id.setdefault(cid, set()).add(name)
    finished = [cid for cid, names in by_id.items()
                if len(names) == instance_count]
    assert len(finished) >= 3


def test_trigger_now_returns_increasing_ids():
    job = build_keyed_job()
    job.start()
    coordinator = CheckpointCoordinator(job, interval=100.0)
    first = coordinator.trigger_now()
    second = coordinator.trigger_now()
    assert second == first + 1


def test_alignment_blocks_fast_channel():
    """A barrier on one channel blocks it until the other channel's barrier
    arrives — records behind the first barrier wait."""
    from repro.engine.records import CheckpointBarrier, Record
    job = build_keyed_job()
    job.start()
    job.run(until=0.1)
    agg = job.instances("agg")[0]
    fast, slow = agg.input_channels[0], agg.input_channels[1]
    fast.deliver(CheckpointBarrier(checkpoint_id=1))
    fast.deliver(Record(key="after-barrier", key_group=0, count=1))
    job.run(until=0.3)
    # barrier consumed, channel now blocked, record stuck behind alignment
    assert fast.blocked
    assert len(fast.queue) == 1
    slow.deliver(CheckpointBarrier(checkpoint_id=1))
    job.run(until=0.5)
    assert not fast.blocked
    assert len(fast.queue) == 0  # record processed after alignment


def test_snapshot_cost_scales_with_state():
    job = build_keyed_job(state_bytes_per_group=0.0)
    small = job.checkpoint_sync_cost(job.instances("agg")[0])
    job2 = build_keyed_job(state_bytes_per_group=1e8)
    big = job2.checkpoint_sync_cost(job2.instances("agg")[0])
    assert small == 0.0
    assert big > 0.0


def test_coordinator_rejects_bad_interval():
    job = build_keyed_job()
    with pytest.raises(ValueError):
        CheckpointCoordinator(job, interval=0.0)


def test_stop_prevents_future_checkpoints():
    job = build_keyed_job()
    drive(job, until=8.0, marker_every=0)
    coordinator = CheckpointCoordinator(job, interval=1.0)
    coordinator.start()
    job.run(until=3.5)
    count = len(coordinator.completed)
    coordinator.stop()
    job.run(until=8.0)
    assert len(coordinator.completed) == count
