"""Job-graph construction and validation."""

import pytest

from repro.engine import JobGraph, OperatorSpec, Partitioning


def simple_graph():
    g = JobGraph("g", num_key_groups=8)
    g.add_source("src")
    g.add_operator(OperatorSpec("agg", parallelism=2, keyed=True))
    g.add_sink("sink")
    g.connect("src", "agg", Partitioning.HASH)
    g.connect("agg", "sink")
    return g


def test_valid_graph_passes():
    simple_graph().validate()


def test_duplicate_operator_rejected():
    g = JobGraph("g")
    g.add_source("a")
    with pytest.raises(ValueError):
        g.add_source("a")


def test_connect_unknown_operator_rejected():
    g = JobGraph("g")
    g.add_source("a")
    with pytest.raises(KeyError):
        g.connect("a", "missing")
    with pytest.raises(KeyError):
        g.connect("missing", "a")


def test_cycle_detected():
    g = JobGraph("g")
    g.add_source("src")
    g.add_operator(OperatorSpec("a"))
    g.add_operator(OperatorSpec("b"))
    g.connect("src", "a")
    g.connect("a", "b")
    g.connect("b", "a")
    with pytest.raises(ValueError, match="cycle"):
        g.validate()


def test_no_source_rejected():
    g = JobGraph("g")
    g.add_operator(OperatorSpec("a"))
    with pytest.raises(ValueError, match="source"):
        g.validate()


def test_hash_edge_requires_keyed_target():
    g = JobGraph("g")
    g.add_source("src")
    g.add_operator(OperatorSpec("map"))  # not keyed
    g.connect("src", "map", Partitioning.HASH)
    with pytest.raises(ValueError, match="non-keyed"):
        g.validate()


def test_upstream_downstream_queries():
    g = simple_graph()
    assert g.upstream_of("agg") == ["src"]
    assert g.downstream_of("agg") == ["sink"]
    assert g.upstream_of("src") == []
    assert [e.name for e in g.in_edges("sink")] == ["agg->sink"]


def test_sources_and_sinks():
    g = simple_graph()
    assert [s.name for s in g.sources()] == ["src"]
    assert [s.name for s in g.sinks()] == ["sink"]


def test_spec_validation():
    with pytest.raises(ValueError):
        OperatorSpec("x", parallelism=0)
    with pytest.raises(ValueError):
        OperatorSpec("x", service_time=-1.0)
    with pytest.raises(ValueError):
        JobGraph("g", num_key_groups=0)
