"""Stream element types."""

from repro.engine import (CheckpointBarrier, EndOfStream, LatencyMarker,
                          Record, Watermark)
from repro.engine.records import ControlSignal


def test_record_defaults():
    r = Record(key="a")
    assert r.is_record
    assert not r.is_time_signal
    assert r.count == 1


def test_record_ids_are_unique():
    assert Record(key="a").record_id != Record(key="a").record_id


def test_copy_with_overrides_selected_fields():
    r = Record(key="a", key_group=3, event_time=1.0, value=10, count=5,
               size_bytes=100.0, created_at=2.0)
    c = r.copy_with(key="b", key_group=None)
    assert c.key == "b" and c.key_group is None
    assert c.event_time == 1.0 and c.value == 10 and c.count == 5
    assert c.record_id != r.record_id


def test_time_signal_classification():
    assert Watermark(timestamp=1.0).is_time_signal
    assert CheckpointBarrier(checkpoint_id=1).is_time_signal
    assert not Record(key="a").is_time_signal
    assert not LatencyMarker().is_time_signal
    assert not EndOfStream().is_time_signal


def test_marker_ids_unique():
    assert LatencyMarker().marker_id != LatencyMarker().marker_id


def test_control_signal_is_not_record():
    assert not ControlSignal().is_record


def test_sizes_are_positive():
    for element in (Record(key="a"), Watermark(), LatencyMarker(),
                    CheckpointBarrier(), EndOfStream()):
        assert element.size_bytes > 0
