"""StreamJob runtime: build, queries, runtime instance addition."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine import (JobConfig, JobGraph, OperatorSpec, Partitioning,
                          StateStatus, StreamJob)


def test_build_is_idempotent():
    job = build_keyed_job()
    instances = job.all_instances()
    job.build()
    assert job.all_instances() == instances


def test_keyed_operator_gets_initial_assignment_and_state():
    job = build_keyed_job(num_key_groups=16, agg_parallelism=2,
                          state_bytes_per_group=100.0)
    assignment = job.assignments["agg"]
    for kg in range(16):
        owner = assignment.owner(kg)
        group = job.instances("agg")[owner].state.group(kg)
        assert group is not None and group.status is StateStatus.LOCAL
        assert group.size_bytes == 100.0


def test_channel_matrix_is_full_mesh_per_edge():
    job = build_keyed_job(source_parallelism=2, agg_parallelism=3)
    for sender, edge in job.senders_to("agg"):
        assert len(edge.channels) == 3
    for inst in job.instances("agg"):
        assert len(inst.input_channels) == 2


def test_senders_to_lists_all_upstream_instances():
    job = build_keyed_job(source_parallelism=3)
    senders = job.senders_to("agg")
    assert len(senders) == 3
    assert all(edge.dst_op == "agg" for _s, edge in senders)


def test_add_instance_wires_channels_both_ways():
    job = build_keyed_job(source_parallelism=2, agg_parallelism=2)
    job.start()
    job.run(until=0.1)
    new = job.add_instance("agg")
    assert new.index == 2
    # upstream: each source now has 3 channels on its agg edge
    for _sender, edge in job.senders_to("agg"):
        assert len(edge.channels) == 3
    # downstream: new instance has an edge to the sink
    assert len(new.router.edges) == 1
    assert len(new.router.edges[0].channels) == 1
    # input channels from both sources
    assert len(new.input_channels) == 2


def test_add_instance_does_not_change_routing():
    job = build_keyed_job()
    before = {kg: edge.routing_table[kg]
              for _s, edge in job.senders_to("agg")
              for kg in edge.routing_table}
    job.start()
    job.add_instance("agg")
    after = {kg: edge.routing_table[kg]
             for _s, edge in job.senders_to("agg")
             for kg in edge.routing_table}
    assert before == after


def test_new_instance_inherits_watermark():
    job = build_keyed_job()
    drive(job, until=2.0, watermark_every=3, marker_every=0)
    job.run(until=2.0)
    new = job.add_instance("agg")
    for ch in new.input_channels:
        assert ch.watermark > float("-inf")


def test_create_direct_channel_is_auxiliary():
    job = build_keyed_job()
    job.start()
    a, b = job.instances("agg")
    channel = job.create_direct_channel(a, b)
    aux = channel.input_channel
    assert aux.is_auxiliary
    assert aux.watermark == float("inf")
    assert aux in b.input_channels


def test_transfer_gate_is_shared_per_node():
    job = build_keyed_job()
    gate1 = job.transfer_gate("server-0")
    gate2 = job.transfer_gate("server-0")
    assert gate1 is gate2
    assert gate1.available == job.config.max_concurrent_transfers_per_host


def test_sink_logic_requires_unique_sink():
    graph = JobGraph("two-sinks", num_key_groups=4)
    graph.add_source("s")
    graph.add_sink("k1")
    graph.add_sink("k2")
    graph.connect("s", "k1")
    graph.connect("s", "k2")
    job = StreamJob(graph).build()
    with pytest.raises(ValueError):
        job.sink_logic()
    assert job.sink_logic("k1") is not None


def test_total_state_bytes():
    job = build_keyed_job(num_key_groups=16, state_bytes_per_group=10.0)
    assert job.total_state_bytes("agg") == pytest.approx(160.0)


def test_config_capacities_apply():
    config = JobConfig(outbox_capacity=7, inbox_capacity=9)
    job = build_keyed_job(job_config=config)
    for _sender, edge in job.senders_to("agg"):
        for channel in edge.channels:
            assert channel.outbox_capacity == 7
            assert channel.inbox_capacity == 9
