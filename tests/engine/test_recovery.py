"""Checkpoint-based failure recovery: exactly-once state, replay, costs."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job  # noqa: E402

from repro.engine import (CheckpointCoordinator, JobGraph, KeyedReduceLogic,
                          OperatorSpec, Partitioning, Record, StreamJob)
from repro.engine.recovery import RecoveryError, RecoveryManager


def counting_job():
    """Keyed sum with a deterministic, replayable feed.

    Returns ``(job, produced)``: ``produced`` counts records per key as the
    generator offers them — an oracle independent of the source's replay
    history, which the RecoveryManager trims behind retained checkpoints.
    """
    graph = JobGraph("recovery", num_key_groups=8)
    graph.add_source("src", parallelism=1)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=2e-4, keyed=True))
    graph.add_sink("sink")
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()
    produced = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < 30.0:
            key = f"k{i % 12}"
            src.offer(Record(key=key, event_time=job.sim.now, count=1))
            produced[key] = produced.get(key, 0) + 1
            i += 1
            yield job.sim.timeout(0.01)

    job.sim.spawn(gen())
    return job, produced


def total_state(job):
    totals = {}
    for inst in job.instances("agg"):
        for group in inst.state.groups():
            for key, value in group.entries.items():
                totals[key] = value
    return totals


def test_recovery_restores_exact_state():
    job, produced = counting_job()
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job).install()
    job.run(until=10.0)
    done = manager.fail_and_recover()
    job.run(until=40.0)
    assert done.triggered
    # Exactly-once state: after replay finishes, every key's count equals
    # the number of records the generator produced for it.
    assert total_state(job) == produced


def test_recovery_rolls_back_to_latest_completed_checkpoint():
    job, _produced = counting_job()
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job).install()
    job.run(until=9.0)
    checkpoint = manager.latest_completed()
    assert checkpoint is not None
    assert checkpoint.checkpoint_id >= 3
    done = manager.fail_and_recover()
    job.run(until=12.0)
    assert done.triggered
    assert manager.recoveries[0][1] == checkpoint.checkpoint_id


def test_recovery_costs_downtime():
    job, _produced = counting_job()
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job, restart_seconds=3.0).install()
    job.run(until=8.0)
    done = manager.fail_and_recover()
    job.run(until=9.0)
    assert not done.triggered  # still restarting
    job.run(until=15.0)
    assert done.triggered


def test_at_least_once_output():
    """Records between the checkpoint and the failure replay: the sink sees
    at least everything the generator produced."""
    job, produced = counting_job()
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job).install()
    job.run(until=10.0)
    done = manager.fail_and_recover()
    job.run(until=45.0)
    assert done.triggered
    assert job.sink_logic().records_in >= sum(produced.values())


def test_recovery_without_checkpoint_fails():
    job, _produced = counting_job()
    manager = RecoveryManager(job).install()
    job.run(until=1.0)
    with pytest.raises(RecoveryError):
        manager.fail_and_recover()


def test_recovery_requires_install():
    job, _produced = counting_job()
    manager = RecoveryManager(job)
    with pytest.raises(RecoveryError):
        manager.fail_and_recover()


def test_recovery_after_rescale_restores_rescaled_topology():
    """Checkpoints taken after a DRRS rescale snapshot the new deployment;
    recovery restores state onto all four instances."""
    from repro.core.drrs import DRRSController

    job, produced = counting_job()
    coordinator = CheckpointCoordinator(job, interval=2.0)
    coordinator.start()
    manager = RecoveryManager(job).install()
    job.run(until=4.0)
    controller = DRRSController(job)
    scaled = controller.request_rescale("agg", 4)
    job.run(until=12.0)
    assert scaled.triggered
    job.run(until=16.0)  # let post-scaling checkpoints complete
    done = manager.fail_and_recover()
    job.run(until=45.0)
    assert done.triggered
    assert len(job.instances("agg")) == 4
    assert total_state(job) == produced


def test_rewind_validates_offset():
    job, _produced = counting_job()
    src = job.sources()[0]
    with pytest.raises(RuntimeError):
        src.rewind_to(0)
    src.enable_replay_history()
    with pytest.raises(ValueError):
        src.rewind_to(10**9)
