"""Metrics collection: latency stats, rate series, percentiles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import MetricsCollector, percentile, series_mean, series_peak


def test_latency_stats_window():
    m = MetricsCollector()
    for t, v in [(1.0, 0.1), (2.0, 0.2), (3.0, 0.3), (10.0, 9.9)]:
        m.record_latency(t, v)
    stats = m.latency_stats(start=0.0, end=5.0)
    assert stats["count"] == 3
    assert stats["peak"] == 0.3
    assert stats["mean"] == pytest.approx(0.2)


def test_latency_stats_empty():
    stats = MetricsCollector().latency_stats()
    assert stats == {"peak": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                     "count": 0}


def test_throughput_series_buckets():
    m = MetricsCollector()
    for t in (0.1, 0.2, 1.5, 1.6, 1.7):
        m.record_source_output(t, 10)
    series = m.throughput_series(window=1.0, start=0.0, end=3.0)
    assert len(series) == 3
    assert series[0] == (0.5, 20.0)
    assert series[1] == (1.5, 30.0)
    assert series[2] == (2.5, 0.0)


def test_sink_rate_series_and_totals():
    m = MetricsCollector()
    m.record_sink_input(1.0, 5)
    m.record_sink_input(2.0, 7)
    assert m.total_sink_input() == 12
    assert m.total_sink_input(start=1.5) == 7
    assert m.sink_rate_series(window=1.0, end=3.0)[1][1] == 5.0


def test_rate_series_rejects_bad_window():
    m = MetricsCollector()
    m.record_source_output(0.1, 1)
    with pytest.raises(ValueError):
        m.throughput_series(window=0)


def test_custom_series():
    m = MetricsCollector()
    m.record_custom("backlog", 1.0, 5.0)
    m.record_custom("backlog", 2.0, 7.0)
    assert m.custom["backlog"] == [(1.0, 5.0), (2.0, 7.0)]


def test_series_peak_and_mean():
    series = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
    assert series_peak(series) == 30.0
    assert series_mean(series) == 20.0
    assert series_peak(series, start=0.0, end=2.5) == 20.0
    assert series_mean([], 0, 1) == 0.0


class TestPercentile:
    def test_simple(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0

    def test_empty_returns_zero(self):
        # Empty-input contract (module docstring): all summary helpers are
        # total over empty inputs, so a window with no markers is 0.0
        # everywhere, never an exception.
        assert percentile([], 50) == 0.0
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0

    def test_rejects_bad_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)
        with pytest.raises(ValueError):
            percentile([], 101)  # argument errors win over empty input

    def test_empty_contract_is_uniform(self):
        # percentile / series_peak / series_mean / latency_stats agree.
        assert percentile([], 99) == series_peak([]) == series_mean([]) == 0.0
        stats = MetricsCollector().latency_stats()
        assert stats["p99"] == 0.0 and stats["peak"] == 0.0

    def test_single_sample_stats(self):
        m = MetricsCollector()
        m.record_latency(1.0, 0.25)
        stats = m.latency_stats()
        assert stats == {"peak": 0.25, "mean": 0.25, "p50": 0.25,
                         "p99": 0.25, "count": 1}

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
           st.floats(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_min_max(self, values, pct):
        p = percentile(values, pct)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_pct(self, values):
        assert (percentile(values, 25) <= percentile(values, 50)
                <= percentile(values, 90))
