"""Job introspection rows and summaries."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import build_keyed_job, drive  # noqa: E402

from repro.engine.introspection import (channel_rows, hot_instance,
                                        instance_rows, job_summary,
                                        operator_rows)


def running_job():
    job = build_keyed_job(state_bytes_per_group=1e6)
    drive(job, until=5.0)
    job.run(until=5.0)
    return job


def test_instance_rows_cover_all_instances():
    job = running_job()
    rows = instance_rows(job)
    assert len(rows) == len(job.all_instances())
    names = {r["instance"] for r in rows}
    assert "agg[0]" in names and "src[1]" in names


def test_instance_rows_filter_by_operator():
    job = running_job()
    rows = instance_rows(job, operator="agg")
    assert len(rows) == 2
    for row in rows:
        assert row["instance"].startswith("agg")
        assert 0.0 <= row["busy_fraction"] <= 1.0
        assert row["state_mb"] > 0
        assert row["key_groups"] == 8


def test_source_rows_include_admission_backlog():
    job = running_job()
    rows = [r for r in instance_rows(job, operator="src")]
    assert all("admission_backlog" in r for r in rows)


def test_operator_rows_aggregate():
    job = running_job()
    rows = {r["operator"]: r for r in operator_rows(job)}
    assert rows["agg"]["parallelism"] == 2
    assert rows["agg"]["records_processed"] == \
        job.metrics.total_source_output()
    assert rows["agg"]["busy_max"] >= rows["agg"]["busy_mean"]


def test_channel_rows_show_congestion():
    job = build_keyed_job(agg_service=0.05)  # overload: queues build
    drive(job, until=5.0, record_gap=0.002)
    job.run(until=5.0)
    rows = channel_rows(job, min_backlog=1)
    assert rows
    assert rows[0]["outbox"] + rows[0]["in_flight"] + rows[0]["inbox"] >= \
        rows[-1]["outbox"] + rows[-1]["in_flight"] + rows[-1]["inbox"]


def test_hot_instance():
    job = running_job()
    hot = hot_instance(job, "agg")
    assert hot["busy_fraction"] == max(
        r["busy_fraction"] for r in instance_rows(job, operator="agg"))
    with pytest.raises(KeyError):
        hot_instance(job, "missing")


def test_job_summary_consistency():
    job = running_job()
    summary = job_summary(job)
    assert summary["sim_time_s"] == job.sim.now
    assert summary["instances"] == len(job.all_instances())
    assert summary["records_generated"] >= summary["records_delivered"] >= 0
    assert summary["total_state_mb"] > 0
