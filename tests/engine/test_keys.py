"""Key-group hashing and assignment diffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import KeyGroupAssignment, key_to_key_group, uniform_ranges


def test_key_to_key_group_stable():
    assert key_to_key_group("user-1", 128) == key_to_key_group("user-1", 128)


def test_key_to_key_group_in_range():
    for key in ("a", 42, ("tuple", 1), None):
        assert 0 <= key_to_key_group(key, 16) < 16


def test_key_to_key_group_rejects_zero_groups():
    with pytest.raises(ValueError):
        key_to_key_group("x", 0)


def test_uniform_ranges_flink_formula():
    # Flink: start = i * n / p, end = (i + 1) * n / p
    assert uniform_ranges(128, 8) == [
        (i * 16, (i + 1) * 16) for i in range(8)]
    assert uniform_ranges(10, 3) == [(0, 3), (3, 6), (6, 10)]


def test_uniform_ranges_cover_everything():
    ranges = uniform_ranges(128, 12)
    covered = []
    for start, end in ranges:
        covered.extend(range(start, end))
    assert covered == list(range(128))


def test_uniform_ranges_reject_bad_args():
    with pytest.raises(ValueError):
        uniform_ranges(4, 8)
    with pytest.raises(ValueError):
        uniform_ranges(8, 0)


def test_assignment_owner_and_groups():
    assignment = KeyGroupAssignment(16, 4)
    assert assignment.owner(0) == 0
    assert assignment.owner(15) == 3
    assert assignment.groups_of(1) == [4, 5, 6, 7]


def test_assignment_diff_counts_paper_scenario():
    """8→12 instances with 128 key-groups: the paper reports 111 migrating
    key-groups; Flink's contiguous-range formula gives 113 (the paper's
    partitioner evidently kept two more in place).  We pin our exact value
    and assert it is within the paper's ballpark."""
    current = KeyGroupAssignment(128, 8)
    target = current.rescaled_uniform(12)
    moves = current.diff(target)
    assert len(moves) == 113
    assert abs(len(moves) - 111) <= 2


def test_assignment_diff_sensitivity_scenario():
    """25→30 instances with 256 key-groups: paper reports 229 migrating;
    our contiguous ranges give 230 (off by one, same partitioning family)."""
    current = KeyGroupAssignment(256, 25)
    target = current.rescaled_uniform(30)
    moves = current.diff(target)
    assert len(moves) == 230
    assert abs(len(moves) - 229) <= 1


def test_assignment_apply_move():
    assignment = KeyGroupAssignment(8, 2)
    assignment.apply_move(0, 1)
    assert assignment.owner(0) == 1


def test_assignment_requires_complete_mapping():
    with pytest.raises(ValueError):
        KeyGroupAssignment(4, 2, mapping={0: 0, 1: 1})


def test_assignment_counts():
    assignment = KeyGroupAssignment(10, 3)
    counts = assignment.counts()
    assert sum(counts.values()) == 10


@given(n=st.integers(1, 512), p=st.integers(1, 64))
@settings(max_examples=80, deadline=None)
def test_uniform_assignment_is_contiguous_and_balanced(n, p):
    if n < p:
        return
    assignment = KeyGroupAssignment(n, p)
    counts = assignment.counts()
    assert max(counts.values()) - min(counts.values()) <= 1
    # contiguity: owners are non-decreasing over key-group index
    owners = [assignment.owner(kg) for kg in range(n)]
    assert owners == sorted(owners)


@given(n=st.integers(2, 256), p_old=st.integers(1, 16),
       p_new=st.integers(1, 16))
@settings(max_examples=80, deadline=None)
def test_diff_is_exactly_the_ownership_change(n, p_old, p_new):
    if n < max(p_old, p_new) or p_old == p_new:
        return
    current = KeyGroupAssignment(n, p_old)
    target = current.rescaled_uniform(p_new)
    moves = current.diff(target)
    moved = {kg for kg, _s, _d in moves}
    for kg in range(n):
        changed = current.owner(kg) != target.owner(kg)
        assert (kg in moved) == changed
