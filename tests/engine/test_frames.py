"""Columnar cut-edge frame codec: bit-exact roundtrips and fallbacks.

The codec's contract is that a decoded element is indistinguishable from
its pipe-transported (pickled) twin — these tests compare field-by-field
against the originals, including float bit patterns.
"""

import math
import pickle
import struct

import pytest

from repro.engine.frames import decode_frame, encode_frame
from repro.engine.records import (CheckpointBarrier, LatencyMarker, Record,
                                  RecordBatch, Watermark)


def _mkbatch(n=5, lineage=False, visible=False, key=lambda i: f"k{i}"):
    records = [
        Record(key=key(i), key_group=(i % 3 if i % 4 else None),
               event_time=0.1 * i + 1/3, value={"v": i}, count=i + 1,
               size_bytes=64.0 + i * 0.25, created_at=0.05 * i,
               record_id=1000 + i,
               src_origin=("src" if lineage and i % 2 else None),
               src_seq=(i if lineage and i % 2 else None))
        for i in range(n)]
    vts = [0.1 * i + 0.5 for i in range(n)] if visible else None
    batch = RecordBatch(records, visible_times=vts)
    batch.next_index = 2
    return batch


def _assert_batches_equal(a, b):
    assert type(b) is RecordBatch
    assert b.next_index == a.next_index
    assert b.size_bytes == a.size_bytes
    assert b.visible_times == a.visible_times
    assert len(b.records) == len(a.records)
    for ra, rb in zip(a.records, b.records):
        for slot in Record.__slots__:
            va, vb = getattr(ra, slot), getattr(rb, slot)
            assert va == vb, f"Record.{slot}: {va!r} != {vb!r}"
            if isinstance(va, float):
                # bit-exact, not just ==
                assert struct.pack("<d", va) == struct.pack("<d", vb)


class TestBatchRoundtrip:
    def test_plain_batch(self):
        batch = _mkbatch()
        grant, final, msgs = decode_frame(
            encode_frame([("b", 3, 1.25, batch)], grant=7.5))
        assert grant == 7.5 and final is False
        [(kind, cid, t, element)] = msgs
        assert (kind, cid, t) == ("b", 3, 1.25)
        _assert_batches_equal(batch, element)

    def test_lineage_and_visible_times(self):
        batch = _mkbatch(lineage=True, visible=True)
        _, _, [(_, _, _, decoded)] = decode_frame(
            encode_frame([("b", 1, 0.5, batch)], grant=0.0))
        _assert_batches_equal(batch, decoded)

    def test_mixed_lineage_batch_keeps_lineage(self):
        # only *some* records carry lineage: the column must still ship
        batch = _mkbatch(lineage=True)
        assert any(r.src_origin is not None for r in batch.records)
        assert any(r.src_origin is None for r in batch.records)
        _, _, [(_, _, _, decoded)] = decode_frame(
            encode_frame([("b", 1, 0.5, batch)], grant=0.0))
        _assert_batches_equal(batch, decoded)

    def test_columnar_cache_and_struct_paths_agree(self):
        # encoding with a warmed numpy column cache must produce a frame
        # that decodes identically to the cold (struct) path
        warmed = _mkbatch(visible=True)
        cold = _mkbatch(visible=True)
        warmed.columns()
        _, _, [(_, _, _, via_cols)] = decode_frame(
            encode_frame([("b", 1, 0.5, warmed)], grant=0.0))
        _assert_batches_equal(cold, via_cols)

    def test_float_bit_exactness(self):
        # values that don't survive repr round-trips still cross exactly
        rec = Record(key="k", event_time=math.pi, size_bytes=1e-17,
                     created_at=2.0 ** -1074, record_id=1)
        batch = RecordBatch([rec])
        _, _, [(_, _, _, decoded)] = decode_frame(
            encode_frame([("b", 1, 0.0, batch)], grant=0.0))
        _assert_batches_equal(batch, decoded)


class TestFallbacks:
    class _Stats:
        batch_fallbacks = 0

    def test_unpackable_key_group_falls_back_to_pickle(self):
        # a non-int key_group breaks the i64 column pack -> whole-pickle
        batch = _mkbatch(n=3)
        batch.records[1].key_group = "not-an-int"
        stats = self._Stats()
        frame = encode_frame([("b", 2, 1.0, batch)], grant=1.0,
                             stats=stats)
        assert stats.batch_fallbacks == 1
        _, _, [(kind, cid, t, decoded)] = decode_frame(frame)
        assert (kind, cid, t) == ("b", 2, 1.0)
        _assert_batches_equal(batch, decoded)

    def test_fallback_rolls_back_partial_sections(self):
        # good batch, bad batch, good batch: the bad one's partial
        # columns must not corrupt its neighbours
        good1, good2 = _mkbatch(n=2), _mkbatch(n=4, visible=True)
        bad = _mkbatch(n=3)
        bad.records[2].count = 2 ** 70  # overflows the i64 column
        msgs_in = [("b", 1, 0.1, good1), ("b", 2, 0.2, bad),
                   ("b", 3, 0.3, good2)]
        _, _, msgs = decode_frame(encode_frame(msgs_in, grant=0.0))
        assert [m[:3] for m in msgs] == [m[:3] for m in msgs_in]
        for (_, _, _, orig), (_, _, _, dec) in zip(msgs_in, msgs):
            _assert_batches_equal(orig, dec)


class TestOtherElements:
    def test_watermark_fast_path_no_pickle(self):
        wm = Watermark(timestamp=123.456, size_bytes=16.0)
        frame = encode_frame([("e", 5, 9.0, wm)], grant=9.5)
        # the watermark must not ride the pickle tail
        blob_len = struct.unpack_from("<I", frame, 13)[0]
        assert blob_len == 0
        grant, final, [(kind, cid, t, decoded)] = decode_frame(frame)
        assert grant == 9.5
        assert (kind, cid, t) == ("e", 5, 9.0)
        assert type(decoded) is Watermark
        assert decoded.timestamp == wm.timestamp
        assert decoded.size_bytes == wm.size_bytes

    def test_markers_and_controls_ride_the_tail(self):
        marker = LatencyMarker(emitted_at=1.5, key="m")
        barrier = CheckpointBarrier(checkpoint_id=7)
        _, _, msgs = decode_frame(encode_frame(
            [("e", 1, 0.1, marker), ("e", 2, 0.2, barrier),
             ("c", 3, 0.3, ("credit", 4))], grant=0.0))
        kinds = [m[0] for m in msgs]
        assert kinds == ["e", "e", "c"]
        assert msgs[0][3].emitted_at == 1.5
        assert msgs[1][3].checkpoint_id == 7
        assert msgs[2][3] == ("credit", 4)

    def test_empty_and_final_frames(self):
        grant, final, msgs = decode_frame(
            encode_frame([], grant=3.25, final=True))
        assert grant == 3.25 and final is True and msgs == []
        grant, final, msgs = decode_frame(encode_frame([], grant=0.125))
        assert grant == 0.125 and final is False and msgs == []

    def test_frame_is_self_contained_after_mutation(self):
        # clearing/mutating the staging list or the elements after encode
        # must not affect the already-encoded frame (the old in-place
        # `msgs.clear()` hazard)
        batch = _mkbatch(n=3)
        expected = pickle.loads(pickle.dumps(batch))
        staged = [("b", 1, 0.5, batch)]
        frame = encode_frame(staged, grant=1.0)
        staged.clear()
        batch.records[0].value = {"v": "CORRUPTED"}
        batch.records.pop()
        batch.next_index = 0
        _, _, [(_, _, _, decoded)] = decode_frame(frame)
        _assert_batches_equal(expected, decoded)

    def test_message_interleaving_preserved(self):
        batch = _mkbatch(n=2)
        wm = Watermark(timestamp=2.0)
        msgs_in = [("e", 1, 0.1, wm), ("b", 2, 0.2, batch),
                   ("e", 1, 0.3, Watermark(timestamp=3.0))]
        _, _, msgs = decode_frame(encode_frame(msgs_in, grant=0.0))
        assert [m[:3] for m in msgs] == [m[:3] for m in msgs_in]
        assert msgs[0][3].timestamp == 2.0
        assert msgs[2][3].timestamp == 3.0
