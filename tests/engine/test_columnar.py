"""Columnar plane primitives: views, vectorized sums, burst partitioning.

Everything in :mod:`repro.engine.columnar` must be a bit-identical
re-expression of a scalar loop (or degrade to one without numpy); these
tests pin each helper against its scalar reference.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.columnar import (HAVE_NUMPY, cumulative_ship_times,
                                   partition_by_target)
from repro.engine.records import Record, RecordBatch
from repro.engine.routing import OutputEdge, Partitioning


def _records(n, seed=0):
    rng = random.Random(seed)
    return [Record(key=f"k{i}", key_group=rng.randrange(16),
                   event_time=rng.uniform(0, 100), count=rng.randrange(1, 5),
                   size_bytes=float(rng.randrange(16, 512)))
            for i in range(n)]


# -- cumulative_ship_times -------------------------------------------------------


@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e6,
                                allow_nan=False),
                      min_size=1, max_size=100),
       start=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       bandwidth=st.sampled_from([1e6, 1e8, 400e6, 1e9]))
@settings(max_examples=200, deadline=None)
def test_cumulative_ship_times_bitwise_equals_scalar_loop(sizes, start,
                                                          bandwidth):
    """Both the numpy path (n >= 8) and the fallback must match exactly."""
    out = cumulative_ship_times(sizes, start, bandwidth)
    s = start
    expected = []
    for size in sizes:
        s += size / bandwidth
        expected.append(s)
    assert out == expected  # bitwise: == on floats, no tolerance


# -- partition_by_target ---------------------------------------------------------


@given(key_groups=st.lists(st.integers(0, 15), min_size=1, max_size=200),
       channels=st.integers(1, 6))
@settings(max_examples=200, deadline=None)
def test_partition_by_target_matches_sequential_loop(key_groups, channels):
    table = [kg % channels for kg in range(16)]
    out = partition_by_target(key_groups, table)
    expected = {}
    for i, kg in enumerate(key_groups):
        expected.setdefault(table[kg], []).append(i)
    assert out == expected


def test_partition_by_target_preserves_per_target_order():
    # Skewed input: one hot target, members must stay in arrival order.
    key_groups = [0, 1, 0, 0, 2, 0, 1, 0, 0, 0, 3, 0]
    table = [0, 1, 1, 0]
    out = partition_by_target(key_groups, table)
    assert out[0] == [0, 2, 3, 5, 7, 8, 9, 10, 11]
    assert out[1] == [1, 4, 6]


# -- OutputEdge.partition_burst ---------------------------------------------------


class _FakeChannel:
    def __init__(self, index):
        self.index = index


def _hash_edge(channels=4, num_key_groups=16):
    edge = OutputEdge("e", Partitioning.HASH, num_key_groups=num_key_groups)
    for i in range(channels):
        edge.add_channel(_FakeChannel(i))
    for kg in range(num_key_groups):
        edge.set_routing(kg, kg % channels)
    return edge


def test_partition_burst_matches_channel_for_record():
    edge = _hash_edge()
    records = _records(40, seed=3)
    split = edge.partition_burst(records)
    for target, indices in split.items():
        for i in indices:
            assert edge.channel_for_record(records[i]).index == target
    flat = sorted(i for indices in split.values() for i in indices)
    assert flat == list(range(len(records)))


def test_partition_burst_stamps_unkeyed_records():
    edge = _hash_edge()
    records = [Record(key=f"user-{i}") for i in range(20)]
    assert all(r.key_group is None for r in records)
    split = edge.partition_burst(records)
    assert all(r.key_group is not None for r in records)
    for target, indices in split.items():
        for i in indices:
            assert edge.routing_table[records[i].key_group] == target


def test_partition_burst_sees_routing_updates():
    """The dense-table cache must invalidate with the channel cache."""
    edge = _hash_edge(channels=2)
    records = _records(24, seed=5)
    before = edge.partition_burst(records)
    for kg in range(16):
        edge.set_routing(kg, 0)  # re-route everything to channel 0
    after = edge.partition_burst(records)
    assert set(after) == {0}
    assert after[0] == list(range(len(records)))
    assert before != after


def test_partition_burst_rejects_non_hash_edges():
    edge = OutputEdge("e", Partitioning.FORWARD)
    edge.add_channel(_FakeChannel(0))
    with pytest.raises(ValueError):
        edge.partition_burst(_records(4))


# -- RecordBatch.columns ----------------------------------------------------------


def test_batch_columns_view_matches_members():
    records = _records(12, seed=9)
    visible = [0.1 * i for i in range(12)]
    batch = RecordBatch(records, visible)
    cols = batch.columns()
    if not HAVE_NUMPY:
        assert cols is None
        return
    assert cols.n == 12
    assert cols.event_time.tolist() == [r.event_time for r in records]
    assert cols.count.tolist() == [r.count for r in records]
    assert cols.size_bytes.tolist() == [r.size_bytes for r in records]
    assert cols.key_group.tolist() == [r.key_group for r in records]
    assert cols.visible_time.tolist() == visible
    assert cols.total_count == sum(r.count for r in records)
    # The view is cached: same object on re-access.
    assert batch.columns() is cols


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
def test_batch_columns_unkeyed_members_marked():
    records = [Record(key=None, key_group=None, count=1)]
    cols = RecordBatch(records).columns()
    assert cols.key_group.tolist() == [-1]
    assert cols.visible_time is None
