"""Figure runners: smoke tests on a tiny scenario + report formatting."""

import pytest

from repro.experiments import (controller_factory, format_fig02,
                               format_fig10, format_fig12, format_fig13,
                               format_fig14, format_fig15, format_table,
                               run_fig14_ablation, run_fig15_sensitivity,
                               run_main_comparison)
from repro.experiments.scenarios import Scenario

TINY = Scenario(name="tiny-fig", warmup=5.0, post_duration=15.0,
                stabilize_hold=3.0, state_scale=0.005, batch_size=400,
                sensitivity_window=8.0, old_parallelism=4,
                new_parallelism=6, sens_old_parallelism=4,
                sens_new_parallelism=5)


def test_controller_factory_knows_every_system():
    for name in ("drrs", "megaphone", "meces", "otfs", "otfs-all-at-once",
                 "unbound", "stop-restart", "dr", "schedule", "subscale"):
        assert callable(controller_factory(name))
    with pytest.raises(ValueError):
        controller_factory("unknown")


def test_main_comparison_is_memoised():
    a = run_main_comparison(TINY, workloads=("custom",),
                            systems=("otfs",))
    b = run_main_comparison(TINY, workloads=("custom",),
                            systems=("otfs",))
    assert a is b
    result = a["custom"]["otfs"]
    assert result.scaling_metrics is not None


def test_fig14_tiny_runs_and_formats():
    out = run_fig14_ablation(TINY, variants=("drrs", "dr"))
    text = format_fig14(out)
    assert "drrs" in text and "dr" in text
    rows = {r["variant"]: r for r in out["rows"]}
    assert "peak_increase_pct" in rows["dr"]


def test_fig15_tiny_grid():
    grid = {"rates": [2000.0], "state_bytes": [5e9], "skews": [0.0]}
    out = run_fig15_sensitivity(TINY, grid=grid, systems=("otfs",))
    assert len(out["rows"]) == 1
    row = out["rows"][0]
    assert 0.0 <= row["throughput_deviation_pct"] <= 100.0
    assert "measured_rate" in row
    assert "otfs" in format_fig15(out)


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22.5, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_handles_none(self):
        text = format_table([{"x": None}])
        assert "-" in text
