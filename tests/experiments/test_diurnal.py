"""Diurnal-day scenario: day curve, sizing, criteria, determinism."""

import json

import pytest

from repro.experiments.diurnal import (DAY_POINTS, DiurnalConfig,
                                       compare_policies, day_profile,
                                       run_diurnal)


# -- day curve ----------------------------------------------------------------


def test_day_profile_hits_the_declared_plateaus():
    profile = day_profile(DAY_POINTS, duration=100.0)
    assert profile(0.0) == pytest.approx(0.35)       # night
    assert profile(10.0) == pytest.approx(0.35)      # still night
    assert profile(46.0) == pytest.approx(1.80)      # flash crowd
    assert profile(78.0) == pytest.approx(1.55)      # evening peak
    assert profile(100.0) == pytest.approx(0.40)     # wind-down
    assert profile(1e9) == pytest.approx(0.40)       # clamps past the end


def test_day_profile_interpolates_the_morning_ramp():
    profile = day_profile(DAY_POINTS, duration=100.0)
    mid = profile(26.0)  # halfway through the 0.20 -> 0.32 ramp
    assert 0.35 < mid < 1.00
    assert mid == pytest.approx((0.35 + 1.00) / 2, abs=1e-6)


def test_config_rejects_unknown_scale():
    with pytest.raises(ValueError):
        DiurnalConfig(scale="galactic")


def test_popularity_shifts_track_duration():
    cfg = DiurnalConfig(scale="smoke")
    shifts = cfg.popularity_shifts()
    assert [t for t, _seed in shifts] == [
        pytest.approx(0.44 * cfg.duration),
        pytest.approx(0.70 * cfg.duration)]


def test_run_diurnal_rejects_unknown_policy():
    with pytest.raises(ValueError):
        run_diurnal("clairvoyant")


# -- the headline experiment (smoke scale, ~25 s) -----------------------------


def test_smoke_compare_meets_roadmap_criteria():
    report = compare_policies(DiurnalConfig(scale="smoke"))
    criteria = report["criteria"]
    assert criteria["reactive_holds_slo"], report
    assert criteria["reactive_saves_30pct"], report
    assert criteria["predictive_beats_reactive_on_ramps"], report
    assert criteria["passed"]
    # The savings really are instance-second savings against static peak.
    static = report["policies"]["static-peak"]["instance_seconds"]
    reactive = report["policies"]["reactive"]["instance_seconds"]
    assert reactive < 0.7 * static
    # The autoscaled day actually rescaled, and never failed a rescale.
    assert report["policies"]["reactive"]["rescales"] >= 2
    assert report["policies"]["reactive"]["rescales_failed"] == 0
    assert report["policies"]["predictive"]["rescales_failed"] == 0


def test_smoke_reactive_run_is_deterministic():
    cfg = DiurnalConfig(scale="smoke")
    r1 = run_diurnal("reactive", cfg)
    r2 = run_diurnal("reactive", DiurnalConfig(scale="smoke"))
    assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)
    # The decision log is part of the contract: same seed, same decisions.
    decides = [d for d in r1["decisions"] if d["event"] == "decide"]
    assert decides, "reactive day produced no decisions"
    kinds = {d["kind"] for d in decides}
    assert "scale-out" in kinds
    # Every decision carries an explainable reason for the log.
    assert all(d["why"] for d in decides)
