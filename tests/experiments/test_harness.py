"""Experiment harness: protocol, scaling-period detection, result shape."""

import pytest

from repro.experiments import (ExperimentConfig, QUICK,
                               detect_scaling_period, run_experiment)
from repro.experiments.scenarios import Scenario, make_workload
from repro.scaling import OTFSController
from repro.workloads import CustomConfig, CustomWorkload

TINY = Scenario(name="tiny", warmup=6.0, post_duration=20.0,
                stabilize_hold=4.0, state_scale=0.002, batch_size=100,
                sensitivity_window=10.0, old_parallelism=2,
                new_parallelism=3, sens_old_parallelism=4,
                sens_new_parallelism=5)


def tiny_workload():
    return CustomWorkload(CustomConfig(
        rate=2000.0, batch_size=100, num_key_groups=16,
        operator_parallelism=2, target_state_bytes=2e7,
        marker_interval=0.1))


class TestDetectScalingPeriod:
    def test_immediate_stability(self):
        series = [(t, 0.1) for t in range(10, 40)]
        period = detect_scaling_period(series, scale_at=10.0, baseline=0.1,
                                       hold=5.0, end_at=40.0)
        assert period == pytest.approx(1.0, abs=1.5)

    def test_spike_then_recovery(self):
        series = ([(float(t), 5.0) for t in range(10, 20)]
                  + [(float(t), 0.1) for t in range(20, 40)])
        period = detect_scaling_period(series, scale_at=10.0, baseline=0.1,
                                       hold=5.0, end_at=40.0)
        assert 8.0 <= period <= 13.0

    def test_never_stabilizes_returns_none(self):
        series = [(float(t), 5.0) for t in range(10, 40)]
        assert detect_scaling_period(series, scale_at=10.0, baseline=0.1,
                                     hold=5.0, end_at=40.0) is None

    def test_single_sample_noise_is_smoothed(self):
        # One bad sample inside an otherwise-stable run must not reset the
        # hold window (samples are averaged in 2 s buckets).
        series = [(10 + 0.2 * i, 0.1) for i in range(150)]
        series[60] = (series[60][0], 0.15)  # mild outlier, bucket stays low
        period = detect_scaling_period(series, scale_at=10.0, baseline=0.1,
                                       hold=5.0, end_at=40.0)
        assert period is not None

    def test_empty_after_scale(self):
        assert detect_scaling_period([(1.0, 0.1)], scale_at=10.0,
                                     baseline=0.1) is None

    def test_zero_baseline_fallback(self):
        series = [(float(t), 0.2) for t in range(10, 30)]
        period = detect_scaling_period(series, scale_at=10.0, baseline=0.0,
                                       hold=5.0, end_at=30.0)
        assert period is not None


class TestRunExperiment:
    def test_no_scale_run(self):
        result = run_experiment(ExperimentConfig(
            workload=tiny_workload(), controller_factory=None,
            warmup=5.0, post_duration=10.0))
        assert result.controller_name == "no-scale"
        assert result.scaling_metrics is None
        assert result.scaling_period is None
        assert result.source_records > 0
        assert result.latency_series

    def test_scaled_run_produces_metrics(self):
        result = run_experiment(ExperimentConfig(
            workload=tiny_workload(),
            controller_factory=lambda job: OTFSController(job),
            new_parallelism=3,
            warmup=5.0, post_duration=20.0, stabilize_hold=4.0))
        assert result.controller_name == "otfs"
        assert result.scaling_metrics is not None
        assert result.scaling_metrics.duration is not None
        assert result.scaling_period is not None
        summary = result.summary()
        assert summary["migration_duration"] > 0
        assert "cumulative_propagation_delay" in summary

    def test_throughput_series_covers_run(self):
        result = run_experiment(ExperimentConfig(
            workload=tiny_workload(), controller_factory=None,
            warmup=4.0, post_duration=8.0, measure_window=1.0))
        assert len(result.throughput_series) == pytest.approx(12, abs=1)


def test_scenario_factory_scales_state():
    full = make_workload("custom", QUICK)
    tiny = make_workload("custom", TINY)
    assert (tiny.config.target_state_bytes
            < full.config.target_state_bytes)
