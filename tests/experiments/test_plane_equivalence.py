"""Batched vs. per-record plane: bit-identical simulated behaviour.

The batched record plane is a pure wall-clock optimization — micro-batches
change *when host CPU is spent*, never what the simulation computes.  These
tests run the same scenarios under ``record_plane="batched"`` and
``"single"`` and require the full semantic subtree (sink records, latency
digests, scaling metrics, per-instance counters) and the chaos invariant
reports (checkpoint recoveries included) to match exactly.
"""

from repro.engine.runtime import JobConfig
from repro.experiments.chaos_bank import CHAOS_SCENARIOS, _crash_mid_subscale
from repro.experiments.golden import capture_q7_trace
from repro.faults.chaos import ChaosHarness, ChaosScenario


def test_q7_drrs_rescale_planes_equivalent():
    batched = capture_q7_trace(record_plane="batched")
    single = capture_q7_trace(record_plane="single")
    assert batched["info"]["record_plane"] == "batched"
    assert single["info"]["record_plane"] == "single"
    assert batched["semantic"] == single["semantic"]


def test_q7_drrs_rescale_columnar_equivalent():
    columnar = capture_q7_trace(record_plane="columnar")
    single = capture_q7_trace(record_plane="single")
    assert columnar["info"]["record_plane"] == "columnar"
    assert columnar["semantic"] == single["semantic"]


def test_chaos_crash_mid_subscale_columnar_equivalent():
    """Fault window + checkpoint barrier + recovery explode, columnar."""
    batched = ChaosHarness(CHAOS_SCENARIOS["crash-mid-subscale"],
                           seed=7).run()
    columnar_scenario = ChaosScenario(
        "crash-mid-subscale-columnar",
        lambda seed: _crash_mid_subscale(
            seed, job_config=JobConfig(record_plane="columnar")),
        "crash-mid-subscale forced onto the columnar plane")
    columnar = ChaosHarness(columnar_scenario, seed=7).run()
    assert batched.passed and columnar.passed
    b, c = batched.to_dict(), columnar.to_dict()
    b.pop("scenario"), c.pop("scenario")
    assert b == c


def test_q7_noscale_planes_equivalent():
    batched = capture_q7_trace(system=None, record_plane="batched")
    single = capture_q7_trace(system=None, record_plane="single")
    assert batched["semantic"] == single["semantic"]


def test_chaos_crash_mid_subscale_planes_equivalent():
    """The §IV-C acceptance scenario under both planes.

    The batched job is collapsed to per-record eventing by the recovery
    manager / fault injector hooks before any fault fires, so the two runs
    must produce the *same* invariant report: same recoveries (times and
    restored checkpoint ids), same injected faults, same violations (none),
    and the same kernel event count.
    """
    batched = ChaosHarness(CHAOS_SCENARIOS["crash-mid-subscale"],
                           seed=7).run()
    single_scenario = ChaosScenario(
        "crash-mid-subscale-single",
        lambda seed: _crash_mid_subscale(
            seed, job_config=JobConfig(record_plane="single")),
        "crash-mid-subscale forced onto the per-record plane")
    single = ChaosHarness(single_scenario, seed=7).run()

    assert batched.passed and single.passed
    b, s = batched.to_dict(), single.to_dict()
    b.pop("scenario"), s.pop("scenario")
    assert b == s
