"""Timeline rendering and CSV/JSON export."""

import csv
import json
import os

import pytest

from repro.experiments.timeline import (ascii_timeline, export_result,
                                        series_to_csv)


class TestAsciiTimeline:
    def test_width_and_scaling(self):
        series = [(float(i), float(i)) for i in range(100)]
        strip = ascii_timeline(series, width=10, start=0, end=100)
        assert len(strip) == 10
        assert strip[-1] == "█"  # largest bucket saturates the scale

    def test_empty_series(self):
        assert ascii_timeline([]) == "(no data)"

    def test_empty_window(self):
        assert ascii_timeline([(1.0, 1.0)], start=5.0,
                              end=5.0) == "(empty window)"

    def test_mark_at(self):
        series = [(float(i), 1.0) for i in range(100)]
        strip = ascii_timeline(series, width=10, start=0, end=100,
                               mark_at=55.0)
        assert strip[5] == "|"

    def test_mean_vs_max_aggregate(self):
        # bucket 0 holds {0, 10}: max-normalized it ties bucket 1 (10),
        # mean-normalized (5) it renders shorter than bucket 1.
        series = [(0.2, 0.0), (0.3, 10.0), (0.7, 10.0)]
        mx = ascii_timeline(series, width=2, start=0, end=1,
                            aggregate="max")
        mean = ascii_timeline(series, width=2, start=0, end=1,
                              aggregate="mean")
        assert mx == "██"
        assert mean[0] != "█" and mean[1] == "█"

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ascii_timeline([(0.0, 1.0)], width=0)
        with pytest.raises(ValueError):
            ascii_timeline([(0.0, 1.0)], aggregate="median")


def test_series_to_csv_roundtrip(tmp_path):
    series = [(0.5, 1.25), (1.5, 2.5)]
    path = tmp_path / "s.csv"
    series_to_csv(series, str(path), header=("t", "v"))
    with open(path) as f:
        rows = list(csv.reader(f))
    assert rows[0] == ["t", "v"]
    assert float(rows[1][0]) == 0.5
    assert float(rows[2][1]) == 2.5


def test_export_result_writes_everything(tmp_path):
    import sys
    sys.path.insert(0, "tests")
    from helpers import build_keyed_job, drive
    from repro.experiments import ExperimentConfig, run_experiment
    from repro.scaling import OTFSController
    from repro.workloads import CustomConfig, CustomWorkload

    workload = CustomWorkload(CustomConfig(
        rate=2000.0, batch_size=100, num_key_groups=16,
        operator_parallelism=2, target_state_bytes=1e7,
        marker_interval=0.2))
    result = run_experiment(ExperimentConfig(
        workload=workload,
        controller_factory=lambda job: OTFSController(job),
        new_parallelism=3, warmup=4.0, post_duration=12.0,
        stabilize_hold=3.0))
    out_dir = tmp_path / "export"
    written = export_result(result, str(out_dir))
    names = {os.path.basename(p) for p in written}
    assert names == {"latency.csv", "throughput.csv", "suspension.csv",
                     "summary.json"}
    with open(out_dir / "summary.json") as f:
        summary = json.load(f)
    assert summary["controller"] == "otfs"
    assert summary["migration_duration"] > 0
    assert summary["source_records"] > 0
