"""Golden-trace and determinism regression tests for the hot-path work.

The optimized kernel and record plane must be *bit-identical* in simulated
behaviour to the pre-optimization engine: the golden documents under
``tests/golden/`` were captured at the pre-PR commit, and these tests
re-capture the same scenarios and compare the full semantic subtree for
exact equality (exact floats, exact tie order, exact ScalingMetrics).

Kernel event counts are excluded from golden equality — removing internal
bookkeeping events is allowed — but they must still be deterministic
across runs, which the determinism test checks.
"""

import json
import os

from repro.experiments.golden import capture_q7_trace

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "golden")


def _load(name):
    with open(os.path.join(GOLDEN_DIR, name)) as f:
        return json.load(f)


def test_drrs_rescale_matches_golden():
    fresh = capture_q7_trace(telemetry=True)
    committed = _load("q7_drrs_rescale.json")
    assert fresh["semantic"] == committed["semantic"]


def test_noscale_matches_golden():
    fresh = capture_q7_trace(system=None, telemetry=False)
    committed = _load("q7_noscale.json")
    assert fresh["semantic"] == committed["semantic"]


def test_determinism_rerun_and_telemetry_invariant():
    # The same DRRS-rescale scenario three ways: a fresh run, an identical
    # re-run (each job warms its own routing caches from scratch), and a
    # run with telemetry enabled.  All three must agree on every
    # observable — ScalingMetrics content, record counts, latency digests —
    # and on the kernel event count (tracing must not schedule anything).
    a = capture_q7_trace(telemetry=False)
    b = capture_q7_trace(telemetry=False)
    c = capture_q7_trace(telemetry=True)
    assert a["semantic"] == b["semantic"]
    assert a["info"]["kernel_events"] == b["info"]["kernel_events"]
    assert a["semantic"] == c["semantic"]
    assert a["info"]["kernel_events"] == c["info"]["kernel_events"]
