"""Shard-vs-single equivalence: the multi-process kernel is a pure
wall-clock optimization.

A sharded run must produce the *same simulation* as single-process: equal
sink-record multisets, keyed-state digests, watermark traces, latency
samples and per-operator counters — with the credit ledger certifying
that single-process flow control would never have engaged (the one
mechanism that could make the conservative schedule diverge).  These
tests spawn real worker processes.
"""

import os
import sys

import pytest

from repro.engine.runtime import JobConfig
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.simulation.sharded import (run_sharded, run_single_reference,
                                      supports_sharding)
from repro.workloads.nexmark import NexmarkQ7
from repro.workloads.twitch import TwitchWorkload

pytestmark = pytest.mark.skipif(
    sys.platform == "win32" or not hasattr(os, "fork"),
    reason="sharded kernel needs the fork start method")

#: Inbox capacity for shard runs (applied to the single-process reference
#: too — identical config on both sides): the engine default (32) is
#: smaller than one max-size batch, so flow control engages constantly at
#: scale and credit timing becomes consumption-dependent.
_SHARD_CONFIG = JobConfig(inbox_capacity=256)


def _both(workload_cls, *, until, shards):
    single = run_single_reference(
        workload_cls, until=until, job_config=_SHARD_CONFIG,
        collect_sinks=True, trace_watermarks=True)
    multi = run_sharded(
        workload_cls, until=until, shards=shards,
        job_config=_SHARD_CONFIG, collect_sinks=True,
        trace_watermarks=True)
    return single, multi


def _assert_equivalent(single, multi):
    assert multi.backpressure_safe, multi.backpressure_detail
    sv, mv = single.semantic_view(), multi.semantic_view()
    assert set(sv) == set(mv)
    for key in sv:
        assert mv[key] == sv[key], f"semantic_view[{key!r}] diverged"


def test_q7_two_shards_equivalent():
    single, multi = _both(NexmarkQ7, until=30.0, shards=2)
    assert multi.shards == 2
    _assert_equivalent(single, multi)
    # non-vacuous: the run really processed records end to end
    assert multi.total_sink_input() > 0
    assert multi.total_source_output() > 0
    # sink record views (payload-level, not just counts) match exactly
    assert multi.view["sinks"] == single.view["sinks"]
    # watermarks and their traces survived the cut channels bit-for-bit
    assert multi.view["watermarks"] == single.view["watermarks"]
    assert multi.view["watermark_traces"] == single.view["watermark_traces"]
    # keyed-state digests: every operator instance ended in the same state
    assert multi.view["state_digests"] == single.view["state_digests"]


def test_twitch_three_shards_equivalent():
    single, multi = _both(TwitchWorkload, until=20.0, shards=3)
    assert multi.shards >= 2
    _assert_equivalent(single, multi)
    assert multi.total_sink_input() > 0


def test_worker_cpu_accounting_present():
    _, multi = _both(NexmarkQ7, until=10.0, shards=2)
    assert len(multi.worker_cpus) == multi.shards
    assert multi.bottleneck_cpu_s > 0.0
    assert len(multi.events_per_shard) == multi.shards
    assert all(n > 0 for n in multi.events_per_shard)


def test_harness_sharded_run_matches_single():
    """run_experiment(shards=N) reproduces the single-process figures."""

    def config(shards):
        return ExperimentConfig(
            workload=NexmarkQ7(), warmup=5.0, post_duration=15.0,
            job_config=_SHARD_CONFIG, shards=shards)

    ref = run_experiment(config(1))
    shard = run_experiment(config(2))
    assert shard.source_records == ref.source_records
    assert shard.sink_records == ref.sink_records
    assert sorted(shard.latency_series) == sorted(ref.latency_series)
    assert shard.throughput_series == ref.throughput_series
    assert shard.pre_latency == ref.pre_latency
    assert shard.during_latency == ref.during_latency


def test_harness_controller_run_ignores_shards():
    """Scaling-controller runs silently degrade to single-process (the
    rescale machinery needs one global event loop)."""
    from repro.scaling.otfs import OTFSController

    result = run_experiment(ExperimentConfig(
        workload=NexmarkQ7(),
        controller_factory=lambda job: OTFSController(job),
        new_parallelism=6, warmup=5.0, post_duration=10.0, shards=4))
    assert result.controller_name != "no-scale"
    assert result.job is not None  # single-process path keeps the job


def test_supports_sharding_gate_matches_fallbacks():
    assert supports_sharding(_SHARD_CONFIG)
    assert not supports_sharding(_SHARD_CONFIG, telemetry=True)
