"""Shard-vs-single equivalence: the multi-process kernel is a pure
wall-clock optimization.

A sharded run must produce the *same simulation* as single-process: equal
sink-record multisets, keyed-state digests, watermark traces, latency
samples and per-operator counters — with the credit ledger certifying
that single-process flow control would never have engaged (the one
mechanism that could make the conservative schedule diverge).  These
tests spawn real worker processes.
"""

import os
import sys

import pytest

from repro.engine.runtime import JobConfig
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.simulation.sharded import (run_sharded, run_single_reference,
                                      supports_sharding)
from repro.workloads.nexmark import NexmarkQ7
from repro.workloads.twitch import TwitchWorkload

pytestmark = pytest.mark.skipif(
    sys.platform == "win32" or not hasattr(os, "fork"),
    reason="sharded kernel needs the fork start method")

#: Inbox capacity for shard runs (applied to the single-process reference
#: too — identical config on both sides): the engine default (32) is
#: smaller than one max-size batch, so flow control engages constantly at
#: scale and credit timing becomes consumption-dependent.
_SHARD_CONFIG = JobConfig(inbox_capacity=256)


def _both(workload_cls, *, until, shards):
    single = run_single_reference(
        workload_cls, until=until, job_config=_SHARD_CONFIG,
        collect_sinks=True, trace_watermarks=True)
    multi = run_sharded(
        workload_cls, until=until, shards=shards,
        job_config=_SHARD_CONFIG, collect_sinks=True,
        trace_watermarks=True)
    return single, multi


def _assert_equivalent(single, multi):
    assert multi.backpressure_safe, multi.backpressure_detail
    sv, mv = single.semantic_view(), multi.semantic_view()
    assert set(sv) == set(mv)
    for key in sv:
        assert mv[key] == sv[key], f"semantic_view[{key!r}] diverged"


def test_q7_two_shards_equivalent():
    single, multi = _both(NexmarkQ7, until=30.0, shards=2)
    assert multi.shards == 2
    _assert_equivalent(single, multi)
    # non-vacuous: the run really processed records end to end
    assert multi.total_sink_input() > 0
    assert multi.total_source_output() > 0
    # sink record views (payload-level, not just counts) match exactly
    assert multi.view["sinks"] == single.view["sinks"]
    # watermarks and their traces survived the cut channels bit-for-bit
    assert multi.view["watermarks"] == single.view["watermarks"]
    assert multi.view["watermark_traces"] == single.view["watermark_traces"]
    # keyed-state digests: every operator instance ended in the same state
    assert multi.view["state_digests"] == single.view["state_digests"]


def test_twitch_three_shards_equivalent():
    single, multi = _both(TwitchWorkload, until=20.0, shards=3)
    assert multi.shards >= 2
    _assert_equivalent(single, multi)
    assert multi.total_sink_input() > 0


def test_worker_cpu_accounting_present():
    _, multi = _both(NexmarkQ7, until=10.0, shards=2)
    assert len(multi.worker_cpus) == multi.shards
    assert multi.bottleneck_cpu_s > 0.0
    assert len(multi.events_per_shard) == multi.shards
    assert all(n > 0 for n in multi.events_per_shard)


def test_harness_sharded_run_matches_single():
    """run_experiment(shards=N) reproduces the single-process figures."""

    def config(shards):
        return ExperimentConfig(
            workload=NexmarkQ7(), warmup=5.0, post_duration=15.0,
            job_config=_SHARD_CONFIG, shards=shards)

    ref = run_experiment(config(1))
    shard = run_experiment(config(2))
    assert shard.source_records == ref.source_records
    assert shard.sink_records == ref.sink_records
    assert sorted(shard.latency_series) == sorted(ref.latency_series)
    assert shard.throughput_series == ref.throughput_series
    assert shard.pre_latency == ref.pre_latency
    assert shard.during_latency == ref.during_latency


def test_harness_controller_run_ignores_shards():
    """Scaling-controller runs silently degrade to single-process (the
    rescale machinery needs one global event loop)."""
    from repro.scaling.otfs import OTFSController

    result = run_experiment(ExperimentConfig(
        workload=NexmarkQ7(),
        controller_factory=lambda job: OTFSController(job),
        new_parallelism=6, warmup=5.0, post_duration=10.0, shards=4))
    assert result.controller_name != "no-scale"
    assert result.job is not None  # single-process path keeps the job


def test_supports_sharding_gate_matches_fallbacks():
    assert supports_sharding(_SHARD_CONFIG)
    assert not supports_sharding(_SHARD_CONFIG, telemetry=True)


# ---------------------------------------------------------------------------
# Transport matrix: the shm columnar data plane vs the pipe baseline
# ---------------------------------------------------------------------------

def _run_transport(workload_cls, transport, *, until, shards):
    return run_sharded(
        workload_cls, until=until, shards=shards,
        job_config=_SHARD_CONFIG, collect_sinks=True,
        trace_watermarks=True, transport=transport)


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_transport_equivalent_to_single(transport):
    single = run_single_reference(
        NexmarkQ7, until=25.0, job_config=_SHARD_CONFIG,
        collect_sinks=True, trace_watermarks=True)
    multi = _run_transport(NexmarkQ7, transport, until=25.0, shards=2)
    assert multi.transport == transport
    _assert_equivalent(single, multi)
    assert multi.view["sinks"] == single.view["sinks"]
    assert multi.view["watermark_traces"] == single.view["watermark_traces"]


def test_pipe_and_shm_agree_on_seeded_twitch():
    """The ISSUE's equivalence bar: a seeded, chaos-free Twitch run is
    byte-identical across transports (sinks, digests, watermarks)."""
    pipe = _run_transport(TwitchWorkload, "pipe", until=15.0, shards=3)
    shm = _run_transport(TwitchWorkload, "shm", until=15.0, shards=3)
    assert pipe.backpressure_safe and shm.backpressure_safe
    pv, sv = pipe.semantic_view(), shm.semantic_view()
    assert set(pv) == set(sv)
    for key in pv:
        assert sv[key] == pv[key], f"semantic_view[{key!r}] diverged"
    assert shm.view["sinks"] == pipe.view["sinks"]
    assert shm.view["state_digests"] == pipe.view["state_digests"]
    assert shm.view["watermark_traces"] == pipe.view["watermark_traces"]


def test_sync_counters_present_and_directional():
    """The shm protocol must demonstrably do *less* synchronization work
    than the pipe baseline on the same run: fewer frames (adaptive
    quantum merges rounds) and no more bare nulls than the pipe's
    eager-null count."""
    pipe = _run_transport(NexmarkQ7, "pipe", until=25.0, shards=2)
    shm = _run_transport(NexmarkQ7, "shm", until=25.0, shards=2)
    pt, st = pipe.sync_totals(), shm.sync_totals()
    assert pt["transport"] == "pipe" and st["transport"] == "shm"
    for totals in (pt, st):
        assert totals["grant_rounds"] > 0
        assert totals["frames_sent"] > 0
        assert totals["msgs_sent"] > 0
        assert totals["bytes_shipped"] > 0
    # identical cut-edge message stream on both transports
    assert st["msgs_sent"] == pt["msgs_sent"]
    # adaptive quantum: strictly fewer synchronization rounds and frames
    assert st["grant_rounds"] < pt["grant_rounds"]
    assert st["frames_sent"] < pt["frames_sent"]
    # demand-driven nulls never exceed the eager baseline
    assert st["null_sent"] <= pt["null_sent"] + pt["null_suppressed"]
    # per-shard breakdown matches the worker count
    assert len(shm.sync_per_shard) == shm.shards
    for sync in shm.sync_per_shard:
        assert sync["transport"] == "shm"
        assert sync["quantum_final"] >= sync["quantum_initial"]


def test_auto_transport_resolves_to_shm():
    multi = _run_transport(NexmarkQ7, None, until=10.0, shards=2)
    assert multi.transport == "shm"
    multi = run_sharded(
        NexmarkQ7, until=10.0, shards=2,
        job_config=JobConfig(inbox_capacity=256, shard_transport="pipe"),
        collect_sinks=True)
    assert multi.transport == "pipe"


def test_oversized_frames_spill_through_the_pipe():
    """A ring far smaller than one flush forces the spill path; results
    must still be exact."""
    single = run_single_reference(
        NexmarkQ7, until=15.0, job_config=_SHARD_CONFIG,
        collect_sinks=True, trace_watermarks=True)
    multi = run_sharded(
        NexmarkQ7, until=15.0, shards=2, job_config=_SHARD_CONFIG,
        collect_sinks=True, trace_watermarks=True, transport="shm",
        ring_bytes=4096)
    assert multi.sync_totals()["spills"] > 0
    _assert_equivalent(single, multi)


def test_harness_shard_knobs_plumb_through():
    """ExperimentConfig.shard_transport/shard_inbox_capacity reach the
    sharded run and still reproduce the single-process figures."""

    def config(shards, **kw):
        return ExperimentConfig(
            workload=NexmarkQ7(), warmup=5.0, post_duration=10.0,
            shards=shards, **kw)

    # the reference runs at the same effective config the shard knobs
    # produce (shard_inbox_capacity becomes the engine-wide inbox)
    ref = run_experiment(config(1, job_config=JobConfig(
        inbox_capacity=256)))
    shard = run_experiment(config(2, shard_transport="shm",
                                  shard_inbox_capacity=256))
    assert shard.source_records == ref.source_records
    assert shard.sink_records == ref.sink_records
    assert sorted(shard.latency_series) == sorted(ref.latency_series)
    with pytest.raises(ValueError, match="shard_transport"):
        ExperimentConfig(workload=NexmarkQ7(), shard_transport="telegraph")
    with pytest.raises(ValueError, match="shard_inbox_capacity"):
        ExperimentConfig(workload=NexmarkQ7(), shard_inbox_capacity=0)
