"""Scheduler × record-plane matrix: one semantic truth, four executions.

The calendar-queue scheduler and the columnar plane are both pure
wall-clock optimizations, so every combination of
``scheduler ∈ {heap, calendar}`` × ``record_plane ∈ {batched, columnar}``
(plus the per-record reference) must reproduce the same golden semantic
subtree and the same chaos invariant reports bit-for-bit.
"""

import pytest

from repro.engine.runtime import JobConfig
from repro.experiments.chaos_bank import CHAOS_SCENARIOS, _crash_mid_subscale
from repro.experiments.golden import capture_q7_trace
from repro.faults.chaos import ChaosHarness, ChaosScenario

COMBOS = [("heap", "batched"), ("heap", "columnar"),
          ("calendar", "batched"), ("calendar", "columnar")]


def test_q7_rescale_identical_across_scheduler_plane_matrix():
    reference = capture_q7_trace(record_plane="single", scheduler="heap")
    for scheduler, plane in COMBOS:
        trace = capture_q7_trace(record_plane=plane, scheduler=scheduler)
        assert trace["info"]["scheduler"] == scheduler
        assert trace["info"]["record_plane"] == plane
        assert trace["semantic"] == reference["semantic"], \
            f"semantic drift under scheduler={scheduler}, plane={plane}"


def test_q7_noscale_identical_across_scheduler_plane_matrix():
    reference = capture_q7_trace(system=None, record_plane="single",
                                 scheduler="heap")
    for scheduler, plane in COMBOS:
        trace = capture_q7_trace(system=None, record_plane=plane,
                                 scheduler=scheduler)
        assert trace["semantic"] == reference["semantic"], \
            f"semantic drift under scheduler={scheduler}, plane={plane}"


@pytest.mark.parametrize("plane", ["batched", "columnar"])
def test_chaos_crash_mid_subscale_identical_under_calendar(plane):
    """The §IV-C acceptance scenario: calendar × plane vs the heap run.

    Fault windows force the plane to collapse to per-record eventing, so
    this exercises the explode path under the calendar scheduler too.
    """
    reference = ChaosHarness(CHAOS_SCENARIOS["crash-mid-subscale"],
                             seed=7).run()
    scenario = ChaosScenario(
        f"crash-mid-subscale-calendar-{plane}",
        lambda seed: _crash_mid_subscale(
            seed, job_config=JobConfig(record_plane=plane,
                                       scheduler="calendar")),
        "crash-mid-subscale under the calendar-queue scheduler")
    run = ChaosHarness(scenario, seed=7).run()
    assert reference.passed and run.passed
    ref_doc, doc = reference.to_dict(), run.to_dict()
    ref_doc.pop("scenario"), doc.pop("scenario")
    assert doc == ref_doc
