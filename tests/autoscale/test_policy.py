"""Policy unit tests: hysteresis, hold, cooldown, bounds, forecasting."""

import pytest

from repro.autoscale import (PredictivePolicy, QueueDepthPolicy,
                             SignalSnapshot, UtilizationThresholdPolicy,
                             make_policy)


def snap(t, parallelism, busy_max=0.0, busy_mean=None, queue_depth=0,
         backlog=0, rate=0.0):
    """A fabricated snapshot whose smoothed values equal the raw ones."""
    if busy_mean is None:
        busy_mean = busy_max
    s = SignalSnapshot(
        time=t, operator="agg", parallelism=parallelism,
        busy_max=busy_max, busy_mean=busy_mean, queue_depth=queue_depth,
        admission_backlog=backlog, source_rate=rate)
    s.ewma = {"busy_max": busy_max, "busy_mean": busy_mean,
              "queue_depth": float(queue_depth), "watermark_lag": 0.0,
              "source_rate": rate}
    return s


# -- base validation ----------------------------------------------------------


def test_base_rejects_bad_bounds():
    with pytest.raises(ValueError):
        UtilizationThresholdPolicy(min_parallelism=0)
    with pytest.raises(ValueError):
        UtilizationThresholdPolicy(min_parallelism=4, max_parallelism=2)
    with pytest.raises(ValueError):
        UtilizationThresholdPolicy(hold_ticks=0)


def test_utilization_rejects_bad_thresholds():
    with pytest.raises(ValueError):
        UtilizationThresholdPolicy(high=0.5, low=0.6, target=0.55)
    with pytest.raises(ValueError):
        UtilizationThresholdPolicy(metric="median")


def test_cooldown_in_defaults_to_double():
    p = UtilizationThresholdPolicy(cooldown=10.0)
    assert p.cooldown_in == 20.0


# -- utilization policy -------------------------------------------------------


def test_hold_ticks_suppress_single_sample_noise():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=2, cooldown=0.0)
    assert p.decide(snap(1.0, 4, busy_max=0.95), []) is None      # 1 tick
    d = p.decide(snap(2.0, 4, busy_max=0.95), [])                 # 2 ticks
    assert d is not None and d.kind == "scale-out"


def test_scale_out_sizes_proportionally():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=1, cooldown=0.0,
                                   max_parallelism=64)
    d = p.decide(snap(1.0, 4, busy_max=0.9), [])
    # ceil(4 * 0.9 / 0.6) = 6
    assert d.target == 6


def test_scale_in_after_sustained_idle():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=2, cooldown=0.0,
                                   cooldown_in=0.0, min_parallelism=1)
    p.decide(snap(1.0, 8, busy_max=0.1), [])
    d = p.decide(snap(2.0, 8, busy_max=0.1), [])
    assert d is not None and d.kind == "scale-in"
    assert d.target == 2  # ceil(8 * 0.1 / 0.6)


def test_mixed_signals_reset_hold_counters():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=2, cooldown=0.0)
    p.decide(snap(1.0, 4, busy_max=0.95), [])
    p.decide(snap(2.0, 4, busy_max=0.5), [])   # back in the deadband
    assert p.decide(snap(3.0, 4, busy_max=0.95), []) is None


def test_cooldown_blocks_back_to_back_decisions():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=1, cooldown=30.0)
    d = p.decide(snap(1.0, 4, busy_max=0.95), [])
    assert d is not None
    p.note_applied(2.0, d.target)
    assert p.decide(snap(3.0, 6, busy_max=0.95), []) is None     # cooling
    assert p.decide(snap(40.0, 6, busy_max=0.95), []) is not None


def test_clamps_to_max_parallelism():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   hold_ticks=1, cooldown=0.0,
                                   max_parallelism=5)
    d = p.decide(snap(1.0, 4, busy_max=1.0), [])
    assert d.target == 5
    assert p.decide(snap(2.0, 5, busy_max=1.0), []) is None  # at the cap


def test_mean_metric_controls_on_mean():
    p = UtilizationThresholdPolicy(high=0.8, low=0.3, target=0.6,
                                   metric="mean", hold_ticks=1,
                                   cooldown=0.0)
    # hot max but modest mean: the mean-metric policy stays put
    assert p.decide(snap(1.0, 4, busy_max=0.95, busy_mean=0.5), []) is None


# -- queue-depth policy -------------------------------------------------------


def test_queue_depth_scale_out_caps_at_doubling():
    p = QueueDepthPolicy(high_depth=10.0, low_depth=1.0, hold_ticks=1,
                         cooldown=0.0, max_parallelism=64)
    d = p.decide(snap(1.0, 4, queue_depth=400), [])
    assert d is not None and d.kind == "scale-out"
    assert d.target == 8  # overflow 10x, bounded to 2 * current


def test_queue_depth_scale_in_waits_for_empty_backlog():
    p = QueueDepthPolicy(high_depth=10.0, low_depth=1.0, hold_ticks=1,
                         cooldown=0.0, cooldown_in=0.0, min_parallelism=1)
    # Pressure is below the low-water mark, but draining backlog blocks it.
    assert p.decide(snap(1.0, 4, queue_depth=0, backlog=2), []) is None
    d = p.decide(snap(2.0, 4, queue_depth=0, backlog=0), [])
    assert d is not None and d.kind == "scale-in" and d.target == 3


# -- predictive policy --------------------------------------------------------


def _feed(policy, snapshots):
    """Feed snapshots through decide() the way the controller does."""
    history, decisions = [], []
    for s in snapshots:
        history.append(s)
        decisions.append(policy.decide(s, list(history)))
    return decisions


def test_predictive_scales_ahead_of_a_ramp():
    p = PredictivePolicy(target=0.6, high=0.8, low=0.3, lead_time=10.0,
                         fit_samples=3, hold_ticks=2, cooldown=0.0,
                         max_parallelism=64)
    # Rising rate, busy still moderate: reactive would not fire yet, the
    # trend should.  busy_mean 0.5 at p=4 and 1000 rec/s calibrates
    # work/record to ~2 ms.
    ramp = [snap(t, 4, busy_max=0.55, busy_mean=0.5,
                 rate=1000.0 + 200.0 * i)
            for i, t in enumerate((0.0, 2.0, 4.0, 6.0, 8.0))]
    decisions = _feed(p, ramp)
    fired = [d for d in decisions if d is not None]
    assert fired, "trend never triggered a pre-scale"
    assert fired[0].kind == "scale-out"
    assert fired[0].target > 4
    assert "forecast" in fired[0].reason


def test_predictive_vetoes_scale_in_during_rising_trend():
    p = PredictivePolicy(target=0.6, high=0.8, low=0.3, lead_time=10.0,
                         fit_samples=3, hold_ticks=1, cooldown=0.0,
                         cooldown_in=0.0, max_parallelism=8)
    # Saturate the clamp so forecast scale-out cannot fire (target == 8),
    # while low busy makes the reactive fallback want to scale in: the
    # rising trend must veto it.
    ramp = [snap(t, 8, busy_max=0.1, busy_mean=0.1,
                 rate=1000.0 + 400.0 * i)
            for i, t in enumerate((0.0, 2.0, 4.0, 6.0, 8.0))]
    decisions = _feed(p, ramp)
    assert all(d is None for d in decisions[2:]), \
        "scale-in fired into a rising trend"


def test_predictive_flat_trend_falls_back_to_reactive():
    p = PredictivePolicy(target=0.6, high=0.8, low=0.3, lead_time=10.0,
                         fit_samples=3, hold_ticks=1, cooldown=0.0)
    flat = [snap(t, 4, busy_max=0.95, busy_mean=0.9, rate=1000.0)
            for t in (0.0, 2.0, 4.0, 6.0)]
    decisions = _feed(p, flat)
    fired = [d for d in decisions if d is not None]
    assert fired and fired[0].kind == "scale-out"
    assert fired[0].reason.startswith("reactive-fallback:")


def test_predictive_validates_parameters():
    with pytest.raises(ValueError):
        PredictivePolicy(fit_samples=1)
    with pytest.raises(ValueError):
        PredictivePolicy(high=0.5, low=0.6, target=0.55)


# -- factory ------------------------------------------------------------------


def test_make_policy_round_trip():
    assert make_policy("utilization").name == "utilization"
    assert make_policy("queue-depth").name == "queue-depth"
    assert make_policy("predictive").name == "predictive"
    with pytest.raises(ValueError):
        make_policy("oracle")
