"""ScalingSignals and EwmaWindow: sampling semantics and smoothing."""

import pytest

from repro.autoscale import EwmaWindow, ScalingSignals
from tests.helpers import build_keyed_job, drive


# -- EwmaWindow ---------------------------------------------------------------


def test_ewma_seeds_with_first_sample():
    w = EwmaWindow(size=4, alpha=0.5)
    assert w.push(10.0) == 10.0
    assert w.ewma == 10.0


def test_ewma_moves_toward_new_samples():
    w = EwmaWindow(size=4, alpha=0.5)
    w.push(0.0)
    assert w.push(10.0) == 5.0
    assert w.push(10.0) == 7.5


def test_window_rolls_and_aggregates():
    w = EwmaWindow(size=3, alpha=0.4)
    for v in (1.0, 2.0, 3.0, 4.0):
        w.push(v)
    assert w.samples == [2.0, 3.0, 4.0]
    assert w.full
    assert w.mean == pytest.approx(3.0)
    assert w.latest == 4.0
    assert w.count_above(2.5) == 2
    assert w.count_below(2.5) == 1


def test_window_validates_parameters():
    with pytest.raises(ValueError):
        EwmaWindow(size=0)
    with pytest.raises(ValueError):
        EwmaWindow(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaWindow(alpha=1.5)


# -- ScalingSignals -----------------------------------------------------------


def test_unknown_operator_rejected():
    job = build_keyed_job()
    with pytest.raises(ValueError):
        ScalingSignals(job, "nope")


def test_first_sample_reports_zero_rates():
    job = drive(build_keyed_job(), until=2.0)
    signals = ScalingSignals(job, "agg")
    job.run(until=1.0)
    snap = signals.sample()
    # No previous cursor: rates and busy fractions are zero by contract.
    assert snap.busy_max == 0.0
    assert snap.source_rate == 0.0
    assert snap.parallelism == 2


def test_sampling_reads_live_load():
    job = drive(build_keyed_job(), until=5.0)
    signals = ScalingSignals(job, "agg")
    snaps = []

    def sampler():
        while job.sim.now < 4.0:
            yield job.sim.timeout(0.5)
            snaps.append(signals.sample())

    job.sim.spawn(sampler(), name="sampler")
    job.run(until=4.5)
    warm = snaps[2:]
    assert all(0.0 <= s.busy_max <= 1.0 for s in warm)
    assert any(s.source_rate > 0 for s in warm)
    assert all(s.ewma["source_rate"] >= 0 for s in warm)
    # busy is keyed by stable instance name, sorted.
    assert list(warm[-1].busy_by_instance) == sorted(
        warm[-1].busy_by_instance)


def test_history_limit_trims():
    job = drive(build_keyed_job(), until=3.0)
    signals = ScalingSignals(job, "agg", history_limit=5)

    def sampler():
        while job.sim.now < 2.5:
            yield job.sim.timeout(0.1)
            signals.sample()

    job.sim.spawn(sampler(), name="sampler")
    job.run(until=3.0)
    assert len(signals.history) == 5


def test_snapshot_to_dict_is_json_safe():
    import json

    job = drive(build_keyed_job(), until=2.0)
    signals = ScalingSignals(job, "agg")
    job.run(until=1.0)
    doc = signals.sample().to_dict()
    json.dumps(doc)
    assert doc["parallelism"] == 2
    assert "ewma" in doc
