"""AutoscaleController: closed-loop behaviour, determinism, arbitration."""

import json

from repro.autoscale import (AutoscaleController, AutoscalePolicy,
                             ScalingDecision, ScalingSignals,
                             UtilizationThresholdPolicy)
from repro.core.drrs import DRRSController
from repro.engine import (JobGraph, KeyedReduceLogic, OperatorSpec,
                          Partitioning, Record, StreamJob, Watermark)
from tests.helpers import build_keyed_job, drive


def _ramp_job():
    """A small job whose source rate ramps up then back down."""
    graph = JobGraph("ramp", num_key_groups=16)
    graph.add_source("src", parallelism=1, service_time=5e-5)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=2e-3, keyed=True))
    graph.add_sink("sink")
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()
    job.enable_telemetry()

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < 46.0:
            t = job.sim.now
            rate = 1400.0 if 10.0 <= t <= 28.0 else 400.0
            src.offer(Record(key=f"k{i % 24}", event_time=t, count=1))
            if i % 50 == 0:
                src.offer(Watermark(timestamp=t))
            i += 1
            yield job.sim.timeout(1.0 / rate)

    job.sim.spawn(gen(), name="driver")
    return job


def _run_ramp():
    job = _ramp_job()
    drrs = DRRSController(job)
    policy = UtilizationThresholdPolicy(
        high=0.8, low=0.35, target=0.6, min_parallelism=1,
        max_parallelism=8, cooldown=6.0, cooldown_in=8.0, hold_ticks=2,
        min_samples=4)
    auto = AutoscaleController(job, drrs, "agg", policy,
                               signals=ScalingSignals(job, "agg"),
                               interval=2.0, warmup=2.0)
    auto.start()
    job.run(until=50.0)
    return auto.summary()


def test_closed_loop_scales_out_and_back_deterministically():
    s1 = _run_ramp()
    s2 = _run_ramp()
    # The decision log is a pure function of the seeded simulation.
    assert json.dumps(s1, sort_keys=True) == json.dumps(s2, sort_keys=True)
    kinds = [d["kind"] for d in s1["decisions"] if d["event"] == "decide"]
    assert "scale-out" in kinds
    assert "scale-in" in kinds
    assert s1["rescales_failed"] == 0
    assert s1["rescales_completed"] == s1["rescales_issued"]
    assert s1["instance_seconds"] > 0
    # Every decide settles (complete/failed) before the next decide: the
    # controller never stacks its own subscales.
    open_op = False
    for entry in s1["decisions"]:
        if entry["event"] == "decide":
            assert not open_op, "decide while a rescale was in flight"
            open_op = True
        elif entry["event"] in ("complete", "failed"):
            open_op = False


class OneShotPolicy(AutoscalePolicy):
    """Wants parallelism 6 exactly once, then stays quiet forever."""

    name = "one-shot"

    def __init__(self):
        super().__init__(max_parallelism=8, cooldown=0.0, hold_ticks=1,
                         min_samples=0)
        self._fired = False

    def decide(self, snapshot, history):
        if self._fired:
            return None
        self._fired = True
        return ScalingDecision(6, "scale-out", "one-shot test decision")


def test_defers_and_coalesces_while_another_scaler_is_active():
    job = drive(build_keyed_job(), until=8.0)
    drrs = DRRSController(job)
    auto = AutoscaleController(job, drrs, "agg", OneShotPolicy(),
                               interval=0.5, warmup=0.0)
    auto.start()

    def manual():
        # A competing, manually triggered rescale owns the plane first.
        yield job.sim.timeout(0.25)
        done = drrs.request_rescale("agg", 3)
        yield done

    job.sim.spawn(manual(), name="manual-rescale")
    job.run(until=10.0)
    log = auto.decision_log()

    defers = [e for e in log if e["event"] == "defer"]
    assert defers, "no deferral logged while the manual rescale ran"
    assert defers[0]["reason"] == "other-scaler-active"
    assert defers[0]["target"] == 6
    assert auto.decisions_deferred >= 1

    decides = [e for e in log if e["event"] == "decide"]
    assert len(decides) == 1
    assert decides[0]["why"].startswith("coalesced: ")
    assert decides[0]["target"] == 6
    assert decides[0]["from"] == 3  # issued after the manual 2 -> 3 landed
    assert auto.rescales_completed == 1
    assert len(job.instances("agg")) == 6
