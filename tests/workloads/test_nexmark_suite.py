"""The wider NEXMark suite (Q1-Q6): topology, results, rescalability."""

import sys

import pytest

sys.path.insert(0, "tests")
from helpers import assert_assignment_consistent  # noqa: E402

from repro.core.drrs import DRRSController
from repro.workloads.nexmark_suite import (QUERIES, NexmarkQ1, NexmarkQ3,
                                           NexmarkQ5, NexmarkSuiteConfig)


def small_config(**overrides):
    defaults = dict(rate=2000.0, batch_size=100, num_key_groups=16,
                    operator_parallelism=2, num_keys=100,
                    window_size=4.0, window_slide=2.0,
                    operator_service=2e-5)
    defaults.update(overrides)
    return NexmarkSuiteConfig(**defaults)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_builds_and_validates(name):
    workload = QUERIES[name](small_config())
    graph = workload.build_graph()
    graph.validate()
    assert graph.sources()
    assert graph.sinks()


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_runs_and_produces_output(name):
    workload = QUERIES[name](small_config())
    job = workload.build()
    job.run(until=15.0)
    assert job.metrics.total_source_output() > 0
    assert job.metrics.total_sink_input() > 0, f"{name} produced nothing"


def test_q1_converts_prices():
    from repro.engine.operators import SinkLogic

    workload = NexmarkQ1(small_config())
    graph = workload.build_graph()
    # swap in a collecting sink
    graph.operators["sink"].logic_factory = lambda: SinkLogic(collect=True)
    from repro.engine import StreamJob
    job = StreamJob(graph).build()
    for generator in workload.generators(job):
        job.sim.spawn(generator)
    job.run(until=5.0)
    sink = job.sink_logic()
    assert sink.collected
    for record in sink.collected[:20]:
        tag, _auction, price = record.value
        assert tag == "bid-eur"
        assert price == pytest.approx(price)  # converted float


def test_q2_thins_stream_by_selectivity():
    workload = QUERIES["q2"](small_config(q2_selectivity=0.1))
    job = workload.build()
    job.run(until=20.0)
    generated = job.metrics.total_source_output()
    delivered = job.metrics.total_sink_input()
    assert delivered < generated * 0.2
    assert delivered > 0


def test_q3_join_produces_matches():
    workload = NexmarkQ3(small_config())
    job = workload.build()
    job.run(until=20.0)
    assert job.metrics.total_sink_input() > 0


def test_q5_hot_items_window_counts():
    workload = NexmarkQ5(small_config())
    job = workload.build()
    job.run(until=20.0)
    # window fires produce per-group counts flowing into the argmax
    argmax = job.instances("q5-argmax")[0]
    assert argmax.records_processed > 0


@pytest.mark.parametrize("name", ["q3", "q4", "q5", "q6"])
def test_stateful_queries_rescale_with_drrs(name):
    workload = QUERIES[name](small_config())
    assert workload.scaling_operator
    job = workload.build()
    job.run(until=5.0)
    controller = DRRSController(job)
    done = controller.request_rescale(workload.scaling_operator, 3)
    job.run(until=40.0)
    assert done.triggered, f"{name} rescale did not finish"
    assert_assignment_consistent(job, workload.scaling_operator)


def test_stateless_queries_declare_no_scaling_operator():
    assert NexmarkQ1(small_config()).scaling_operator == ""
    assert QUERIES["q2"](small_config()).scaling_operator == ""
