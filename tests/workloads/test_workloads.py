"""Workload construction and steady-state behaviour."""

import pytest

from repro.experiments.scenarios import QUICK, make_workload
from repro.workloads import (CustomConfig, CustomWorkload, NexmarkConfig,
                             NexmarkQ7, NexmarkQ8, TwitchConfig,
                             TwitchWorkload, WorkloadConfig)


class TestConfigs:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            WorkloadConfig(rate=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            WorkloadConfig(batch_size=0)

    def test_rejects_negative_skew(self):
        with pytest.raises(ValueError):
            WorkloadConfig(skew=-1.0)


class TestGraphShapes:
    def test_q7_topology(self):
        graph = NexmarkQ7().build_graph()
        graph.validate()
        assert set(graph.operators) == {"bids-source", "q7-window",
                                        "q7-sink"}
        assert graph.operators["q7-window"].keyed

    def test_q8_topology_has_two_sources(self):
        graph = NexmarkQ8().build_graph()
        graph.validate()
        assert len(graph.sources()) == 2
        assert graph.upstream_of("q8-join") == ["persons-source",
                                                "auctions-source"]

    def test_twitch_topology_is_seven_operators(self):
        graph = TwitchWorkload().build_graph()
        graph.validate()
        assert len(graph.operators) == 7

    def test_custom_topology_is_three_operators(self):
        graph = CustomWorkload().build_graph()
        graph.validate()
        assert len(graph.operators) == 3


class TestSteadyState:
    def test_q7_reaches_paper_state_size(self):
        """Q7 window state approaches ~800 MB at the default rate (§V-B)."""
        workload = NexmarkQ7(NexmarkConfig(batch_size=200))
        job = workload.build()
        job.run(until=25.0)
        state = job.total_state_bytes("q7-window")
        assert 4e8 < state < 1.6e9

    def test_twitch_reaches_paper_state_size(self):
        """Twitch loyalty state reaches ~500 MB at scale time (§V-A)."""
        workload = TwitchWorkload(TwitchConfig(batch_size=200))
        job = workload.build()
        job.run(until=30.0)
        state = job.total_state_bytes("loyalty")
        assert 2e8 < state < 1.2e9

    def test_custom_state_floor_is_configurable(self):
        config = CustomConfig(target_state_bytes=1e9, batch_size=200)
        job = CustomWorkload(config).build()
        assert job.total_state_bytes("aggregator") == pytest.approx(1e9)

    def test_custom_rate_is_honoured(self):
        config = CustomConfig(rate=2000.0, batch_size=100)
        job = CustomWorkload(config).build()
        job.run(until=20.0)
        produced = job.metrics.total_source_output(start=5.0, end=20.0)
        assert produced == pytest.approx(2000.0 * 15.0, rel=0.1)

    def test_latency_markers_flow(self):
        job = CustomWorkload(CustomConfig(batch_size=100)).build()
        job.run(until=10.0)
        assert job.metrics.latency_stats()["count"] > 10

    def test_duration_bounds_generation(self):
        config = CustomConfig(rate=2000.0, batch_size=100, duration=3.0)
        job = CustomWorkload(config).build()
        job.run(until=20.0)
        late = job.metrics.total_source_output(start=5.0)
        assert late == 0

    def test_twitch_skew_concentrates_traffic(self):
        job = TwitchWorkload(TwitchConfig(batch_size=200)).build()
        job.run(until=20.0)
        loads = sorted((i.records_processed
                        for i in job.instances("loyalty")), reverse=True)
        assert loads[0] > loads[-1] * 1.3  # hot channels exist


class TestScenarioFactory:
    @pytest.mark.parametrize("kind", ["q7", "q8", "twitch", "custom"])
    def test_make_workload_builds(self, kind):
        workload = make_workload(kind, QUICK)
        job = workload.build()
        job.run(until=2.0)
        assert job.metrics.total_source_output() > 0

    def test_make_workload_overrides(self):
        workload = make_workload("custom", QUICK, rate=123.0, skew=1.5)
        assert workload.config.rate == 123.0
        assert workload.config.skew == 1.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_workload("nope", QUICK)
