"""Command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "drrs" in out and "twitch" in out


def test_every_figure_is_registered():
    assert set(FIGURES) == {"fig02", "fig10", "fig11", "fig12", "fig13",
                            "fig14", "fig15"}


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig99"])


def test_parser_rejects_unknown_scale():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig10", "--scale", "huge"])


def test_workload_command_runs(capsys):
    assert main(["workload", "custom", "--until", "5"]) == 0
    out = capsys.readouterr().out
    assert "records generated" in out
    assert "custom steady state" in out


def test_run_command_no_scale(capsys):
    assert main(["run", "custom", "--system", "no-scale"]) == 0
    out = capsys.readouterr().out
    assert "no-scale" in out


def test_run_new_parallelism_takes_effect():
    from repro.experiments.figures import _run_one
    from repro.experiments.scenarios import QUICK
    result = _run_one("custom", "drrs", QUICK, new_parallelism=5)
    assert len(result.job.instances("aggregator")) == 5
    assert result.scaling_metrics is not None


def test_run_command_passes_new_parallelism(capsys, monkeypatch):
    import repro.cli as cli
    captured = {}
    real = cli._run_one

    def spy(kind, system, scenario, **kwargs):
        captured.update(kind=kind, system=system, **kwargs)
        return real(kind, system, scenario, **kwargs)

    monkeypatch.setattr(cli, "_run_one", spy)
    assert main(["run", "custom", "--system", "drrs",
                 "--new-parallelism", "5"]) == 0
    assert captured["new_parallelism"] == 5
    assert "drrs" in capsys.readouterr().out


def test_workload_json(capsys):
    import json
    assert main(["workload", "custom", "--until", "5",
                 "--inspect", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "custom"
    assert "records generated" in doc["summary"]
    assert isinstance(doc["operators"], list)
    assert {"operator", "parallelism"} <= set(doc["operators"][0])


def test_figure_json(tmp_path, capsys, monkeypatch):
    import json
    import repro.cli as cli

    def stub_runner(scenario):
        return {"ratios": {"otfs": {"avg_ratio": 2.0, "peak_ratio": 3.0},
                           "unbound": {"avg_ratio": 1.0,
                                       "peak_ratio": 1.0}}}

    monkeypatch.setitem(cli.FIGURES, "fig02",
                        (stub_runner, cli.FIGURES["fig02"][1]))
    target = tmp_path / "fig02.json"
    assert main(["figure", "fig02", "--json",
                 "--output", str(target)]) == 0
    doc = json.loads(capsys.readouterr().out.split("[saved")[0])
    assert doc["figure"] == "fig02"
    assert doc["data"]["ratios"]["otfs"]["avg_ratio"] == 2.0
    assert json.loads(target.read_text())["figure"] == "fig02"


def test_trace_command(tmp_path, capsys):
    import json
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    assert main(["trace", "custom", "--output", str(trace),
                 "--jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "Migration phase breakdown" in out
    assert "Subscale waves" in out
    doc = json.loads(trace.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"rescale", "decouple", "state-transfer",
            "signal.injected"} <= names
    assert jsonl.exists()
    first = json.loads(jsonl.read_text().splitlines()[0])
    assert first["kind"] in ("span", "instant")


@pytest.mark.parametrize("command", ["bench", "chaos", "autoscale"])
def test_check_commands_document_exit_contract(command, capsys):
    # The exit-status contract is part of each check-style command's
    # --help (0 = pass, 1 = check failure, 2 = usage error).
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "exit status:" in out
    assert "usage error" in out


def test_autoscale_rejects_unknown_policy_as_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["autoscale", "--policy", "clairvoyant"])
    assert excinfo.value.code == 2


def test_autoscale_single_policy_json_and_check(tmp_path, capsys):
    target = tmp_path / "report.json"
    import json
    assert main(["autoscale", "--policy", "reactive", "--scale", "smoke",
                 "--json", "--check", "--output", str(target)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["policy"] == "reactive"
    assert doc["attainment"] >= 0.9
    assert doc["rescales"] >= 1
    assert json.loads(target.read_text()) == doc


def test_figure_output_file(tmp_path, capsys, monkeypatch):
    # Patch the fig02 runner with a stub so the test stays fast.
    import repro.cli as cli
    called = {}

    def stub_runner(scenario):
        called["scenario"] = scenario
        return {"ratios": {"otfs": {"avg_ratio": 2.0, "peak_ratio": 3.0},
                           "unbound": {"avg_ratio": 1.0,
                                       "peak_ratio": 1.0}}}

    monkeypatch.setitem(cli.FIGURES, "fig02",
                        (stub_runner, cli.FIGURES["fig02"][1]))
    target = tmp_path / "fig02.txt"
    assert main(["figure", "fig02", "--output", str(target)]) == 0
    assert target.exists()
    assert "otfs" in target.read_text()
    assert called["scenario"].name == "quick"
