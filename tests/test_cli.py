"""Command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "drrs" in out and "twitch" in out


def test_every_figure_is_registered():
    assert set(FIGURES) == {"fig02", "fig10", "fig11", "fig12", "fig13",
                            "fig14", "fig15"}


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig99"])


def test_parser_rejects_unknown_scale():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure", "fig10", "--scale", "huge"])


def test_workload_command_runs(capsys):
    assert main(["workload", "custom", "--until", "5"]) == 0
    out = capsys.readouterr().out
    assert "records generated" in out
    assert "custom steady state" in out


def test_run_command_no_scale(capsys):
    assert main(["run", "custom", "--system", "no-scale"]) == 0
    out = capsys.readouterr().out
    assert "no-scale" in out


def test_figure_output_file(tmp_path, capsys, monkeypatch):
    # Patch the fig02 runner with a stub so the test stays fast.
    import repro.cli as cli
    called = {}

    def stub_runner(scenario):
        called["scenario"] = scenario
        return {"ratios": {"otfs": {"avg_ratio": 2.0, "peak_ratio": 3.0},
                           "unbound": {"avg_ratio": 1.0,
                                       "peak_ratio": 1.0}}}

    monkeypatch.setitem(cli.FIGURES, "fig02",
                        (stub_runner, cli.FIGURES["fig02"][1]))
    target = tmp_path / "fig02.txt"
    assert main(["figure", "fig02", "--output", str(target)]) == 0
    assert target.exists()
    assert "otfs" in target.read_text()
    assert called["scenario"].name == "quick"
