#!/usr/bin/env python3
"""The seven-operator Twitch loyalty pipeline with an on-the-fly rescale.

Runs the synthetic Twitch engagement workload (§V-A: Zipf channel
popularity, session structure, ~4 K events/s) through
source → parse → filter → enrich → session → loyalty-window → sink,
rescales the loyalty operator 8 → 12 with DRRS, and renders the end-to-end
latency timeline as an ASCII strip so the scaling disturbance is visible.

Run:  python examples/twitch_loyalty_pipeline.py
"""

from repro import DRRSController
from repro.experiments.timeline import ascii_timeline
from repro.workloads import TwitchConfig, TwitchWorkload


def main():
    config = TwitchConfig(batch_size=100)
    workload = TwitchWorkload(config)
    job = workload.build()

    print("warm-up: feeding the loyalty pipeline for 30 simulated seconds...")
    job.run(until=30.0)
    state_mb = job.total_state_bytes("loyalty") / 1e6
    print(f"  loyalty-window state at scale time: {state_mb:.0f} MB "
          f"(paper: ~500 MB)")

    controller = DRRSController(job)
    done = controller.request_rescale("loyalty", 12)
    print("scaling loyalty 8 -> 12 instances with DRRS...")
    job.run(until=120.0)
    assert done.triggered

    latency = job.metrics.latency_series()
    throughput = job.metrics.throughput_series(window=2.0, end=120.0)
    print()
    print("end-to-end latency, 0..120 s (scale request at t=30):")
    print("  " + ascii_timeline(latency, start=0.0, end=120.0, mark_at=30.0))
    print("source throughput, same window:")
    print("  " + ascii_timeline(throughput, start=0.0, end=120.0, mark_at=30.0))
    print()
    pre = job.metrics.latency_stats(20.0, 30.0)
    during = job.metrics.latency_stats(30.0, 120.0)
    m = controller.metrics
    print(f"pre-scale mean latency:    {pre['mean']:.3f} s")
    print(f"during-scale mean / peak:  {during['mean']:.3f} s / "
          f"{during['peak']:.3f} s")
    print(f"migration duration:        {m.duration:.1f} s "
          f"({len(m.migration_completed)} key-groups)")
    print(f"records re-routed:         {m.records_rerouted}")
    print(f"cumulative suspension:     {m.total_suspension():.2f} s")


if __name__ == "__main__":
    main()
