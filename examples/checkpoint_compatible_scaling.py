#!/usr/bin/env python3
"""Fault-tolerance compatibility (§IV-C): checkpointing across a rescale.

Runs a keyed pipeline with a periodic aligned-checkpoint coordinator, then
rescales with DRRS while checkpoints keep flowing.  Shows that checkpoints
complete before, during and after the scaling operation, and that the job's
results stay correct.

Run:  python examples/checkpoint_compatible_scaling.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.engine import (CheckpointCoordinator, KeyedReduceLogic,
                          LatencyMarker, OperatorSpec, Partitioning, Record)


def main():
    graph = JobGraph("ckpt-demo", num_key_groups=16)
    graph.add_source("source", parallelism=2)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=5e-4, keyed=True,
        initial_state_bytes_per_group=4e6))
    graph.add_sink("sink")
    graph.connect("source", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()

    def generator():
        sources = job.sources()
        tick = 0
        while job.sim.now < 55.0:
            for source in sources:
                source.offer(Record(key=f"k{tick % 40}",
                                    event_time=job.sim.now, count=3))
            if tick % 20 == 0:
                sources[0].offer(LatencyMarker(key=f"k{tick % 40}"))
            tick += 1
            yield job.sim.timeout(0.005)

    job.sim.spawn(generator())

    checkpoints = CheckpointCoordinator(job, interval=5.0)
    checkpoints.start()

    job.run(until=18.0)
    snaps_before = len(job.snapshots)
    print(f"checkpoints completed before scaling: "
          f"{len(checkpoints.completed)} (snapshots: {snaps_before})")

    controller = DRRSController(job)
    done = controller.request_rescale("agg", 4)
    job.run(until=60.0)
    assert done.triggered

    print(f"scaling finished in {controller.metrics.duration:.2f} s; "
          f"checkpoints total: {len(checkpoints.completed)}")
    snaps_after = len(job.snapshots)
    print(f"instance snapshots recorded: {snaps_after} "
          f"(+{snaps_after - snaps_before} during/after scaling)")
    # Every periodic checkpoint triggered while scaling was in flight still
    # completed on every instance of the scaled operator (the very last
    # checkpoint may not have propagated before the simulation ended, so we
    # report the newest fully-covered one).
    agg_count = len(job.instances("agg"))
    coverage = {}
    for _t, name, cid in job.snapshots:
        if name.startswith("agg"):
            coverage.setdefault(cid, set()).add(name)
    complete = [cid for cid, names in coverage.items()
                if len(names) == agg_count]
    print(f"newest checkpoint covering all {agg_count} aggregator "
          f"instances: #{max(complete)} (of {len(checkpoints.completed)} "
          f"triggered)")
    total = job.metrics.total_source_output()
    processed = job.sink_logic().records_in
    print(f"records generated vs delivered: {total} vs {processed}")


if __name__ == "__main__":
    main()
