#!/usr/bin/env python3
"""Closed-loop autoscaling: a utilisation policy driving DRRS.

The paper treats scaling *decisions* as orthogonal (§IV-A's Policy
Generator, §VII future work).  This example closes the loop: a reactive
utilisation policy watches the aggregator, and when sustained load pushes
it past 85 % busy, it computes a new parallelism and triggers a DRRS
rescale on the fly — while the workload ramps up in steps.

Run:  python examples/autoscaling_policy.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.core.policy import UtilizationPolicy
from repro.engine import (KeyedReduceLogic, LatencyMarker, OperatorSpec,
                          Partitioning, Record)
from repro.experiments.timeline import ascii_timeline


def build_job() -> StreamJob:
    graph = JobGraph("autoscale", num_key_groups=64)
    graph.add_source("source", parallelism=2, service_time=1e-5)
    graph.add_operator(OperatorSpec(
        "aggregator",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2,
        service_time=1e-3,
        keyed=True,
        initial_state_bytes_per_group=2e6))
    graph.add_sink("sink")
    graph.connect("source", "aggregator", Partitioning.HASH)
    graph.connect("aggregator", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def ramping_load(job: StreamJob, until: float):
    """Offered load doubles at t=40 and again at t=80."""
    def gen():
        sources = job.sources()
        tick = 0
        while job.sim.now < until:
            if job.sim.now < 40.0:
                rate = 1200.0
            elif job.sim.now < 80.0:
                rate = 2600.0
            else:
                rate = 5200.0
            count = 4
            for source in sources:
                source.offer(Record(key=f"k{tick % 128}",
                                    event_time=job.sim.now, count=count))
            if tick % 10 == 0:
                sources[0].offer(LatencyMarker(key=f"k{tick % 128}"))
            tick += 1
            yield job.sim.timeout(2 * count / rate)

    job.sim.spawn(gen())


def main():
    job = build_job()
    ramping_load(job, until=150.0)
    controller = DRRSController(job)
    policy = UtilizationPolicy(
        job, controller, "aggregator",
        high_threshold=0.85, target=0.55,
        interval=4.0, hold_samples=2, max_parallelism=12, cooldown=15.0)
    policy.start()

    print("running 150 simulated seconds with load steps at t=40 and t=80;")
    print("the utilisation policy rescales the aggregator via DRRS as "
          "needed...\n")
    job.run(until=150.0)

    print("scaling decisions (time, new parallelism):")
    for when, parallelism in policy.decisions:
        print(f"  t={when:6.1f}s  -> {parallelism} instances")
    print(f"final parallelism: {len(job.instances('aggregator'))}")
    print()
    latency = job.metrics.latency_series()
    print("end-to-end latency, 0..150 s (load steps at 40/80, '|' = scale):")
    strip = ascii_timeline(latency, width=75, start=0, end=150)
    for when, _p in policy.decisions:
        index = min(int(when / 150 * 75), 74)
        strip = strip[:index] + "|" + strip[index + 1:]
    print("  " + strip)
    stats_end = job.metrics.latency_stats(130.0, 150.0)
    print(f"\nsteady-state latency after all rescales: "
          f"mean {stats_end['mean'] * 1e3:.0f} ms, "
          f"p99 {stats_end['p99'] * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
