#!/usr/bin/env python3
"""Fault tolerance end to end: checkpoints, a rescale, a crash, recovery.

Runs a keyed pipeline with periodic aligned checkpoints, kicks off a DRRS
rescale, and uses the fault-injection subsystem to crash an instance while
subscales are still in flight.  Checkpoints completed *during* the scaling
operation are restorable — migrating key-group state is folded into a
consistent cut — so the job rolls back to the newest checkpoint (possibly
a mid-scaling one), the controller aborts and rolls back the half-done
scale, replays its sources, and the retry finishes the rescale.  The final
state is exactly what a failure-free run would have produced.

Then the chaos harness runs a full scenario from the bank and prints its
invariant report — the same machinery `python -m repro chaos` drives.

Run:  python examples/failure_recovery.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.engine import (CheckpointCoordinator, KeyedReduceLogic,
                          OperatorSpec, Partitioning, RecoveryManager,
                          Record)
from repro.experiments.chaos_bank import chaos_scenario
from repro.faults import ChaosHarness, CrashInstance, FaultInjector
from repro.faults.invariants import check_all


def build_job() -> StreamJob:
    graph = JobGraph("ft-demo", num_key_groups=16)
    graph.add_source("source", parallelism=1)
    graph.add_operator(OperatorSpec(
        "counter",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=2e-4, keyed=True,
        initial_state_bytes_per_group=16e6))
    graph.add_sink("sink")
    graph.connect("source", "counter", Partitioning.HASH)
    graph.connect("counter", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def main():
    job = build_job()
    produced = {}

    def generator():
        source = job.sources()[0]
        tick = 0
        while job.sim.now < 20.0:
            key = f"k{tick % 20}"
            source.offer(Record(key=key, event_time=job.sim.now, count=1))
            # Tally at the source: an oracle that survives replay-history
            # trimming and is blind to every fault downstream.
            produced[key] = produced.get(key, 0) + 1
            tick += 1
            yield job.sim.timeout(0.01)

    job.sim.spawn(generator())
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    # Retention must outlast the run so the restored checkpoint is still
    # inspectable at the end (~60 checkpoints complete over the horizon).
    recovery = RecoveryManager(job, restart_seconds=1.0,
                               retain_checkpoints=100).install()
    controller = DRRSController(job)
    holder = {}
    job.sim.call_at(
        6.0, lambda: holder.update(
            done=controller.request_rescale("counter", 4)))

    # Crash counter[1] at t=8 — with 16 MB per key group the subscales
    # are still migrating state, so the crash lands mid-scaling.
    injector = FaultInjector(job, recovery=recovery, seed=7)
    injector.add(CrashInstance("counter", 1, at=8.0)).arm()

    job.run(until=60.0)

    for when, kind, detail in injector.injected:
        print(f"t={when:6.2f}  injected {kind}: {detail}")
    assert recovery.recoveries, "the crash should have forced a recovery"
    when, cid = recovery.recoveries[0]
    checkpoint = recovery.checkpoint(cid)
    print(f"t={when:6.2f}  recovered from checkpoint #{cid} "
          f"(mid_scaling={checkpoint.mid_scaling})")
    done = holder["done"]
    assert done.triggered and done._ok, "retry should finish the rescale"
    print(f"rescale finished: counter now has "
          f"{len(job.instances('counter'))} instances")

    violations = check_all(job, "counter", oracle=produced)
    assert not violations, violations
    print(f"invariants hold: exactly-once state across "
          f"{len(produced)} keys, unique ownership, consistent routing.")

    # The chaos bank packages scenarios like the above with invariant
    # checks and expectations; the harness runs one end to end.
    print("\nrunning bank scenario 'crash-during-transfer' (seed 7)...")
    report = ChaosHarness(chaos_scenario("crash-during-transfer"),
                          seed=7).run()
    print(report.summary())
    assert report.passed


if __name__ == "__main__":
    main()
