#!/usr/bin/env python3
"""Fault tolerance end to end: checkpoints, a rescale, a failure, recovery.

Runs a keyed pipeline with periodic aligned checkpoints and a retention
manager, rescales it with DRRS, then injects a whole-job failure.  The job
rolls back to the newest clean checkpoint (checkpoints completed *during*
the rescale are tainted and skipped, per §IV-C's consistency requirement),
replays its sources, and converges to exactly the state a failure-free run
would have.

Run:  python examples/failure_recovery.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.engine import (CheckpointCoordinator, KeyedReduceLogic,
                          OperatorSpec, Partitioning, RecoveryManager,
                          Record)


def build_job() -> StreamJob:
    graph = JobGraph("ft-demo", num_key_groups=16)
    graph.add_source("source", parallelism=1)
    graph.add_operator(OperatorSpec(
        "counter",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=2e-4, keyed=True))
    graph.add_sink("sink")
    graph.connect("source", "counter", Partitioning.HASH)
    graph.connect("counter", "sink", Partitioning.FORWARD)
    return StreamJob(graph).build()


def main():
    job = build_job()

    def generator():
        source = job.sources()[0]
        tick = 0
        while job.sim.now < 55.0:
            source.offer(Record(key=f"k{tick % 20}",
                                event_time=job.sim.now, count=1))
            tick += 1
            yield job.sim.timeout(0.01)

    job.sim.spawn(generator())
    checkpoints = CheckpointCoordinator(job, interval=3.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=2.0).install()

    job.run(until=10.0)
    print(f"t=10: {len(checkpoints.completed)} checkpoints completed")

    controller = DRRSController(job)
    scaled = controller.request_rescale("counter", 4)
    job.run(until=20.0)
    assert scaled.triggered
    latest = recovery.latest_completed()
    print(f"t=20: rescaled 2 -> 4; newest clean checkpoint: "
          f"#{latest.checkpoint_id}")

    print("t=25: injecting failure...")
    job.run(until=25.0)
    recovered = recovery.fail_and_recover()
    job.run(until=60.0)
    assert recovered.triggered
    restored_id = recovery.recoveries[0][1]
    print(f"recovered from checkpoint #{restored_id} "
          f"(restart + restore downtime paid, sources replayed)")

    # Verify exactly-once state: per-key counts equal the generated counts.
    produced = {}
    for element in job.sources()[0]._history:
        if isinstance(element, Record):
            produced[element.key] = produced.get(element.key, 0) + 1
    state = {}
    for instance in job.instances("counter"):
        for group in instance.state.groups():
            state.update(group.entries)
    mismatches = {k: (state.get(k), produced[k])
                  for k in produced if state.get(k) != produced[k]}
    print(f"per-key state check: {len(produced)} keys, "
          f"{len(mismatches)} mismatches")
    assert not mismatches, mismatches
    print("exactly-once state verified after failure + recovery.")


if __name__ == "__main__":
    main()
