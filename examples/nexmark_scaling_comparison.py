#!/usr/bin/env python3
"""NEXMark Q7: compare DRRS against Megaphone- and Meces-style rescaling.

Reproduces a miniature of the paper's Fig. 10a/12/13 on the Q7 workload
(20 K tuples/s of bids into a sliding-window max, 8 → 12 instances,
~800 MB of window state) and prints one row per mechanism.

Run:  python examples/nexmark_scaling_comparison.py
"""

from repro.experiments import QUICK
from repro.experiments.figures import controller_factory, _run_one
from repro.experiments.report import format_table


def main():
    systems = ("drrs", "megaphone", "meces", "otfs")
    rows = []
    print("running NEXMark Q7 under four scaling mechanisms "
          "(~30 s wall-clock)...")
    for system in systems:
        result = _run_one("q7", system, QUICK)
        summary = result.summary()
        rows.append({
            "mechanism": system,
            "peak_latency_s": summary["peak_latency"],
            "mean_latency_s": summary["mean_latency"],
            "scaling_period_s": summary["scaling_period"],
            "propagation_s": summary["cumulative_propagation_delay"],
            "dependency_s": summary["avg_dependency_overhead"],
            "suspension_s": summary["total_suspension"],
        })
        print(f"  {system}: done")
    print()
    print(format_table(rows, title="NEXMark Q7, scale 8->12 instances "
                                   "(migrating 113 of 128 key-groups)"))
    print()
    drrs = rows[0]
    for other in rows[1:]:
        if not other["mean_latency_s"]:
            continue
        reduction = 100 * (1 - drrs["mean_latency_s"]
                           / other["mean_latency_s"])
        print(f"DRRS mean-latency reduction vs {other['mechanism']}: "
              f"{reduction:.1f}%  (paper reports 95.5% vs Megaphone, "
              f"94.2% vs Meces)")


if __name__ == "__main__":
    main()
