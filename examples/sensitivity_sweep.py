#!/usr/bin/env python3
"""Mini sensitivity sweep (§V-D): skew × state size on the 4-node cluster.

Runs the 3-operator custom workload on the heterogeneous Swarm-cluster
model, rescaling 25 → 30 instances while sweeping Zipf skew and state size,
and prints the throughput-deviation grid (a small slice of Fig. 15).

Run:  python examples/sensitivity_sweep.py
"""

from repro.experiments import QUICK
from repro.experiments.figures import _sensitivity_cell
from repro.experiments.report import format_table


def main():
    rows = []
    rate = 10_000.0
    print(f"sweeping skew x state size at {rate:.0f} records/s "
          "(25 -> 30 instances, 256 key-groups)...")
    for skew in (0.0, 0.5, 1.0):
        for state in (5e9, 20e9):
            for system in ("drrs", "meces"):
                cell = _sensitivity_cell(QUICK, system, rate, state, skew)
                rows.append(cell)
                print(f"  skew={skew} state={state / 1e9:.0f}GB "
                      f"{system}: deviation "
                      f"{cell['throughput_deviation_pct']:.1f}%")
    print()
    print(format_table(
        rows,
        columns=["system", "skew", "state_bytes", "rate",
                 "throughput_deviation_pct", "measured_rate"],
        title="Throughput deviation under rescaling "
              "(lower is better; slice of Fig. 15)"))


if __name__ == "__main__":
    main()
