#!/usr/bin/env python3
"""Quickstart for the elasticity control plane (`repro.autoscale`).

Builds a keyed pipeline, drives it with a traffic ramp, and lets the
closed-loop :class:`AutoscaleController` size the aggregator by itself:
``ScalingSignals`` samples busy fractions / queue depths / source rate
into EWMA windows, a pluggable policy turns them into parallelism
targets, and the controller actuates each decision through DRRS — on the
fly, under live traffic, serialized against any other control-plane
operation.  Every step lands in an auditable decision log.

This is the programmatic face of the same loop the diurnal-day
experiment runs at scale (``python -m repro autoscale --scale smoke``).

Run:  python examples/autoscale_quickstart.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.autoscale import (AutoscaleController, PredictivePolicy,
                             ScalingSignals)
from repro.engine import (KeyedReduceLogic, LatencyMarker, OperatorSpec,
                          Partitioning, Record)


def build_job() -> StreamJob:
    graph = JobGraph("autoscale-quickstart", num_key_groups=32)
    graph.add_source("source", parallelism=1, service_time=5e-5)
    graph.add_operator(OperatorSpec(
        "aggregator",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2,
        service_time=2e-3,
        keyed=True,
        initial_state_bytes_per_group=2e6))
    graph.add_sink("sink")
    graph.connect("source", "aggregator", Partitioning.HASH)
    graph.connect("aggregator", "sink", Partitioning.FORWARD)
    job = StreamJob(graph).build()
    job.enable_telemetry()   # the signals publish autoscale.* gauges
    return job


def ramping_load(job: StreamJob, until: float):
    """400 rec/s at night, a linear ramp to 1400 rec/s, back down."""
    def gen():
        source = job.sources()[0]
        tick = 0
        while job.sim.now < until:
            t = job.sim.now
            if t < 20.0:
                rate = 400.0
            elif t < 40.0:
                rate = 400.0 + (t - 20.0) / 20.0 * 1000.0   # the ramp
            elif t < 70.0:
                rate = 1400.0
            else:
                rate = 400.0
            source.offer(Record(key=f"k{tick % 24}",
                                event_time=t, count=1))
            if tick % 10 == 0:
                source.offer(LatencyMarker(key=f"k{tick % 24}"))
            tick += 1
            yield job.sim.timeout(1.0 / rate)

    job.sim.spawn(gen())


def main():
    job = build_job()
    ramping_load(job, until=95.0)

    drrs = DRRSController(job)
    # The predictive policy fits a trend to the smoothed arrival rate and
    # scales *ahead* of the ramp, sizing from a self-calibrated
    # work-per-record estimate; when the trend is flat it degrades to the
    # reactive utilisation thresholds.
    policy = PredictivePolicy(
        target=0.6, high=0.8, low=0.35, lead_time=12.0,
        min_parallelism=1, max_parallelism=8,
        cooldown=8.0, hold_ticks=2)
    auto = AutoscaleController(
        job, drrs, "aggregator", policy,
        signals=ScalingSignals(job, "aggregator"),
        interval=2.0, warmup=2.0)
    auto.start()

    print("running a 100-second day: ramp at t=20, peak to t=70, then quiet;")
    print("the controller samples every 2 s and rescales via DRRS...\n")
    job.run(until=100.0)

    summary = auto.summary()
    print("decision log:")
    for entry in summary["decisions"]:
        t, event = entry["t"], entry["event"]
        if event == "decide":
            print(f"  t={t:6.2f}s  decide   {entry['from']} -> "
                  f"{entry['target']}  ({entry['why']})")
        elif event == "complete":
            print(f"  t={t:6.2f}s  complete -> {entry['target']} "
                  f"in {entry['took']:.2f} s")
        elif event == "defer":
            print(f"  t={t:6.2f}s  defer    ({entry['reason']})")
        elif event == "failed":
            print(f"  t={t:6.2f}s  FAILED   ({entry['error']})")

    print(f"\nrescales: {summary['rescales_completed']} completed, "
          f"{summary['rescales_failed']} failed, "
          f"{summary['decisions_deferred']} decisions deferred")
    print(f"instance-seconds consumed: {summary['instance_seconds']:.1f} "
          f"(static 8-wide would burn {8 * 100.0:.0f})")
    print(f"final parallelism: {summary['final_parallelism']}")
    peak = job.metrics.latency_stats(40.0, 70.0)
    print(f"latency through the peak: mean {peak['mean'] * 1e3:.0f} ms, "
          f"p99 {peak['p99'] * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
