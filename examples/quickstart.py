#!/usr/bin/env python3
"""Quickstart: build a keyed pipeline, rescale it on the fly with DRRS.

Builds the smallest interesting job — source → keyed aggregator → sink —
drives it with a generated workload, then scales the aggregator from 2 to 4
instances mid-run using DRRS.  Prints latency around the scaling operation
and the scaling metrics (propagation / dependency / suspension overheads).

Run:  python examples/quickstart.py
"""

from repro import DRRSController, JobGraph, StreamJob
from repro.engine import (KeyedReduceLogic, LatencyMarker, OperatorSpec,
                          Partitioning, Record)
from repro.engine.runtime import JobConfig


def build_job(record_plane: str = "batched",
              max_batch_size: int = 64) -> StreamJob:
    graph = JobGraph("quickstart", num_key_groups=32)
    graph.add_source("source", parallelism=2, service_time=1e-5)
    graph.add_operator(OperatorSpec(
        "counter",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, record: (old or 0) + record.count),
        parallelism=2,
        service_time=8e-4,          # ~80 % utilisation at the driven rate
        keyed=True,
        initial_state_bytes_per_group=8e6))   # 256 MB total keyed state
    graph.add_sink("sink")
    graph.connect("source", "counter", Partitioning.HASH)
    graph.connect("counter", "sink", Partitioning.FORWARD)
    # The batched record plane is the default: micro-batches cut the host
    # CPU per simulated record without changing any simulated behaviour.
    # Pass record_plane="single" to run the per-record reference plane
    # (bit-identical results, just slower wall-clock).
    config = JobConfig(record_plane=record_plane,
                       max_batch_size=max_batch_size)
    return StreamJob(graph, config=config).build()


def drive(job: StreamJob, until: float):
    """A simple generator: 2,000 records/s across 64 keys + latency probes."""
    def generator():
        sources = job.sources()
        tick = 0
        while job.sim.now < until:
            for source in sources:
                source.offer(Record(key=f"user-{tick % 64}",
                                    event_time=job.sim.now, count=4))
            if tick % 10 == 0:
                sources[0].offer(LatencyMarker(key=f"user-{tick % 64}"))
            tick += 1
            yield job.sim.timeout(0.004)

    job.sim.spawn(generator())


def main():
    job = build_job()
    drive(job, until=55.0)

    print("warming up (20 s simulated)...")
    job.run(until=20.0)
    pre = job.metrics.latency_stats(10.0, 20.0)
    print(f"  steady-state latency: mean {pre['mean'] * 1e3:.1f} ms, "
          f"p99 {pre['p99'] * 1e3:.1f} ms")

    print("rescaling counter 2 -> 4 instances with DRRS...")
    controller = DRRSController(job)
    done = controller.request_rescale("counter", 4)
    job.run(until=60.0)
    assert done.triggered, "scaling did not finish"

    during = job.metrics.latency_stats(20.0, 60.0)
    metrics = controller.metrics
    print(f"  scaling finished in {metrics.duration:.2f} s simulated")
    print(f"  latency during scaling: mean {during['mean'] * 1e3:.1f} ms, "
          f"peak {during['peak'] * 1e3:.1f} ms")
    print(f"  cumulative propagation delay: "
          f"{metrics.cumulative_propagation_delay() * 1e3:.1f} ms")
    print(f"  average dependency overhead:  "
          f"{metrics.average_dependency_overhead() * 1e3:.1f} ms")
    print(f"  cumulative suspension time:   "
          f"{metrics.total_suspension() * 1e3:.1f} ms")
    print(f"  records re-routed:            {metrics.records_rerouted}")

    assignment = job.assignments["counter"]
    counts = assignment.counts()
    print("  key-groups per instance after scaling:",
          {i: counts.get(i, 0) for i in range(4)})
    print("done.")


if __name__ == "__main__":
    main()
