"""Fig. 12 — cumulative propagation delay & average dependency overhead.

Paper: Megaphone's repeated synchronizations give it by far the largest
cumulative propagation delay and dependency overhead (scaling up to 7.24×
longer than DRRS on Q7); Meces's single synchronization gives it the lowest
propagation overhead; DRRS's decoupled signals keep both small.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig12_propagation_dependency
from repro.experiments.report import format_fig12


def test_fig12_propagation_dependency(benchmark):
    out = benchmark.pedantic(run_fig12_propagation_dependency,
                             args=(QUICK,), rounds=1, iterations=1)
    save_table("fig12_propagation_dependency", format_fig12(out))

    by_key = {(r["workload"], r["system"]): r for r in out["rows"]}
    for workload in ("q7", "q8", "twitch"):
        mega = by_key[(workload, "megaphone")]
        meces = by_key[(workload, "meces")]
        drrs = by_key[(workload, "drrs")]
        # Megaphone: largest propagation AND dependency.
        assert (mega["cumulative_propagation_delay"]
                > drrs["cumulative_propagation_delay"])
        assert (mega["cumulative_propagation_delay"]
                > meces["cumulative_propagation_delay"])
        assert (mega["avg_dependency_overhead"]
                > drrs["avg_dependency_overhead"])
        # Meces: lowest propagation (single synchronization).
        assert (meces["cumulative_propagation_delay"]
                <= drrs["cumulative_propagation_delay"])
        # DRRS: smallest dependency overhead (subscale division).
        assert (drrs["avg_dependency_overhead"]
                <= meces["avg_dependency_overhead"])
