"""Fig. 14 — design-rationale isolation test (§V-C).

Paper (Twitch workload): the full DRRS system achieves the lowest peak and
average latencies; each mechanism in isolation degrades — Decoupling and
Re-routing alone worst (+30 % peak / +22 % avg), Record Scheduling alone
+18 %/+15 %, Subscale Division alone +23 %/+18 % — demonstrating the
mechanisms are synergistic.

Reproduced shape: full DRRS has the lowest (within noise) mean latency, and
no isolated variant beats it meaningfully.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig14_ablation
from repro.experiments.report import format_fig14


def test_fig14_ablation(benchmark):
    out = benchmark.pedantic(run_fig14_ablation, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig14_ablation", format_fig14(out))

    rows = {r["variant"]: r for r in out["rows"]}
    full = rows["drrs"]
    for variant in ("dr", "schedule", "subscale"):
        row = rows[variant]
        # No isolated mechanism beats the integrated system (5 % noise
        # tolerance on this latency-noisy workload).
        assert row["mean_latency"] >= full["mean_latency"] * 0.95, variant
        assert row["peak_latency"] >= full["peak_latency"] * 0.95, variant
    # At least one isolated variant is measurably worse (synergy exists).
    assert any(rows[v]["mean_latency"] > full["mean_latency"] * 1.01
               for v in ("dr", "schedule", "subscale"))
