"""Benchmark-suite helpers: every figure bench saves its table to
``benchmarks/results/`` and prints it, so `pytest benchmarks/
--benchmark-only` regenerates the paper's evaluation artifacts."""

from __future__ import annotations

import json
import os
from typing import Any, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str, data: Optional[Any] = None) -> None:
    """Save a formatted table as ``<name>.txt`` plus a ``<name>.json``
    sidecar (machine-readable: the table lines, and ``data`` when the
    caller passes a JSON-serialisable structure)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    sidecar = {"name": name, "lines": text.splitlines()}
    if data is not None:
        sidecar["data"] = data
    json_path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(json_path, "w") as f:
        json.dump(sidecar, f, indent=1, sort_keys=True)
        f.write("\n")
    print()
    print(text)
    print(f"[saved to {path} (+ .json)]")
