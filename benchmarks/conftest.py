"""Benchmark-suite helpers: every figure bench saves its table to
``benchmarks/results/`` and prints it, so `pytest benchmarks/
--benchmark-only` regenerates the paper's evaluation artifacts."""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
