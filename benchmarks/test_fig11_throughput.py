"""Fig. 11 — throughput during scaling (§V-B).

Paper: throughput drops when scaling begins, then overshoots (buffered
records flush once migration completes) and stabilizes at a higher level;
DRRS shows the smallest dip and the fastest return to the offered rate.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig11_throughput
from repro.experiments.report import format_table


def test_fig11_throughput(benchmark):
    out = benchmark.pedantic(run_fig11_throughput, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig11_throughput", format_table(
        out["recovery"],
        title="Fig. 11 — source throughput around the scaling operation "
              "(records/s)"))

    results = out["results"]
    for workload in ("q7", "q8", "twitch"):
        drrs = results[workload]["drrs"]
        # Post-scaling throughput must recover: no stranded backlog at the
        # sources by the end of the run (the offered rate is wave-modulated
        # on Twitch, so rate-vs-rate comparisons would be confounded).
        backlog = sum(
            sum(getattr(e, "count", 0) for e in source.pending)
            for source in drrs.job.sources())
        generated = drrs.source_records + backlog
        assert backlog <= generated * 0.02, (
            f"{workload}: DRRS left a source backlog of {backlog}")

    # DRRS's worst dip is no deeper than the baselines' on the heavy queries.
    dips = {(r["workload"], r["system"]): r["min_during"]
            for r in out["recovery"]}
    for workload in ("q7", "q8"):
        assert dips[(workload, "drrs")] >= min(
            dips[(workload, "megaphone")], dips[(workload, "meces")])
