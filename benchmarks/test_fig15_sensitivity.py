"""Fig. 15 — sensitivity analysis on the heterogeneous cluster (§V-D).

Paper: throughput deviation over ⟨input rate, state size, skewness⟩ with
25→30 instances and 256 key-groups on the 4-node Swarm cluster.  Expected
shape: progressive degradation with rate/state/skew; DRRS consistently
best, up to 89 % higher throughput than the baselines at ⟨20 K tps, 30 GB⟩;
Megaphone shows the paper's anomaly — migrations that do not finish inside
the measurement window leave the untouched instances running, masking the
deviation.

The quick grid covers the corners (2 rates × 2 sizes × 2 skews); pass
``PAPER`` and ``SENSITIVITY_GRID_PAPER`` for the full 4×4×4 sweep.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig15_sensitivity
from repro.experiments.report import format_fig15


def test_fig15_sensitivity(benchmark):
    out = benchmark.pedantic(run_fig15_sensitivity, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig15_sensitivity", format_fig15(out))

    cell = {(r["system"], r["rate"], r["state_bytes"], r["skew"]):
            r["throughput_deviation_pct"] for r in out["rows"]}
    rates = sorted({r["rate"] for r in out["rows"]})
    sizes = sorted({r["state_bytes"] for r in out["rows"]})
    lo_rate, hi_rate = rates[0], rates[-1]
    lo_size, hi_size = sizes[0], sizes[-1]

    # Heaviest uniform-skew cell: DRRS clearly ahead of Meces (the paper's
    # "up to 89% higher throughput" cell).
    drrs = cell[("drrs", hi_rate, hi_size, 0.0)]
    meces = cell[("meces", hi_rate, hi_size, 0.0)]
    assert drrs < meces
    assert drrs <= 10.0, "DRRS keeps deviation small at the heaviest cell"

    # Progressive degradation with state size for the fetch-on-demand
    # baseline at low rate.
    assert (cell[("meces", lo_rate, hi_size, 0.0)]
            >= cell[("meces", lo_rate, lo_size, 0.0)])

    # High skew saturates a single key regardless of mechanism: every
    # system degrades (the paper's rightmost panel turning yellow).
    hi_skew = max(r["skew"] for r in out["rows"])
    if hi_skew >= 1.0:
        for system in ("drrs", "megaphone", "meces"):
            assert cell[(system, hi_rate, lo_size, hi_skew)] > 25.0
