"""Fig. 10 — end-to-end latency during scaling (§V-B).

Paper: DRRS vs Megaphone/Meces on NEXMark Q7, Q8 and Twitch, 8→12
instances.  Headline numbers: peak-latency reductions up to 81.1 %, average
up to 95.5 %, scaling-duration reductions of 72.8–86 %; on Twitch,
Megaphone's conservative migration yields comparable peak/average latencies
but a much longer scaling period.

Reproduced shape asserted here: DRRS's mean latency and scaling period beat
both baselines on every workload; peak latency beats the baselines on the
NEXMark queries (on Twitch, parity with conservative baselines is the
paper's own observation).
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig10_latency
from repro.experiments.report import format_fig10


def test_fig10_latency(benchmark):
    out = benchmark.pedantic(run_fig10_latency, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig10_latency", format_fig10(out))

    results = out["results"]
    for workload in ("q7", "q8", "twitch"):
        drrs = results[workload]["drrs"]
        for other in ("megaphone", "meces"):
            base = results[workload][other]
            assert drrs.mean_latency <= base.mean_latency * 1.10, (
                f"{workload}: DRRS mean vs {other}")
            # 5 s absolute slack: the stabilization detector works on 2 s
            # latency buckets, so tiny periods compare within granularity.
            assert (drrs.scaling_period or 0) <= (
                base.scaling_period or 0) * 1.10 + 5.0, (
                f"{workload}: DRRS period vs {other}")
    for workload in ("q7", "q8"):
        drrs = results[workload]["drrs"]
        for other in ("megaphone", "meces"):
            assert drrs.peak_latency < results[workload][other].peak_latency

    # The headline direction: large reductions vs Megaphone on Q7/Q8.
    red = out["reductions"]
    assert red["q7"]["megaphone"]["mean_reduction_pct"] > 50
    assert red["q8"]["megaphone"]["mean_reduction_pct"] > 50
