"""Design-choice ablations called out in DESIGN.md §5.

These go beyond the paper's figures and probe the knobs its design fixes:

* fluid vs all-at-once migration (the Fig. 1b/1c contrast),
* Stop-Checkpoint-Restart as the mainstream-SPE reference point (§I),
* the Record Scheduling buffer size (the paper fixes 200 items),
* the subscale count (C1's division granularity),
* greedy "fewest held keys" vs FIFO subscale scheduling.
"""

import os
import sys

from conftest import save_table

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import build_keyed_job, drive  # noqa: E402

from repro.core.drrs import DRRSConfig, DRRSController
from repro.experiments.report import format_table
from repro.scaling import OTFSController, StopRestartController


def scaled_run(make_controller, agg_service=0.0015, state=4e6,
               new_parallelism=6, until=60.0):
    job = build_keyed_job(num_key_groups=32, agg_parallelism=4,
                          agg_service=agg_service,
                          state_bytes_per_group=state)
    drive(job, until=until - 10.0, record_gap=0.004, keys=64, count=2)
    job.run(until=8.0)
    controller = make_controller(job)
    done = controller.request_rescale("agg", new_parallelism)
    job.run(until=until)
    assert done.triggered
    stats = job.metrics.latency_stats(8.0, until)
    return {
        "peak_latency": stats["peak"],
        "mean_latency": stats["mean"],
        "migration_duration": controller.metrics.duration,
        "total_suspension": controller.metrics.total_suspension(),
        "avg_dependency": controller.metrics.average_dependency_overhead(),
    }


def test_fluid_vs_all_at_once(benchmark):
    def run():
        return {
            "fluid": scaled_run(lambda j: OTFSController(
                j, migration="fluid")),
            "all_at_once": scaled_run(lambda j: OTFSController(
                j, migration="all_at_once")),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"migration": k, **v} for k, v in out.items()]
    save_table("ablation_fluid_vs_batch", format_table(
        rows, title="Fluid vs all-at-once migration (generalized OTFS)"))
    # Fluid migration resumes per key-group: suspension no worse than batch.
    assert (out["fluid"]["total_suspension"]
            <= out["all_at_once"]["total_suspension"] * 1.10)


def test_stop_restart_vs_on_the_fly(benchmark):
    def run():
        return {
            "stop_restart": scaled_run(lambda j: StopRestartController(j)),
            "otfs_fluid": scaled_run(lambda j: OTFSController(j)),
            "drrs": scaled_run(lambda j: DRRSController(j)),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"mechanism": k, **v} for k, v in out.items()]
    save_table("ablation_stop_restart", format_table(
        rows, title="Stop-Checkpoint-Restart vs on-the-fly scaling"))
    # The global halt must hurt peak latency more than any on-the-fly run.
    assert (out["stop_restart"]["peak_latency"]
            >= out["drrs"]["peak_latency"])
    assert (out["stop_restart"]["total_suspension"]
            > out["otfs_fluid"]["total_suspension"])


def test_schedule_buffer_size_sweep(benchmark):
    sizes = [10, 50, 200, 1000]

    def run():
        rows = []
        for size in sizes:
            result = scaled_run(lambda j, s=size: DRRSController(
                j, DRRSConfig(schedule_buffer=s)))
            rows.append({"buffer": size, **result})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_schedule_buffer", format_table(
        rows, title="Record Scheduling buffer size (paper fixes 200)"))
    by_size = {r["buffer"]: r for r in rows}
    # A larger buffer never increases suspension (more swap candidates).
    assert (by_size[1000]["total_suspension"]
            <= by_size[10]["total_suspension"] * 1.10)


def test_subscale_count_sweep(benchmark):
    counts = [1, 4, 16, 64]

    def run():
        rows = []
        for n in counts:
            result = scaled_run(lambda j, n=n: DRRSController(
                j, DRRSConfig(num_subscales=n)))
            rows.append({"num_subscales": n, **result})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_subscale_count", format_table(
        rows, title="Subscale Division granularity"))
    for r in rows:
        assert r["migration_duration"] is not None


def test_greedy_vs_fifo_subscale_scheduling(benchmark):
    def first_arrival_span(strategy):
        job = build_keyed_job(num_key_groups=32, agg_parallelism=4,
                              agg_service=0.0015,
                              state_bytes_per_group=4e6)
        drive(job, until=40.0, record_gap=0.004, keys=64, count=2)
        job.run(until=8.0)
        controller = DRRSController(job, DRRSConfig(
            subscale_strategy=strategy, num_subscales=16))
        done = controller.request_rescale("agg", 6)
        job.run(until=60.0)
        assert done.triggered
        m = controller.metrics
        # Per new instance: when its first key-group finished migrating.
        firsts = {}
        plan_target = job.assignments["agg"]
        for kg, t in m.migration_completed.items():
            dst = plan_target.owner(kg)
            if dst >= 4:  # new instances
                firsts[dst] = min(firsts.get(dst, float("inf")), t)
        return max(firsts.values()) - m.started_at

    def run():
        return {"greedy": first_arrival_span("greedy"),
                "fifo": first_arrival_span("fifo")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_greedy_vs_fifo", format_table(
        [{"strategy": k, "last_new_instance_first_state_s": v}
         for k, v in out.items()],
        title="Greedy (fewest held keys) vs FIFO subscale scheduling: "
              "time until every new instance holds state"))
    # Greedy brings the last new instance into play no later than FIFO.
    assert out["greedy"] <= out["fifo"] * 1.25
