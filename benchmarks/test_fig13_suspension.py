"""Fig. 13 — cumulative suspension time (§V-B).

Paper: Meces's fetch-on-demand conflicts give it by far the highest
cumulative suspension time; Megaphone's timestamp-driven migration grows
suspension slowly; DRRS's Record Scheduling keeps suspension lowest on the
heavy queries.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig13_suspension
from repro.experiments.report import format_fig13


def test_fig13_suspension(benchmark):
    out = benchmark.pedantic(run_fig13_suspension, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig13_suspension", format_fig13(out))

    by_key = {(r["workload"], r["system"]): r for r in out["rows"]}
    for workload in ("q7", "q8"):
        drrs = by_key[(workload, "drrs")]["total_suspension"]
        meces = by_key[(workload, "meces")]["total_suspension"]
        mega = by_key[(workload, "megaphone")]["total_suspension"]
        assert meces > drrs, f"{workload}: Meces must suspend most"
        assert mega > drrs, f"{workload}: DRRS must suspend least"

    # Suspension series are cumulative (monotone non-decreasing).
    for workload, per_system in out["series"].items():
        for system, series in per_system.items():
            values = [v for _t, v in series]
            assert values == sorted(values), f"{workload}/{system}"
