"""Fig. 2 — the Unbound probe (§II-B).

Paper: on Twitch at fixed rate, generalized OTFS (fluid) raises average /
peak latency to 3.47× / 4.8× of No Scale, while the correctness-free Unbound
probe stays at 1.25× / 1.14× — establishing that propagation, suspension and
dependency delays are the core on-the-fly-scaling overheads.

Reproduced shape: Unbound's latency ratios are far below OTFS's, and close
to the no-scale level.
"""

from conftest import save_table

from repro.experiments import QUICK, run_fig02_unbound_probe
from repro.experiments.report import format_fig02


def test_fig02_unbound_probe(benchmark):
    out = benchmark.pedantic(run_fig02_unbound_probe, args=(QUICK,),
                             rounds=1, iterations=1)
    save_table("fig02_unbound_probe", format_fig02(out))

    otfs = out["ratios"]["otfs"]
    unbound = out["ratios"]["unbound"]
    # Unbound eliminates L_p and L_s: it must beat OTFS on both ratios
    # and sit near the no-scale level.
    assert unbound["avg_ratio"] <= otfs["avg_ratio"]
    assert unbound["peak_ratio"] <= otfs["peak_ratio"] * 1.05
    assert unbound["avg_ratio"] < 1.6

    # Unbound suspends nothing (universal keys).
    unbound_metrics = out["results"]["unbound"].scaling_metrics
    assert unbound_metrics.total_suspension() == 0.0
