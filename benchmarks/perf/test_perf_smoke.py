"""Smoke wrappers for the wall-clock perf suites (``repro bench``).

These run the ``smoke`` scale so CI catches harness breakage (a bench that
crashes, a schema drift, a missing baseline entry); the recorded perf
trajectory lives in ``BENCH_kernel.json`` / ``BENCH_e2e.json`` at the repo
root (``full`` scale, best-of-N, interleaved against the pre-PR commit —
see :mod:`repro.perf.baseline` for the methodology).

Wall-clock *thresholds* are deliberately absent: CI boxes are too noisy
for them.  Semantics regressions are caught by the golden-trace tests
instead.
"""

from repro.perf import BENCH_SCALES, run_e2e_bench, run_kernel_bench
from repro.perf.benches import write_bench_files

KERNEL_BENCHES = ("timeout_storm", "callback_chain", "event_pingpong",
                  "channel_throughput")


def test_kernel_bench_smoke():
    doc = run_kernel_bench("smoke")
    assert doc["schema"] == "repro-bench/1"
    assert doc["scale"] == "smoke"
    for name in KERNEL_BENCHES:
        result = doc["results"][name]
        assert result["wall_s"] > 0
        throughputs = [v for k, v in result.items() if k.endswith("_per_s")]
        assert throughputs and all(v > 0 for v in throughputs)


def test_e2e_bench_smoke():
    doc = run_e2e_bench("smoke")
    results = doc["results"]
    params = BENCH_SCALES["smoke"]
    assert results["sim_seconds"] == params["e2e_until"]
    assert results["source_records"] > 0
    assert results["sink_records"] > 0
    assert results["records_per_sec"] > 0


def test_write_bench_files_embeds_baseline(tmp_path):
    written = write_bench_files(output_dir=str(tmp_path), scale="smoke")
    assert set(written) == {"kernel", "e2e"}
    import json

    for name, path in written.items():
        with open(path) as f:
            doc = json.load(f)
        assert doc["bench"] == name
        assert "pre_pr" in doc
        assert "speedup_vs_pre_pr" in doc
