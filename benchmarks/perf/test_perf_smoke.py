"""Smoke wrappers for the wall-clock perf suites (``repro bench``).

These run the ``smoke`` scale so CI catches harness breakage (a bench that
crashes, a schema drift, a missing baseline entry); the recorded perf
trajectory lives in ``BENCH_kernel.json`` / ``BENCH_e2e.json`` at the repo
root (``full`` scale, best-of-N, interleaved against the pre-PR commit —
see :mod:`repro.perf.baseline` for the methodology).

Wall-clock *thresholds* are deliberately absent: CI boxes are too noisy
for them.  Semantics regressions are caught by the golden-trace tests
instead.
"""

import copy

import pytest

from repro.perf import (BENCH_SCALES, compare_bench_docs,
                        config_mismatch_warnings, format_config,
                        format_delta_table, run_e2e_bench, run_kernel_bench)
from repro.perf.benches import BENCH_SCHEMA, write_bench_files

KERNEL_BENCHES = ("timeout_storm", "timeout_storm_calendar",
                  "callback_chain", "event_pingpong", "channel_throughput")


def test_kernel_bench_smoke():
    doc = run_kernel_bench("smoke")
    assert doc["schema"] == BENCH_SCHEMA == "repro-bench/4"
    assert doc["scale"] == "smoke"
    assert doc["stat"] == "best"
    assert doc["config"]["record_plane"] == "batched"
    assert doc["config"]["max_batch_size"] >= 2
    assert doc["config"]["scheduler"] in ("heap", "calendar")
    assert isinstance(doc["config"]["columnar_available"], bool)
    assert doc["config"]["shards"] == 1
    assert doc["config"]["inbox_capacity"] >= 1
    for name in KERNEL_BENCHES:
        result = doc["results"][name]
        assert result["wall_s"] > 0
        throughputs = [v for k, v in result.items() if k.endswith("_per_s")]
        assert throughputs and all(v > 0 for v in throughputs)


def test_e2e_bench_smoke():
    doc = run_e2e_bench("smoke")
    results = doc["results"]
    (kind, until), = BENCH_SCALES["smoke"]["e2e"]
    assert kind == "q7"
    assert results["sim_seconds"] == until
    assert results["source_records"] > 0
    assert results["sink_records"] > 0
    assert results["records_per_sec"] > 0


def test_paper_scale_declares_all_three_workloads():
    scenarios = dict(BENCH_SCALES["paper"]["e2e"])
    assert scenarios == {"q7": 600.0, "q8": 600.0, "twitch": 1000.0}


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_kernel_bench("galactic")
    with pytest.raises(ValueError, match="unknown bench scale"):
        run_e2e_bench("galactic")
    with pytest.raises(ValueError, match="unknown bench scale"):
        write_bench_files(output_dir="/tmp", scale="galactic")


def test_bad_best_of_rejected(tmp_path):
    with pytest.raises(ValueError, match="best_of must be >= 1"):
        write_bench_files(output_dir=str(tmp_path), best_of=0)


def test_bad_stat_rejected():
    with pytest.raises(ValueError, match="unknown stat"):
        run_kernel_bench("smoke", best_of=1, stat="p99")


def test_write_bench_files_embeds_baseline(tmp_path):
    written = write_bench_files(output_dir=str(tmp_path), scale="smoke")
    assert set(written) == {"kernel", "e2e"}
    import json

    for name, path in written.items():
        with open(path) as f:
            doc = json.load(f)
        assert doc["bench"] == name
        assert "pre_pr" in doc
        assert "speedup_vs_pre_pr" in doc


def test_median_stat_picks_a_real_run():
    doc = run_kernel_bench("smoke", best_of=3, stat="median")
    assert doc["best_of"] == 3
    assert doc["stat"] == "median"
    for name in KERNEL_BENCHES:
        assert doc["results"][name]["wall_s"] > 0


def _fake_kernel_doc():
    return {
        "schema": BENCH_SCHEMA, "bench": "kernel", "scale": "smoke",
        "results": {
            "callback_chain": {"callbacks": 100, "wall_s": 0.1,
                               "callbacks_per_s": 1000.0},
            "channel_throughput": {"elements": 100, "wall_s": 0.1,
                                   "elements_per_s": 1000.0,
                                   "kernel_events": 500},
        },
    }


def test_compare_passes_within_threshold():
    base = _fake_kernel_doc()
    current = copy.deepcopy(base)
    current["results"]["callback_chain"]["callbacks_per_s"] = 950.0
    rows, regressions = compare_bench_docs(current, base, threshold=0.10)
    assert regressions == []
    assert {r["bench"] for r in rows} >= {"callback_chain",
                                          "channel_throughput"}
    assert not any(r["regressed"] for r in rows)


def test_compare_flags_regression_past_threshold():
    base = _fake_kernel_doc()
    current = copy.deepcopy(base)
    current["results"]["channel_throughput"]["elements_per_s"] = 800.0
    rows, regressions = compare_bench_docs(current, base, threshold=0.10)
    assert len(regressions) == 1
    assert "channel_throughput.elements_per_s" in regressions[0]
    table = format_delta_table(rows)
    assert "REGRESSED" in table
    markdown = format_delta_table(rows, markdown=True)
    assert markdown.startswith("| bench |")


def test_compare_reports_event_count_drift_without_failing():
    base = _fake_kernel_doc()
    current = copy.deepcopy(base)
    current["results"]["channel_throughput"]["kernel_events"] = 499
    rows, regressions = compare_bench_docs(current, base)
    assert regressions == []
    drift = [r for r in rows if r["metric"] == "kernel_events"]
    assert len(drift) == 1 and drift[0]["current"] == 499


def test_compare_rejects_scale_mismatch():
    base = _fake_kernel_doc()
    current = copy.deepcopy(base)
    current["scale"] = "full"
    with pytest.raises(ValueError, match="scale mismatch"):
        compare_bench_docs(current, base)


def test_compare_e2e_records_per_sec():
    base = {"schema": BENCH_SCHEMA, "bench": "e2e", "scale": "smoke",
            "results": {"records_per_sec": 1000.0, "kernel_events": 7}}
    current = copy.deepcopy(base)
    current["results"]["records_per_sec"] = 500.0
    rows, regressions = compare_bench_docs(current, base)
    assert len(regressions) == 1
    assert "e2e_q7.records_per_sec" in regressions[0]


def test_compare_e2e_paper_multi_scenario():
    """The nested paper-scale e2e shape compares per scenario."""
    base = {"schema": BENCH_SCHEMA, "bench": "e2e", "scale": "paper",
            "results": {
                "q7": {"records_per_sec": 1000.0, "kernel_events": 7},
                "q8": {"records_per_sec": 400.0, "kernel_events": 9},
                "twitch": {"records_per_sec": 600.0, "kernel_events": 11},
            }}
    current = copy.deepcopy(base)
    current["results"]["q8"]["records_per_sec"] = 200.0
    current["results"]["twitch"]["kernel_events"] = 12
    rows, regressions = compare_bench_docs(current, base)
    assert len(regressions) == 1
    assert "e2e_q8.records_per_sec" in regressions[0]
    drift = [r for r in rows if r["metric"] == "kernel_events"]
    assert [r["bench"] for r in drift] == ["e2e_twitch"]


def test_config_mismatch_warnings_flag_divergent_configs():
    """Comparing runs measured under different engine configs must warn
    (scheduler, plane, batch size, shards, inbox capacity) — never diff
    silently."""
    current = {"config": {"scheduler": "calendar", "record_plane": "columnar",
                          "max_batch_size": 64, "shards": 4,
                          "inbox_capacity": 256}}
    baseline = {"config": {"scheduler": "heap", "record_plane": "columnar",
                           "max_batch_size": 64, "shards": 1,
                           "inbox_capacity": 32}}
    warnings = config_mismatch_warnings(current, baseline)
    text = "\n".join(warnings)
    assert "scheduler" in text
    assert "shards" in text
    assert "inbox_capacity" in text
    assert "record_plane" not in text
    assert "max_batch_size" not in text


def test_config_mismatch_warnings_empty_when_identical():
    doc = {"config": {"scheduler": "heap", "record_plane": "batched",
                      "max_batch_size": 64, "shards": 1,
                      "inbox_capacity": 32}}
    assert config_mismatch_warnings(doc, copy.deepcopy(doc)) == []


def test_config_mismatch_warnings_handle_old_schema_baselines():
    """/2-era baselines never recorded shards/inbox_capacity: warn about
    the absence rather than treating it as a match or crashing."""
    current = {"config": {"scheduler": "heap", "record_plane": "batched",
                          "max_batch_size": 64, "shards": 2,
                          "inbox_capacity": 256}}
    baseline = {"config": {"record_plane": "batched", "max_batch_size": 64}}
    warnings = config_mismatch_warnings(current, baseline)
    text = "\n".join(warnings)
    assert "does not record" in text
    assert "shards" in text and "scheduler" in text


def test_format_config_renders_compare_keys():
    doc = {"config": {"scheduler": "heap", "record_plane": "batched",
                      "max_batch_size": 64, "shards": 1,
                      "inbox_capacity": 32}}
    line = format_config(doc)
    for key in ("scheduler='heap'", "record_plane='batched'",
                "max_batch_size=64", "shards=1", "inbox_capacity=32"):
        assert key in line
    assert format_config({}) == "(no config recorded)"
