"""The elasticity control loop: sample → decide → actuate via DRRS.

:class:`AutoscaleController` runs *inside* the simulation as a periodic
control process.  Every ``interval`` simulated seconds it samples
:class:`~.signals.ScalingSignals`, asks its policy for a decision, and —
when the data plane is quiet — turns the decision into a DRRS subscale
operation through the existing :class:`~..core.drrs.DRRSController`.

Serialization with the rest of the control plane is the controller's
whole job:

* while its **own rescale is in flight** (the done event from
  ``request_rescale`` is pending — which, under fault injection, spans
  any abort → rollback → retry cycle DRRS runs internally), new
  decisions are *deferred*: logged, coalesced into at most one pending
  target, and re-evaluated against fresh signals once the operation
  settles;
* while **failure recovery** owns the job (``job.recovery_barrier``
  pending) or **any other scaler is active** (``job.scaling_active``),
  decisions are deferred the same way — the autoscaler never stacks a
  subscale on top of a recovery or a manually triggered rescale.

Every sample, decision, deferral, completion and failure is appended to
a **decision log** of plain dicts.  The log is a pure function of the
seeded simulation, so tests assert it verbatim and identically-seeded
runs produce byte-identical JSON.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..engine.runtime import StreamJob
from ..scaling.base import ScalingController
from .policy import AutoscalePolicy, ScalingDecision
from .signals import ScalingSignals

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Periodic closed-loop elasticity controller over one operator."""

    def __init__(self, job: StreamJob, controller: ScalingController,
                 operator: str, policy: AutoscalePolicy,
                 signals: Optional[ScalingSignals] = None,
                 interval: float = 2.0, warmup: float = 0.0):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.job = job
        self.sim = job.sim
        self.controller = controller
        self.operator = operator
        self.policy = policy
        self.signals = signals or ScalingSignals(job, operator)
        self.interval = interval
        self.warmup = warmup
        self._log: List[dict] = []
        self._proc = None
        self._stopped = False
        #: Done event of our own in-flight rescale (None when idle).
        self._inflight = None
        self._inflight_target: Optional[int] = None
        #: Latest decision deferred while the plane was busy (coalesced).
        self._pending: Optional[ScalingDecision] = None
        self.rescales_issued = 0
        self.rescales_completed = 0
        self.rescales_failed = 0
        self.decisions_deferred = 0
        #: ∫ parallelism dt for the controlled operator (cost metric).
        self.instance_seconds = 0.0
        self._cost_time: Optional[float] = None
        self._cost_parallelism = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Spawn the periodic control process (idempotent)."""
        if self._proc is None:
            # Open the instance-seconds integral at start time, not first
            # tick: the warm-up span is billed at the launch parallelism.
            self._accrue_cost()
            self._proc = self.sim.spawn(self._loop(),
                                        name=f"autoscale:{self.operator}")
        return self._proc

    def stop(self) -> None:
        self._stopped = True

    def _loop(self):
        if self.warmup > 0:
            yield self.sim.timeout(self.warmup)
        self._accrue_cost()
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            if self._stopped:
                break
            self._tick()

    # -- cost accounting ------------------------------------------------------

    def _accrue_cost(self) -> None:
        """Integrate parallelism over time (piecewise-constant left)."""
        now = self.sim.now
        if self._cost_time is not None:
            self.instance_seconds += (
                self._cost_parallelism * (now - self._cost_time))
        self._cost_time = now
        self._cost_parallelism = len(self.job.instances(self.operator))

    def finalize(self) -> None:
        """Close the instance-seconds integral at the current sim time."""
        self._accrue_cost()

    # -- the control loop body ------------------------------------------------

    def _tick(self) -> None:
        self._accrue_cost()
        snapshot = self.signals.sample()
        if len(self.signals.history) < self.policy.min_samples:
            return  # EWMA windows still cold: no decisions yet
        # The policy sees every sample, busy or not: hold counters and
        # calibration keep accumulating across deferral windows.
        decision = self.policy.decide(snapshot, self.signals.history)
        busy = self._busy_reason()
        if busy is not None:
            if decision is not None:
                self._pending = decision  # coalesce: latest wins
                self.decisions_deferred += 1
                self._record("defer", reason=busy,
                             target=decision.target, kind=decision.kind,
                             why=decision.reason)
            return
        if decision is None and self._pending is not None:
            # The plane cleared but the policy is quiet (cooldown,
            # hysteresis reset): re-issue the coalesced target if it is
            # still a change against the *current* parallelism.
            if self._pending.target != snapshot.parallelism:
                decision = ScalingDecision(
                    self._pending.target, self._pending.kind,
                    "coalesced: " + self._pending.reason)
        self._pending = None
        if decision is None or decision.target == snapshot.parallelism:
            return
        self._issue(decision, snapshot)

    def _busy_reason(self) -> Optional[str]:
        if self._inflight is not None and not self._inflight.triggered:
            return "controller-rescale-in-flight"
        barrier = self.job.recovery_barrier
        if barrier is not None and not barrier.triggered:
            return "failure-recovery"
        if self.controller.active or self.job.scaling_active:
            return "other-scaler-active"
        return None

    def _issue(self, decision: ScalingDecision, snapshot) -> None:
        self.rescales_issued += 1
        self._record("decide", kind=decision.kind,
                     **{"from": snapshot.parallelism},
                     target=decision.target, why=decision.reason)
        done = self.controller.request_rescale(self.operator,
                                               decision.target)
        self._inflight = done
        self._inflight_target = decision.target
        if self.job.telemetry is not None:
            self.job.telemetry.registry.counter(
                "autoscale.decisions", operator=self.operator,
                kind=decision.kind).inc()
        self.sim.spawn(self._watch(done, decision),
                       name=f"autoscale-watch:{self.operator}")

    def _watch(self, done, decision: ScalingDecision):
        """Wait out our rescale — including any DRRS abort/retry cycles,
        which keep the same done event pending — and settle the log."""
        issued_at = self.sim.now
        try:
            yield done
        except Exception as error:
            self.rescales_failed += 1
            self._record("failed", target=decision.target,
                         error=str(error))
            if self.job.telemetry is not None:
                self.job.telemetry.registry.counter(
                    "autoscale.rescales_failed",
                    operator=self.operator).inc()
        else:
            self.rescales_completed += 1
            self._accrue_cost()
            self.policy.note_applied(self.sim.now, decision.target)
            self._record("complete", target=decision.target,
                         took=round(self.sim.now - issued_at, 6))
            if self.job.telemetry is not None:
                self.job.telemetry.registry.counter(
                    "autoscale.rescales_completed",
                    operator=self.operator).inc()
        finally:
            if self._inflight is done:
                self._inflight = None
                self._inflight_target = None

    # -- reporting ------------------------------------------------------------

    def _record(self, event: str, **fields) -> None:
        entry = {"t": round(self.sim.now, 6), "event": event}
        entry.update(fields)
        self._log.append(entry)

    def decision_log(self) -> List[dict]:
        """The decision log as JSON-safe dicts (copy; stable order)."""
        return [dict(entry) for entry in self._log]

    def decision_log_json(self) -> str:
        return json.dumps(self._log, sort_keys=True)

    def summary(self) -> dict:
        self.finalize()
        return {
            "operator": self.operator,
            "policy": self.policy.name,
            "interval": self.interval,
            "rescales_issued": self.rescales_issued,
            "rescales_completed": self.rescales_completed,
            "rescales_failed": self.rescales_failed,
            "decisions_deferred": self.decisions_deferred,
            "instance_seconds": round(self.instance_seconds, 3),
            "final_parallelism": len(self.job.instances(self.operator)),
            "decisions": self.decision_log(),
        }
