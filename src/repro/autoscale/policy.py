"""Pluggable scaling policies: signals in, parallelism targets out.

A policy is a pure decision function over :class:`~.signals.SignalSnapshot`
histories — it never touches the job and never schedules events, so every
policy is deterministic given the signal stream.  The
:class:`~.controller.AutoscaleController` owns actuation (issuing DRRS
subscales, serializing with in-flight operations); policies own *when and
how far* to move.

Shared semantics (see ``docs/autoscaling.md``):

* **hysteresis** — scale-out and scale-in trigger on different thresholds
  with a target utilisation between them, so the post-scaling operating
  point does not immediately re-trigger the opposite decision;
* **hold** — a threshold must be breached for ``hold_ticks`` consecutive
  samples before a decision fires (single-sample noise never rescales);
* **cooldown** — after an applied rescale, no further decision for
  ``cooldown`` simulated seconds (scale-in waits ``cooldown_in``, which
  defaults longer: shedding capacity too eagerly oscillates);
* **bounds** — targets clamp to ``[min_parallelism, max_parallelism]``.

Shipped policies:

* :class:`UtilizationThresholdPolicy` — reactive, on per-instance busy
  fraction (max by default: robust under key skew).
* :class:`QueueDepthPolicy` — reactive, on per-instance logical queue
  depth plus admission backlog (useful when service times are unknown).
* :class:`PredictivePolicy` — forecasts the arrival rate by a least-squares
  trend over recent samples and scales *ahead* of the ramp, sizing from a
  self-calibrated work-per-record estimate (DS2-style useful work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .signals import SignalSnapshot

__all__ = ["ScalingDecision", "AutoscalePolicy",
           "UtilizationThresholdPolicy", "QueueDepthPolicy",
           "PredictivePolicy", "make_policy", "POLICY_NAMES"]


@dataclass
class ScalingDecision:
    """What a policy wants done, and why (for the decision log)."""

    target: int
    kind: str  # "scale-out" | "scale-in"
    reason: str

    def to_dict(self) -> dict:
        return {"target": self.target, "kind": self.kind,
                "reason": self.reason}


class AutoscalePolicy:
    """Base: bounds, hysteresis bookkeeping, cooldown clocks."""

    name = "abstract"

    def __init__(self, min_parallelism: int = 1,
                 max_parallelism: int = 64,
                 cooldown: float = 20.0,
                 cooldown_in: Optional[float] = None,
                 hold_ticks: int = 2,
                 min_samples: int = 6):
        if min_parallelism < 1:
            raise ValueError("min_parallelism must be >= 1")
        if max_parallelism < min_parallelism:
            raise ValueError("max_parallelism must be >= min_parallelism")
        if hold_ticks < 1:
            raise ValueError("hold_ticks must be >= 1")
        self.min_parallelism = min_parallelism
        self.max_parallelism = max_parallelism
        self.cooldown = cooldown
        #: Scale-in cooldown; defaults to 2x the scale-out cooldown.
        self.cooldown_in = (cooldown_in if cooldown_in is not None
                            else 2.0 * cooldown)
        self.hold_ticks = hold_ticks
        #: Snapshots required before any decision: the EWMA windows must
        #: fill before smoothed values mean anything (cold windows read
        #: as idle and would trigger a bogus launch-time scale-in).
        self.min_samples = min_samples
        self._last_applied: float = float("-inf")
        self._over = 0
        self._under = 0

    # -- controller callbacks -------------------------------------------------

    def note_applied(self, time: float, target: int) -> None:
        """The controller committed a rescale this policy asked for."""
        self._last_applied = time
        self._over = 0
        self._under = 0

    def _cooling(self, now: float, kind: str) -> bool:
        wait = self.cooldown if kind == "scale-out" else self.cooldown_in
        return now - self._last_applied < wait

    def _clamp(self, target: int) -> int:
        return max(self.min_parallelism,
                   min(self.max_parallelism, target))

    # -- interface ------------------------------------------------------------

    def decide(self, snapshot: SignalSnapshot,
               history: List[SignalSnapshot]
               ) -> Optional[ScalingDecision]:
        """Return a decision, or None to hold.  Called once per tick."""
        raise NotImplementedError


class UtilizationThresholdPolicy(AutoscalePolicy):
    """Reactive scale on sustained per-instance busy fraction.

    Scale-out sizes to ``ceil(parallelism * busy / target)`` — enough
    capacity that the *measured* load lands at the target utilisation.
    Scale-in uses the mean (a single idle instance must not shed
    capacity the hot ones need) and the same proportional sizing.
    """

    name = "utilization"

    def __init__(self, high: float = 0.80, low: float = 0.35,
                 target: float = 0.60, metric: str = "max", **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < low < target < high:
            raise ValueError("need 0 < low < target < high")
        if metric not in ("max", "mean"):
            raise ValueError(f"unknown metric {metric!r}")
        self.high = high
        self.low = low
        self.target = target
        self.metric = metric

    def _signal(self, snapshot: SignalSnapshot) -> float:
        key = "busy_max" if self.metric == "max" else "busy_mean"
        return snapshot.ewma.get(key, getattr(snapshot, key))

    def decide(self, snapshot, history):
        now = snapshot.time
        busy = self._signal(snapshot)
        current = snapshot.parallelism
        if busy > self.high:
            self._over += 1
            self._under = 0
        elif busy < self.low:
            self._under += 1
            self._over = 0
        else:
            self._over = 0
            self._under = 0
        if self._over >= self.hold_ticks \
                and not self._cooling(now, "scale-out"):
            # Proportional sizing on the trigger metric itself: enough
            # instances that the *hottest* one lands at the target (under
            # key skew the hot instance, not the mean, bounds latency).
            target = self._clamp(max(
                current + 1,
                math.ceil(current * busy / self.target)))
            if target > current:
                return ScalingDecision(
                    target, "scale-out",
                    f"{self.metric} busy {busy:.2f} > {self.high:.2f} "
                    f"for {self._over} ticks")
        if self._under >= self.hold_ticks \
                and not self._cooling(now, "scale-in"):
            target = self._clamp(max(
                1, math.ceil(current * busy / self.target)))
            if target < current:
                return ScalingDecision(
                    target, "scale-in",
                    f"{self.metric} busy {busy:.2f} < {self.low:.2f} "
                    f"for {self._under} ticks")
        return None


class QueueDepthPolicy(AutoscalePolicy):
    """Reactive scale on sustained per-instance logical queue depth.

    The signal is ``(operator inbox depth + admission backlog) /
    parallelism`` — the nanofaas ``queueDepth`` shape.  Above
    ``high_depth`` for the hold period, scale out proportionally to the
    overflow; below ``low_depth`` (and with no admission backlog), scale
    in one step at a time.
    """

    name = "queue-depth"

    def __init__(self, high_depth: float = 24.0, low_depth: float = 2.0,
                 step_in: int = 1, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 <= low_depth < high_depth:
            raise ValueError("need 0 <= low_depth < high_depth")
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.step_in = step_in

    @staticmethod
    def _depth(snapshot: SignalSnapshot) -> float:
        total = snapshot.queue_depth + snapshot.admission_backlog
        return total / max(snapshot.parallelism, 1)

    def decide(self, snapshot, history):
        now = snapshot.time
        depth = self._depth(snapshot)
        current = snapshot.parallelism
        if depth > self.high_depth:
            self._over += 1
            self._under = 0
        elif depth < self.low_depth and snapshot.admission_backlog == 0:
            self._under += 1
            self._over = 0
        else:
            self._over = 0
            self._under = 0
        if self._over >= self.hold_ticks \
                and not self._cooling(now, "scale-out"):
            # Each extra instance drains roughly one instance-share of the
            # overflow; bound the jump to doubling per decision.
            overflow = depth / self.high_depth
            target = self._clamp(min(
                2 * current, max(current + 1, int(current * overflow))))
            if target > current:
                return ScalingDecision(
                    target, "scale-out",
                    f"queue depth/instance {depth:.1f} > "
                    f"{self.high_depth:.1f} for {self._over} ticks")
        if self._under >= self.hold_ticks \
                and not self._cooling(now, "scale-in"):
            target = self._clamp(current - self.step_in)
            if target < current:
                return ScalingDecision(
                    target, "scale-in",
                    f"queue depth/instance {depth:.1f} < "
                    f"{self.low_depth:.1f} for {self._under} ticks")
        return None


class PredictivePolicy(AutoscalePolicy):
    """Forecast the arrival rate; scale ahead of the ramp.

    Fits a least-squares line to the last ``fit_samples`` smoothed
    source-rate samples and extrapolates ``lead_time`` seconds ahead —
    roughly the time a DRRS rescale plus signal hold would take, so
    capacity lands *before* the load does.  Required parallelism comes
    from a self-calibrated **work-per-record** estimate: operator busy
    seconds accrued per source record (EWMA), which transparently folds
    in upstream filtering and per-record cost without configuration.

    Falls back to reactive utilisation behaviour when the forecast has
    nothing to say (flat trend), so steady-state behaviour matches the
    reactive policy and the *difference* is purely ramp anticipation.
    """

    name = "predictive"

    def __init__(self, target: float = 0.60, high: float = 0.80,
                 low: float = 0.35, lead_time: float = 15.0,
                 fit_samples: int = 5, min_rate_gain: float = 1.08,
                 calibration_alpha: float = 0.3, metric: str = "max",
                 **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < low < target < high:
            raise ValueError("need 0 < low < target < high")
        if fit_samples < 2:
            raise ValueError("fit_samples must be >= 2")
        self.target = target
        self.high = high
        self.low = low
        self.lead_time = lead_time
        self.fit_samples = fit_samples
        #: Forecast must exceed the current rate by this factor to count
        #: as a ramp (deadband against trend noise).
        self.min_rate_gain = min_rate_gain
        self.calibration_alpha = calibration_alpha
        #: EWMA of operator-busy-seconds per source record.
        self._work_per_record: Optional[float] = None
        self._reactive = UtilizationThresholdPolicy(
            high=high, low=low, target=target, metric=metric,
            min_parallelism=self.min_parallelism,
            max_parallelism=self.max_parallelism,
            cooldown=self.cooldown, cooldown_in=self.cooldown_in,
            hold_ticks=self.hold_ticks,
            min_samples=self.min_samples)

    def note_applied(self, time: float, target: int) -> None:
        super().note_applied(time, target)
        self._reactive.note_applied(time, target)

    # -- calibration ----------------------------------------------------------

    def _calibrate(self, snapshot: SignalSnapshot,
                   history: List[SignalSnapshot]) -> None:
        if len(history) < 2:
            return
        previous = history[-2]
        interval = snapshot.time - previous.time
        if interval <= 0 or snapshot.source_rate <= 0:
            return
        records = snapshot.source_rate * interval
        busy_seconds = snapshot.busy_mean * snapshot.parallelism * interval
        if records < 1.0 or busy_seconds <= 0:
            return
        sample = busy_seconds / records
        if self._work_per_record is None:
            self._work_per_record = sample
        else:
            self._work_per_record += self.calibration_alpha * (
                sample - self._work_per_record)

    # -- forecasting ----------------------------------------------------------

    def _forecast_rate(self, history: List[SignalSnapshot]
                       ) -> Optional[float]:
        tail = history[-self.fit_samples:]
        if len(tail) < self.fit_samples:
            return None
        xs = [s.time for s in tail]
        ys = [s.ewma.get("source_rate", s.source_rate) for s in tail]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var = sum((x - mean_x) ** 2 for x in xs)
        if var <= 0:
            return None
        slope = sum((x - mean_x) * (y - mean_y)
                    for x, y in zip(xs, ys)) / var
        horizon = xs[-1] + self.lead_time
        return max(0.0, mean_y + slope * (horizon - mean_x))

    def required_parallelism(self, rate: float) -> Optional[int]:
        if self._work_per_record is None:
            return None
        need = rate * self._work_per_record / self.target
        return self._clamp(max(1, math.ceil(need)))

    # -- decision -------------------------------------------------------------

    def decide(self, snapshot, history):
        self._calibrate(snapshot, history)
        now = snapshot.time
        current = snapshot.parallelism
        forecast = self._forecast_rate(history)
        current_rate = snapshot.ewma.get("source_rate",
                                         snapshot.source_rate)
        if (forecast is not None and current_rate > 0
                and forecast > current_rate * self.min_rate_gain
                and not self._cooling(now, "scale-out")):
            required = self.required_parallelism(forecast)
            if required is not None and required > current:
                return ScalingDecision(
                    required, "scale-out",
                    f"forecast {forecast:.0f} rec/s in "
                    f"{self.lead_time:.0f}s (now {current_rate:.0f}), "
                    f"work/record {self._work_per_record * 1e6:.0f}us")
        # Steady state and scale-in: behave exactly like the reactive
        # utilisation policy (shared cooldown clocks via note_applied).
        fallback = self._reactive.decide(snapshot, history)
        if fallback is None:
            return None
        if (fallback.kind == "scale-in" and forecast is not None
                and current_rate > 0 and forecast > current_rate):
            # The trend says load is about to rise: shedding the capacity
            # we pre-provisioned would undo the anticipation.
            return None
        fallback.reason = "reactive-fallback: " + fallback.reason
        return fallback


POLICY_NAMES = ("utilization", "queue-depth", "predictive")


def make_policy(name: str, **kwargs) -> AutoscalePolicy:
    """Policy factory used by the CLI and the experiments."""
    if name == "utilization":
        return UtilizationThresholdPolicy(**kwargs)
    if name == "queue-depth":
        return QueueDepthPolicy(**kwargs)
    if name == "predictive":
        return PredictivePolicy(**kwargs)
    raise ValueError(
        f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")
