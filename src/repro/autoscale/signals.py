"""Scaling signals: the telemetry taps the elasticity control loop reads.

:class:`ScalingSignals` is the sensor half of the autoscaler — the
``ScalingMetricsSource`` role in control planes like nanofaas
(queueDepth / inFlight → setEffectiveConcurrency).  Each call to
:meth:`ScalingSignals.sample` reads the running job *without scheduling
any simulation events* and folds the raw taps into rolling windows with
EWMA smoothing:

* **per-instance busy fraction** — delta of ``OperatorInstance.
  busy_seconds`` over the sampling interval, per live instance (max and
  mean are the policy-facing aggregates; max is robust under key skew);
* **channel queue depth** — visibility-aware logical depth of the
  operator's input channels plus the source admission backlog;
* **backpressure stall** — senders into the operator currently blocked on
  a full output cache, integrated over time into ``stall_seconds``;
* **watermark lag** — how far the operator's event-time frontier trails
  the simulation clock;
* **source rate** — physical records/s emitted by the sources (the
  arrival-rate signal the predictive policy forecasts).

Sampling tolerates **instance churn**: rescales create and destroy
instances between samples, so per-instance cursors are keyed by live
object identity and pruned every sample — no registrations leak across
subscales, and an instance re-created at the same index gets a fresh
cursor (stable signal identity by instance *name*).

The sampler never mutates engine state; when the job has telemetry
enabled it additionally publishes each aggregate as ``autoscale.*``
gauges so traces and experiments can correlate decisions with signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.runtime import StreamJob

__all__ = ["SignalSnapshot", "EwmaWindow", "ScalingSignals"]


@dataclass
class SignalSnapshot:
    """One sampling instant, raw and smoothed, as the policies see it."""

    time: float
    operator: str
    parallelism: int
    #: Busy fraction over the last interval, per live instance (by name,
    #: sorted) — max/mean are derived from exactly these values.
    busy_by_instance: Dict[str, float] = field(default_factory=dict)
    busy_max: float = 0.0
    busy_mean: float = 0.0
    #: Logical elements queued at the operator's input channels.
    queue_depth: int = 0
    #: Elements waiting in source admission queues (consumer lag proxy).
    admission_backlog: int = 0
    #: Channels into the operator whose sender is blocked right now.
    blocked_channels: int = 0
    #: Cumulative blocked-channel-seconds since the sampler started.
    stall_seconds: float = 0.0
    #: Seconds the operator's watermark frontier trails the sim clock.
    watermark_lag: float = 0.0
    #: Physical records/s emitted by the sources over the last interval.
    source_rate: float = 0.0
    #: EWMA-smoothed aggregates (same keys as the raw fields).
    ewma: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "t": round(self.time, 6),
            "parallelism": self.parallelism,
            "busy_max": round(self.busy_max, 6),
            "busy_mean": round(self.busy_mean, 6),
            "queue_depth": self.queue_depth,
            "admission_backlog": self.admission_backlog,
            "blocked_channels": self.blocked_channels,
            "stall_seconds": round(self.stall_seconds, 6),
            "watermark_lag": round(self.watermark_lag, 6),
            "source_rate": round(self.source_rate, 3),
            "ewma": {k: round(v, 6) for k, v in sorted(self.ewma.items())},
        }


class EwmaWindow:
    """Rolling window of the last N samples plus an EWMA of all of them.

    ``alpha`` is the weight of the newest sample; the EWMA seeds with the
    first sample (no zero-bias warm-up).
    """

    def __init__(self, size: int = 6, alpha: float = 0.4):
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.size = size
        self.alpha = alpha
        self.samples: List[float] = []
        self.ewma: Optional[float] = None

    def push(self, value: float) -> float:
        self.samples.append(value)
        if len(self.samples) > self.size:
            self.samples.pop(0)
        if self.ewma is None:
            self.ewma = value
        else:
            self.ewma += self.alpha * (value - self.ewma)
        return self.ewma

    @property
    def full(self) -> bool:
        return len(self.samples) >= self.size

    @property
    def mean(self) -> float:
        return (sum(self.samples) / len(self.samples)
                if self.samples else 0.0)

    @property
    def latest(self) -> float:
        return self.samples[-1] if self.samples else 0.0

    def count_above(self, threshold: float) -> int:
        return sum(1 for v in self.samples if v > threshold)

    def count_below(self, threshold: float) -> int:
        return sum(1 for v in self.samples if v < threshold)


#: The aggregates every snapshot smooths.
_SMOOTHED = ("busy_max", "busy_mean", "queue_depth", "watermark_lag",
             "source_rate")


class ScalingSignals:
    """Samples one operator's live signals into EWMA rolling windows."""

    def __init__(self, job: StreamJob, operator: str,
                 window: int = 6, alpha: float = 0.4,
                 history_limit: int = 4096):
        if operator not in job.graph.operators:
            raise ValueError(f"unknown operator {operator!r}")
        self.job = job
        self.operator = operator
        self.windows: Dict[str, EwmaWindow] = {
            name: EwmaWindow(size=window, alpha=alpha) for name in _SMOOTHED}
        self.history: List[SignalSnapshot] = []
        self.history_limit = history_limit
        self.stall_seconds = 0.0
        #: id(instance) -> busy_seconds at the previous sample; pruned to
        #: live instances every sample (churn safety).
        self._busy_cursor: Dict[int, float] = {}
        self._last_time: Optional[float] = None
        #: Cursor into job.metrics source events (O(new events) per sample).
        self._source_cursor = 0
        self._last_blocked = 0

    # -- raw taps -------------------------------------------------------------

    def _instances(self):
        return self.job.instances(self.operator)

    def _queue_depth(self) -> int:
        return sum(len(channel) for inst in self._instances()
                   for channel in inst.input_channels)

    def _admission_backlog(self) -> int:
        return sum(source.backlog for source in self.job.sources())

    def _blocked_channels(self) -> int:
        blocked = 0
        for _sender, edge in self.job.senders_to(self.operator):
            for channel in edge.channels:
                if channel._send_waiters:
                    blocked += 1
        return blocked

    def _watermark_lag(self) -> float:
        now = self.job.sim.now
        frontier = min((inst.current_watermark
                        for inst in self._instances()),
                       default=float("-inf"))
        if frontier == float("-inf"):
            return 0.0  # no watermark seen yet: lag is undefined, not huge
        return max(0.0, now - frontier)

    def _source_delta(self) -> int:
        events = self.job.metrics._source_events
        total = 0
        for index in range(self._source_cursor, len(events)):
            total += events[index][1]
        self._source_cursor = len(events)
        return total

    # -- sampling -------------------------------------------------------------

    def sample(self) -> SignalSnapshot:
        """Read every tap, advance the windows, return the snapshot.

        The first sample establishes cursors and reports zero rates (there
        is no interval to rate over yet).
        """
        now = self.job.sim.now
        instances = self._instances()
        interval = (now - self._last_time
                    if self._last_time is not None else 0.0)

        busy: Dict[str, float] = {}
        live_ids = set()
        for inst in instances:
            key = id(inst)
            live_ids.add(key)
            prev = self._busy_cursor.get(key)
            if prev is None or interval <= 0:
                fraction = 0.0
            else:
                fraction = min(
                    max((inst.busy_seconds - prev) / interval, 0.0), 1.0)
            busy[inst.name] = fraction
            self._busy_cursor[key] = inst.busy_seconds
        # Prune cursors of decommissioned instances (churn safety).
        for key in [k for k in self._busy_cursor if k not in live_ids]:
            del self._busy_cursor[key]

        fractions = list(busy.values())
        blocked = self._blocked_channels()
        # Integrate stall time: the previous blocked count held (to first
        # order) for the interval that just elapsed.
        self.stall_seconds += self._last_blocked * interval
        self._last_blocked = blocked
        source_delta = self._source_delta()

        snapshot = SignalSnapshot(
            time=now,
            operator=self.operator,
            parallelism=len(instances),
            busy_by_instance=dict(sorted(busy.items())),
            busy_max=max(fractions) if fractions else 0.0,
            busy_mean=(sum(fractions) / len(fractions)
                       if fractions else 0.0),
            queue_depth=self._queue_depth(),
            admission_backlog=self._admission_backlog(),
            blocked_channels=blocked,
            stall_seconds=self.stall_seconds,
            watermark_lag=self._watermark_lag(),
            source_rate=(source_delta / interval if interval > 0 else 0.0),
        )
        for name in _SMOOTHED:
            snapshot.ewma[name] = self.windows[name].push(
                getattr(snapshot, name))
        self._last_time = now
        self.history.append(snapshot)
        if len(self.history) > self.history_limit:
            del self.history[:len(self.history) - self.history_limit]
        self._publish(snapshot)
        return snapshot

    def _publish(self, snapshot: SignalSnapshot) -> None:
        telemetry = self.job.telemetry
        if telemetry is None:
            return
        gauge = telemetry.registry.gauge
        op = self.operator
        gauge("autoscale.busy_max", operator=op).set(snapshot.busy_max)
        gauge("autoscale.busy_mean", operator=op).set(snapshot.busy_mean)
        gauge("autoscale.queue_depth", operator=op).set(
            snapshot.queue_depth)
        gauge("autoscale.admission_backlog", operator=op).set(
            snapshot.admission_backlog)
        gauge("autoscale.blocked_channels", operator=op).set(
            snapshot.blocked_channels)
        gauge("autoscale.stall_seconds", operator=op).set(
            snapshot.stall_seconds)
        gauge("autoscale.watermark_lag", operator=op).set(
            snapshot.watermark_lag)
        gauge("autoscale.source_rate", operator=op).set(
            snapshot.source_rate)

    # -- derived --------------------------------------------------------------

    def rate_history(self, samples: int) -> List[tuple]:
        """The last N ``(time, source_rate)`` pairs (forecasting input)."""
        tail = self.history[-samples:]
        return [(s.time, s.source_rate) for s in tail]
