"""Closed-loop autoscaling: an elasticity control plane over DRRS.

The subsystem has three layers (see ``docs/autoscaling.md``):

* :mod:`.signals` — :class:`ScalingSignals` samples one operator's live
  telemetry (busy fraction, queue depth, backpressure stalls, watermark
  lag, source rate) into EWMA-smoothed rolling windows;
* :mod:`.policy` — pluggable :class:`AutoscalePolicy` decision functions
  (reactive utilisation / queue-depth with hysteresis + cooldown +
  bounds, and a predictive arrival-rate forecaster);
* :mod:`.controller` — :class:`AutoscaleController`, the periodic
  control process that actuates decisions as DRRS subscale operations,
  serializing with in-flight rescales and failure recovery.
"""

from .controller import AutoscaleController
from .policy import (AutoscalePolicy, POLICY_NAMES, PredictivePolicy,
                     QueueDepthPolicy, ScalingDecision,
                     UtilizationThresholdPolicy, make_policy)
from .signals import EwmaWindow, ScalingSignals, SignalSnapshot

__all__ = [
    "AutoscaleController",
    "AutoscalePolicy",
    "EwmaWindow",
    "POLICY_NAMES",
    "PredictivePolicy",
    "QueueDepthPolicy",
    "ScalingDecision",
    "ScalingSignals",
    "SignalSnapshot",
    "UtilizationThresholdPolicy",
    "make_policy",
]
