"""Seeded randomness helpers used by workload generators.

Everything is built on ``random.Random`` instances passed around explicitly,
so experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence

__all__ = ["ZipfSampler", "make_rng", "exponential_interarrival"]


def make_rng(seed: int) -> random.Random:
    """A dedicated RNG stream for one component, derived from ``seed``."""
    return random.Random(seed)


def exponential_interarrival(rng: random.Random, rate: float) -> float:
    """Draw one exponential inter-arrival gap for a Poisson arrival process."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return rng.expovariate(rate)


class ZipfSampler:
    """Sample integers ``0..n-1`` from a Zipf(s) distribution.

    ``skew == 0.0`` degenerates to the uniform distribution, matching the
    paper's sensitivity-analysis parameterisation (skewness in
    ``[0.0, 0.5, 1.0, 1.5]``).  Sampling is O(log n) via a precomputed CDF.
    """

    def __init__(self, n: int, skew: float, rng: random.Random):
        if n < 1:
            raise ValueError("n must be >= 1")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        self.n = n
        self.skew = skew
        self._rng = rng
        weights = [1.0 / math.pow(rank, skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift
        self._cdf = cdf

    def sample(self) -> int:
        """Draw one value in ``[0, n)``; rank 0 is the most popular."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def probabilities(self) -> Sequence[float]:
        """The probability mass function, index = rank."""
        pmf = []
        prev = 0.0
        for c in self._cdf:
            pmf.append(c - prev)
            prev = c
        return pmf
