"""Single-producer single-consumer shared-memory byte ring.

The cut-edge data plane of the sharded kernel
(:mod:`repro.simulation.sharded`): the parent process creates one ring per
directed cut shard pair *before* forking, both workers inherit the mapping,
and cut-edge frames move as length-prefixed byte blobs through shared
memory instead of being pickled through a pipe.

Concurrency model — and why it is safe in pure Python:

* Exactly one writer process and one reader process per ring (the shard
  topology guarantees it: one ring per ordered ``(upstream, downstream)``
  pair).
* The write cursor is only ever stored by the writer, the read cursor only
  by the reader; each side keeps its own cursor in a local attribute and
  reads the *other* side's from shared memory.  Cursors are 4-byte aligned
  ``u32`` values (byte counts mod 2**32), so a cursor store is a single
  aligned 32-bit memcpy — effectively atomic on every platform the fork
  start method exists on; a reader can observe a stale cursor, never a
  torn one.
* The writer copies the payload into the data region *first* and publishes
  the advanced write cursor *after*; the reader never touches bytes beyond
  the published cursor.  (CPython executes these as separate bytecode ops
  with the usual x86/ARM store ordering for same-location word stores.)
* The ``blocked`` word is reader-owned (0/1) and purely advisory: the
  writer consults it to decide whether a bare grant is worth sending.  A
  stale read only delays a null message by one round — never a correctness
  issue, because the reader's wait loop re-polls with a bounded backoff.

Frames larger than the ring can never fit; :meth:`push_spill_marker`
writes a 4-byte in-band marker that tells the reader to fetch the payload
from the side channel (the legacy pipe), preserving frame order exactly.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import Optional, Union

__all__ = ["ShmRing", "SPILL", "DEFAULT_RING_BYTES"]

#: Default per-pair ring capacity.  Sized so several adaptive-quantum
#: bursts of paper-tier Twitch traffic fit without stalling the writer;
#: per-cut-edge ``ring_bytes`` hints in the partition plan override it.
DEFAULT_RING_BYTES = 1 << 22

_U32 = struct.Struct("<I")
#: Length sentinel marking an out-of-band (spilled) frame.
_SPILL_MARK = 0xFFFFFFFF
_MOD = 1 << 32

#: Header layout (64 bytes, data region follows):
#:   0  u32  write cursor (bytes ever pushed, mod 2**32) — writer-owned
#:   4  u32  read cursor (bytes ever consumed, mod 2**32) — reader-owned
#:   8  u32  blocked flag (reader sets 1 while waiting on this ring)
#:  12.. reserved
_HEADER = 64
_OFF_WRITE = 0
_OFF_READ = 4
_OFF_BLOCKED = 8


class _Spill:
    """Singleton sentinel returned by :meth:`ShmRing.pop` for spilled
    frames: the payload must be fetched from the side channel."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "<SPILL>"


SPILL = _Spill()


class ShmRing:
    """A bounded SPSC byte ring over ``multiprocessing.shared_memory``.

    Created by the parent before forking; both sides use the inherited
    object directly (the fork start method shares the mapping — nothing is
    pickled or re-attached).  The parent owns cleanup: :meth:`close` then
    :meth:`unlink` after the workers have exited.
    """

    __slots__ = ("shm", "buf", "capacity", "_w_local", "_r_local")

    def __init__(self, capacity: int = DEFAULT_RING_BYTES,
                 name: Optional[str] = None):
        if capacity < 64:
            raise ValueError(f"ring capacity must be >= 64, got {capacity}")
        self.capacity = capacity
        self.shm = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER + capacity)
        self.buf = self.shm.buf
        self.buf[:_HEADER] = bytes(_HEADER)
        #: Each side caches its own cursor — the authoritative copy of the
        #: *other* side's cursor always comes from shared memory.
        self._w_local = 0
        self._r_local = 0

    # -- cursor helpers ------------------------------------------------------

    def _read_u32(self, off: int) -> int:
        return _U32.unpack_from(self.buf, off)[0]

    def _store_u32(self, off: int, value: int) -> None:
        _U32.pack_into(self.buf, off, value & 0xFFFFFFFF)

    def used(self) -> int:
        """Bytes currently in the ring, from the writer's perspective."""
        return (self._w_local - self._read_u32(_OFF_READ)) % _MOD

    def reader_used(self) -> int:
        """Bytes currently readable, from the reader's perspective."""
        return (self._read_u32(_OFF_WRITE) - self._r_local) % _MOD

    # -- data plane ----------------------------------------------------------

    def _write_bytes(self, pos: int, data) -> None:
        """Copy ``data`` into the data region at ring offset ``pos``."""
        cap = self.capacity
        start = pos % cap
        end = start + len(data)
        if end <= cap:
            self.buf[_HEADER + start:_HEADER + end] = data
        else:
            split = cap - start
            self.buf[_HEADER + start:_HEADER + cap] = data[:split]
            self.buf[_HEADER:_HEADER + end - cap] = data[split:]

    def _read_bytes(self, pos: int, n: int) -> bytes:
        cap = self.capacity
        start = pos % cap
        end = start + n
        if end <= cap:
            return bytes(self.buf[_HEADER + start:_HEADER + end])
        split = cap - start
        return (bytes(self.buf[_HEADER + start:_HEADER + cap])
                + bytes(self.buf[_HEADER:_HEADER + end - cap]))

    def push(self, data) -> bool:
        """Append one length-prefixed frame.  False when it does not fit
        *right now* (writer-full backpressure: retry after the reader
        drains) — or ever (``len(data) + 4 > capacity``: spill instead).
        """
        need = len(data) + 4
        if need > self.capacity - (self.used()):
            return False
        w = self._w_local
        self._write_bytes(w, _U32.pack(len(data)))
        self._write_bytes(w + 4, data)
        self._w_local = (w + need) % _MOD
        self._store_u32(_OFF_WRITE, self._w_local)
        return True

    def push_spill_marker(self) -> bool:
        """Append the 4-byte out-of-band marker (payload rides the side
        channel).  Same full/retry contract as :meth:`push`."""
        if 4 > self.capacity - self.used():
            return False
        w = self._w_local
        self._write_bytes(w, _U32.pack(_SPILL_MARK))
        self._w_local = (w + 4) % _MOD
        self._store_u32(_OFF_WRITE, self._w_local)
        return True

    def pop(self) -> Union[bytes, _Spill, None]:
        """Consume the next frame: its bytes, :data:`SPILL` for an
        out-of-band marker, or None when the ring is empty."""
        avail = self.reader_used()
        if avail == 0:
            return None
        r = self._r_local
        (length,) = _U32.unpack(self._read_bytes(r, 4))
        if length == _SPILL_MARK:
            self._r_local = (r + 4) % _MOD
            self._store_u32(_OFF_READ, self._r_local)
            return SPILL
        if length > self.capacity - 4 or length + 4 > avail:
            raise RuntimeError(
                f"corrupt ring frame: length {length}, {avail} available "
                f"(capacity {self.capacity})")
        data = self._read_bytes(r + 4, length)
        self._r_local = (r + 4 + length) % _MOD
        self._store_u32(_OFF_READ, self._r_local)
        return data

    # -- blocked flag (reader-owned, advisory) -------------------------------

    def set_blocked(self, flag: bool) -> None:
        self._store_u32(_OFF_BLOCKED, 1 if flag else 0)

    def reader_blocked(self) -> bool:
        return self._read_u32(_OFF_BLOCKED) != 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (parent-side cleanup)."""
        self.buf = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def unlink(self) -> None:
        """Remove the backing segment (call once, from the creator)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
