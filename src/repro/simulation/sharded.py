"""Sharded multi-process kernel: conservative-lookahead partitioned runs.

The single-process kernel executes the whole operator graph in one event
loop; at paper scale the host CPU, not simulated time, is the bottleneck.
This module partitions the graph into contiguous topological segments
(:func:`repro.engine.routing.partition_graph`), runs each segment in its own
worker process on its own :class:`~repro.simulation.kernel.Simulator`, and
synchronizes the workers conservatively (Chandy–Misra–Bryant style):

* Every **cut edge** (an inter-shard operator edge) has strictly positive
  channel latency — the *lookahead*.  A record delivered into a downstream
  shard at simulated time ``t`` can cause an egress delivery no earlier
  than ``t`` (services and serialization are non-negative, the outgoing
  latency is positive), so grants never regress.
* Each worker repeatedly advances its local event loop to
  ``stop = min(safe, now + quantum)`` where ``safe = min(upstream grants)``
  — the null-message exchange.  A **grant** is a lower bound on the
  delivery time of any message the upstream shard may still send:
  ``min(local event queue head, staged ingress head, its own safe)``.
* Cross-shard record traffic is captured at the *sender's* simulated
  delivery time by a proxy input-channel endpoint (:class:`_Egress`) and
  re-injected at the *receiver* at exactly that time, in canonical
  ``(time, channel id, FIFO seq)`` order — so ``(time, seq)`` ordering on
  every cut channel is preserved.

The shard graph is feed-forward (contiguous topological segments), so the
first shard always progresses and the pipeline never deadlocks; speedup is
pipeline parallelism — all shards crunch different sim-time windows of the
same run concurrently.

**Flow-control caveat** (documented in docs/performance.md): cut channels
run with unbounded sender credits — receiver-side flow control cannot be
simulated conservatively without a feedback channel.  A post-hoc credit
ledger replays the single-process credit counter against the actual
delivery/consumption times and flags the run (``backpressure_safe=False``)
if backpressure *would* have engaged, in which case the sharded timing is
not equivalent to single-process and callers should fall back.

Barriers, checkpoints, rescale, fault injection, telemetry and autoscale
all require a single event loop and fall back to single-process execution
(:func:`supports_sharding` / the ``shards<=1`` path), mirroring the batched
plane's per-record fallback.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import multiprocessing
import os
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine.records import RecordBatch
from ..engine.routing import ShardPlan, partition_graph, topological_order

__all__ = [
    "ShardSpec",
    "ShardedRunResult",
    "run_sharded",
    "run_single_reference",
    "supports_sharding",
    "ShardingSupport",
    "collect_run_view",
    "plan_for_job",
]

#: Default sim-seconds a worker advances per synchronization pass.  Only
#: pipe-batching granularity — runahead is unbounded (feed-forward DAG).
DEFAULT_QUANTUM = 0.25


@dataclass(frozen=True)
class ShardingSupport:
    """Truthy verdict of :func:`supports_sharding`.

    Truthiness preserves the old boolean contract; when sharding is
    unsupported, :attr:`reason` carries a stable machine-readable code
    (``"controller"``, ``"telemetry"``, ``"faults"``,
    ``"changelog-async-uploads"``, ``"no-fork"``) and :attr:`detail` a
    human sentence — both end up in the fallback warning and in
    experiment reports.
    """

    supported: bool
    reason: Optional[str] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.supported


def supports_sharding(config=None, *, controller=None,
                      telemetry=False, faults=False) -> ShardingSupport:
    """Whether a run may use the multi-process kernel.

    Any feature that needs one global event loop (scaling controllers,
    telemetry probes, fault injection, the changelog backend's
    asynchronous segment uploads) degrades to single-process, as do
    platforms without the ``fork`` start method (the workers inherit the
    workload factory by forking).  Returns a truthy/falsy
    :class:`ShardingSupport`; falsy verdicts name the degradation.
    """
    if controller is not None:
        return ShardingSupport(
            False, "controller",
            "scaling controllers mutate the global assignment and need "
            "one event loop")
    if telemetry:
        return ShardingSupport(
            False, "telemetry",
            "telemetry probes sample across the whole job")
    if faults:
        return ShardingSupport(
            False, "faults",
            "fault injection coordinates crashes and recovery globally")
    if getattr(config, "state_backend", "dict") == "changelog":
        return ShardingSupport(
            False, "changelog-async-uploads",
            "the changelog backend spawns asynchronous segment-upload "
            "processes and upload listeners on the global loop")
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return ShardingSupport(
            False, "no-fork",
            "workers inherit the workload factory by forking")
    return ShardingSupport(True)


# ---------------------------------------------------------------------------
# Shard specs (pickled parent -> worker) and plan construction
# ---------------------------------------------------------------------------

@dataclass
class ShardSpec:
    """Everything one worker needs beyond the forked workload factory.

    Sent pickled over the worker's spec pipe (the workload factory itself
    rides the fork; the spec is genuinely serialized).
    """

    shard_id: int
    #: Operator names per shard, topological-contiguous (full plan — every
    #: worker derives the identical channel enumeration from it).
    shards: List[List[str]] = field(default_factory=list)
    until: float = 0.0
    quantum: float = DEFAULT_QUANTUM
    #: JobConfig fields (with ``shards`` forced to 1 for the local build).
    config_kwargs: Dict[str, Any] = field(default_factory=dict)
    collect_sinks: bool = False
    trace_watermarks: bool = False

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def _config_kwargs(config) -> Dict[str, Any]:
    # Not dataclasses.asdict — that would recurse into the nested
    # StateTransferCostModel and JobConfig(**kwargs) would get a dict.
    kwargs = {f.name: getattr(config, f.name)
              for f in dataclasses.fields(config)}
    kwargs["shards"] = 1
    return kwargs


def plan_for_job(job, num_shards: int,
                 weights: Optional[Dict[str, float]] = None,
                 forbidden_edges: Optional[set] = None) -> ShardPlan:
    """Partition a built job's graph using its *actual* channel latencies.

    The legality of a cut is decided by the minimum latency any physical
    channel of the edge has (instance placement can map one logical edge
    onto several links).  ``weights`` default to per-operator event counts
    when the job has run (telemetry probe / previous run), else uniform.
    ``forbidden_edges`` (edge names, ``"src->dst"``) are treated as
    zero-latency — i.e. never cut; :func:`run_sharded` uses this to
    replan around cut channels whose credit ledger showed single-process
    flow control would have engaged.
    """
    lat: Dict[str, float] = {}
    for op_name in job.graph.operators:
        for inst in job.instances(op_name):
            for edge in inst.router.edges:
                name = f"{op_name}->{edge.dst_op}"
                for ch in edge.channels:
                    cur = lat.get(name)
                    l = ch.link.latency
                    lat[name] = l if cur is None else min(cur, l)
    if weights is None:
        weights = operator_event_weights(job)
    forbidden = forbidden_edges or set()

    def edge_latency(e):
        if e.name in forbidden:
            return 0.0
        return lat.get(e.name, 0.0)

    return partition_graph(job.graph, num_shards, edge_latency,
                           weights=weights)


def operator_event_weights(job) -> Optional[Dict[str, float]]:
    """Per-operator event-count weights from a (probe) run's counters.

    Returns ``None`` when the job has not processed anything yet (fresh
    build) so the partitioner falls back to uniform weights.  Sources do
    not count records the way operators do; they are weighted like their
    heaviest direct consumer (they emit what the consumer processes).
    """
    counts: Dict[str, float] = {}
    for op_name in job.graph.operators:
        counts[op_name] = float(sum(
            inst.records_processed for inst in job.instances(op_name)))
    if not any(counts.values()):
        return None
    for spec in job.graph.sources():
        downstream = [counts.get(e.dst, 0.0)
                      for e in job.graph.out_edges(spec.name)]
        counts[spec.name] = max(downstream) if downstream else 1.0
    floor = max(counts.values()) * 0.01 + 1.0
    return {name: max(c, floor) for name, c in counts.items()}


# ---------------------------------------------------------------------------
# Channel enumeration (identical deterministic walk in every worker)
# ---------------------------------------------------------------------------

def _enumerate_channels(job) -> List[Tuple[int, str, str, object]]:
    """``[(channel_id, src_op, dst_op, Channel)]`` in deterministic order.

    Walk: operators in topological order, instances in index order, output
    edges in attach order, channels in attach order — every worker builds
    the same job the same way, so ids agree across processes.
    """
    out = []
    cid = 0
    for op_name in topological_order(job.graph):
        for inst in job.instances(op_name):
            for edge in inst.router.edges:
                for ch in edge.channels:
                    out.append((cid, op_name, edge.dst_op, ch))
                    cid += 1
    return out


# ---------------------------------------------------------------------------
# Proxy endpoints
# ---------------------------------------------------------------------------

class _Egress:
    """Sender-side stand-in for the receiver's InputChannel.

    The real Channel keeps simulating serialization and propagation; its
    delivery events call these methods at the exact per-element delivery
    times, which we capture (kind, channel id, time, element) for the pipe.
    Credit debits for the post-hoc flow-control ledger are reconstructed
    here: an element delivered at ``t`` left the outbox (consumed its
    credit) one serialization + propagation earlier.
    """

    __slots__ = ("cid", "sim", "buf", "latency", "bw", "debits")

    def __init__(self, cid: int, sim, buf: List, latency: float, bw: float,
                 debits: List):
        self.cid = cid
        self.sim = sim
        self.buf = buf
        self.latency = latency
        self.bw = bw
        self.debits = debits

    def deliver(self, element) -> None:
        now = self.sim._now
        size = getattr(element, "size_bytes", 0.0) or 0.0
        self.debits.append((now - self.latency - size / self.bw, 1))
        self.buf.append(("e", self.cid, now, element))

    def deliver_batch(self, batch) -> None:
        batch._columns = None  # numpy views don't cross the pipe
        head = batch.records[0]
        when = (batch.visible_times[0] - self.latency
                - head.size_bytes / self.bw)
        self.debits.append((when, len(batch.records)))
        self.buf.append(("b", self.cid, self.sim._now, batch))

    def deliver_control(self, element) -> None:
        # Control lane bypasses flow control: no debit.
        self.buf.append(("c", self.cid, self.sim._now, element))

    def total_depth(self) -> int:
        return 0


class _IngressFeed:
    """Receiver-side stand-in for the sending Channel.

    Keeps the real InputChannel; this object answers the two questions the
    consume side asks its backing channel:

    * ``_consume_arrival_bound``: "when can the next element arrive?" — we
      maintain a sentinel :class:`RecordBatch` on a fake one-element wire
      whose ``visible_times[0]`` is the bound: the earliest staged (known,
      not yet injected) message time, else the conservative floor (the
      current pass's stop — nothing can arrive below it).
    * credit returns (``pop``/``remove``/analytic-batch consumption) — we
      only *ledger* them (see module docstring): ``credits`` stays huge so
      formation on the sending side (in the other process) is never gated
      here, and return times are recorded for the post-hoc replay.
    """

    __slots__ = ("cid", "sim", "pending", "floor", "_sentinel", "_wire",
                 "credits", "returns", "link", "_serializing", "_closed",
                 "outbox", "_send_waiters")

    def __init__(self, cid: int, sim, link):
        self.cid = cid
        self.sim = sim
        #: Delivery times of staged-but-not-yet-injected messages (FIFO).
        self.pending: deque = deque()
        self.floor = 0.0
        self._sentinel = RecordBatch([], visible_times=[0.0])
        self._wire = ((self._sentinel, 0),)
        self.credits = float("inf")
        #: Times at which the receiver returned a flow-control credit.
        self.returns: List[float] = []
        self.link = link
        self._serializing = None
        self._closed = False
        self.outbox = ()
        self._send_waiters = ()

    def update_bound(self) -> None:
        self._sentinel.visible_times[0] = (
            self.pending[0] if self.pending else self.floor)

    # -- credit ledger (InputChannel call sites) ----------------------------

    def _kick(self) -> None:
        # Called right after the inlined ``credits += 1`` in pop().
        self.returns.append(self.sim._now)

    def _return_credit(self) -> None:
        self.returns.append(self.sim._now)

    def defer_credit(self, due: float) -> None:
        self.returns.append(due)

    def cancel_deferred_credit(self, due: float) -> None:
        for i in range(len(self.returns) - 1, -1, -1):
            if self.returns[i] == due:
                del self.returns[i]
                return


# ---------------------------------------------------------------------------
# Run-view collection (shared by workers and the single-process reference)
# ---------------------------------------------------------------------------

def _canon(obj):
    """Canonical, process-independent form of a state value for digesting."""
    if isinstance(obj, dict):
        return tuple(sorted(((repr(k), _canon(v)) for k, v in obj.items())))
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(x) for x in obj))
    if isinstance(obj, (list, tuple)):
        return tuple(_canon(x) for x in obj)
    return repr(obj)


def _state_digest(instance) -> str:
    """Stable digest of an instance's keyed state.

    Excludes ``KeyGroupState.version`` (a process-wide counter, not
    simulated state) and canonicalizes dict/set ordering.
    """
    import hashlib
    groups = []
    for g in sorted(instance.state.groups(), key=lambda g: g.key_group):
        groups.append((g.key_group, g.status.name, repr(g.size_bytes),
                       _canon(g.entries), _canon(g.sub_groups_present)))
    return hashlib.sha256(repr(groups).encode()).hexdigest()


def _record_view(rec) -> tuple:
    """A Record as comparable data, excluding process-local ids."""
    return (rec.key, rec.key_group, rec.event_time, _canon(rec.value),
            rec.count, rec.size_bytes, rec.created_at)


def collect_run_view(job, owned_ops, *, collect_sinks=False,
                     watermark_traces=None) -> Dict[str, Any]:
    """The comparable outcome of a run, restricted to ``owned_ops``."""
    metrics = job.metrics
    view: Dict[str, Any] = {
        "latency_samples": list(metrics.latency_samples),
        "source_events": list(metrics._source_events),
        "sink_events": list(metrics._sink_events),
        "custom": {k: list(v) for k, v in metrics.custom.items()},
        "state_digests": {},
        "watermarks": {},
        "records_processed": {},
        "sinks": {},
        "watermark_traces": dict(watermark_traces or {}),
    }
    sink_names = {spec.name for spec in job.graph.sinks()}
    for op_name in owned_ops:
        for inst in job.instances(op_name):
            view["watermarks"][inst.name] = inst.current_watermark
            view["records_processed"][inst.name] = inst.records_processed
            if inst.state.groups():
                view["state_digests"][inst.name] = _state_digest(inst)
            if op_name in sink_names:
                logic = inst.logic
                view["sinks"][inst.name] = {
                    "records_in": getattr(logic, "records_in", None),
                    "collected": ([_record_view(r)
                                   for r in logic.collected]
                                  if collect_sinks and
                                  getattr(logic, "collect", False) else None),
                }
    return view


def _merge_views(views: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {
        "latency_samples": [], "source_events": [], "sink_events": [],
        "custom": {}, "state_digests": {}, "watermarks": {},
        "records_processed": {}, "sinks": {}, "watermark_traces": {},
    }
    for v in views:
        merged["latency_samples"] += v["latency_samples"]
        merged["source_events"] += v["source_events"]
        merged["sink_events"] += v["sink_events"]
        for k, series in v["custom"].items():
            merged["custom"].setdefault(k, []).extend(series)
        for k in ("state_digests", "watermarks", "records_processed",
                  "sinks", "watermark_traces"):
            merged[k].update(v[k])
    # Cross-shard concatenation order is shard order; normalize the merged
    # time series so they compare equal to the single-process ordering.
    merged["latency_samples"].sort()
    merged["source_events"].sort()
    merged["sink_events"].sort()
    for series in merged["custom"].values():
        series.sort()
    return merged


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def _install_watermark_trace(job, traces: Dict[str, List]) -> None:
    """Record (arrival sim-time, timestamp) of every sink-side watermark."""
    from ..engine.records import Watermark
    for spec in job.graph.sinks():
        for inst in job.instances(spec.name):
            trace = traces.setdefault(inst.name, [])

            def intercept(channel, element, _inst=inst, _trace=trace):
                if element.__class__ is Watermark:
                    _trace.append((_inst.sim._now, element.timestamp))
                return False

            inst.element_interceptor = intercept


def _build_local_job(workload, spec: ShardSpec):
    """Replicate ``Workload.build`` with shard-selective generator spawn."""
    from ..engine.runtime import JobConfig, StreamJob
    config = JobConfig(**spec.config_kwargs)
    graph = workload.build_graph()
    job = StreamJob(graph, config=config)
    job.build()
    owned = set(spec.shards[spec.shard_id])
    owns_sources = any(graph.operators[name].is_source for name in owned)
    if owns_sources:
        for index, generator in enumerate(workload.generators(job)):
            job.sim.spawn(generator, name=f"{workload.name}-gen-{index}")
    if spec.collect_sinks:
        for sink_spec in graph.sinks():
            if sink_spec.name in owned:
                for inst in job.instances(sink_spec.name):
                    inst.logic.collect = True
    return job, owned


def _localize(job, spec: ShardSpec):
    """Replace cross-shard channel endpoints with proxies; start owned ops.

    Returns ``(egress_buffers, feeds, debits)`` where ``egress_buffers``
    maps a downstream shard id to its capture list, ``feeds`` maps channel
    id to its :class:`_IngressFeed`, and ``debits`` maps channel id to the
    credit-debit ledger list its egress endpoint appends to.
    """
    shard_of = {name: i for i, ops in enumerate(spec.shards)
                for name in ops}
    me = spec.shard_id
    egress_buffers: Dict[int, List] = {}
    debits: Dict[int, List] = {}
    feeds: Dict[int, _IngressFeed] = {}
    for cid, src_op, dst_op, ch in _enumerate_channels(job):
        s, d = shard_of[src_op], shard_of[dst_op]
        if s == d:
            continue
        if s == me:
            buf = egress_buffers.setdefault(d, [])
            debit = debits.setdefault(cid, [])
            ch.input_channel = _Egress(cid, job.sim, buf, ch.link.latency,
                                       ch.link.bandwidth, debit)
            ch.credits = float("inf")
        elif d == me:
            feed = _IngressFeed(cid, job.sim, ch.link)
            ic = ch.input_channel
            ic.channel = feed
            feed.update_bound()
            feeds[cid] = feed
    owned = set(spec.shards[me])
    for op_name in owned:
        for inst in job.instances(op_name):
            inst.start()
    return egress_buffers, feeds, debits


def _inject(ic, kind: str, element) -> None:
    if kind == "e":
        ic.deliver(element)
    elif kind == "b":
        ic.deliver_batch(element)
    else:
        ic.deliver_control(element)


def _worker_main(shard_id: int, workload_factory, spec_conn, result_conn,
                 upstream: Dict[int, Any], downstream: Dict[int, Any]):
    """One shard's event loop under conservative synchronization."""
    try:
        spec: ShardSpec = spec_conn.recv()
        workload = workload_factory()
        job, owned = _build_local_job(workload, spec)
        sim = job.sim
        egress_buffers, feeds, debits = _localize(job, spec)
        traces: Dict[str, List] = {}
        if spec.trace_watermarks:
            _install_watermark_trace(job, traces)
        ics = {}
        for cid, _s, _d, ch in _enumerate_channels(job):
            if cid in feeds:
                ics[cid] = ch.input_channel

        until = spec.until
        quantum = spec.quantum
        grants = {u: 0.0 for u in upstream}
        sent_grant = {d: -1.0 for d in downstream}
        # Staged ingress: heap of (time, channel_id, seq, kind, payload).
        staged: List[Tuple] = []
        seqs = {cid: 0 for cid in feeds}
        my_grant = 0.0
        t0 = time.perf_counter()
        cpu0 = time.process_time()

        def drain_upstream(block: bool) -> None:
            conns = list(upstream.values())
            if block:
                multiprocessing.connection.wait(conns, timeout=10.0)
            for u, conn in upstream.items():
                while conn.poll():
                    kind, grant, msgs = conn.recv()
                    grants[u] = max(grants[u], grant)
                    for mkind, cid, t, payload in msgs:
                        seq = seqs[cid]
                        seqs[cid] = seq + 1
                        heapq.heappush(staged, (t, cid, seq, mkind, payload))
                        feed = feeds[cid]
                        feed.pending.append(t)
                        feed.update_bound()
                    if kind == "done":
                        grants[u] = float("inf")

        def flush(final: bool) -> None:
            nonlocal my_grant
            local_next = sim.peek()
            pending_min = min((s[0] for s in staged[:1]), default=math.inf)
            safe = min(grants.values()) if grants else math.inf
            if final:
                my_grant = math.inf
            else:
                my_grant = max(my_grant,
                               min(local_next, pending_min, safe))
            for d, conn in downstream.items():
                msgs = egress_buffers.get(d)
                if msgs or my_grant > sent_grant[d]:
                    # send() pickles synchronously; clear in place — the
                    # _Egress endpoints hold a reference to this list.
                    conn.send(("done" if final else "adv", my_grant,
                               msgs or []))
                    sent_grant[d] = my_grant
                    if msgs:
                        msgs.clear()

        def run_to(stop: float, inclusive: bool) -> None:
            """Advance local sim to ``stop``, injecting staged messages
            below it (at it too, when inclusive) at their exact times."""
            while staged:
                t = staged[0][0]
                if t > stop or (t == stop and not inclusive):
                    break
                sim.run(until=math.nextafter(t, -math.inf))
                # All messages at exactly t, canonical (t, cid, seq) order.
                batch = []
                while staged and staged[0][0] == t:
                    _t, cid, _seq, mkind, payload = heapq.heappop(staged)
                    batch.append((cid, mkind, payload))
                for cid, mkind, payload in batch:
                    feed = feeds[cid]

                    def deliver(cid=cid, mkind=mkind, payload=payload,
                                feed=feed):
                        feed.pending.popleft()
                        feed.update_bound()
                        _inject(ics[cid], mkind, payload)

                    sim.call_at(t, deliver)
            for feed in feeds.values():
                feed.floor = stop
                feed.update_bound()
            if inclusive:
                sim.run(until=stop)
            else:
                sim.run(until=math.nextafter(stop, -math.inf))

        # `frontier` is the exclusive simulated-time bound this shard has
        # fully executed (run_to leaves sim._now at nextafter(stop, -inf),
        # so sim._now itself never equals the bound).
        frontier = 0.0
        profiler = None
        if os.environ.get("REPRO_SHARD_PROFILE"):
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        while True:
            drain_upstream(block=False)
            safe = min(grants.values()) if grants else math.inf
            if safe > until:
                # Everything upstream is final: run inclusive of events at
                # `until` (matching single-process job.run semantics),
                # chunked so downstream keeps receiving traffic.
                while frontier < until:
                    frontier = min(frontier + quantum, until)
                    if frontier == until:
                        break
                    run_to(frontier, inclusive=False)
                    flush(final=False)
                run_to(until, inclusive=True)
                job._sync_batches()
                flush(final=True)
                break
            stop = min(safe, frontier + quantum, until)
            if stop > frontier or (staged and staged[0][0] < stop):
                run_to(stop, inclusive=False)
                frontier = max(frontier, stop)
                flush(final=False)
            else:
                # Cannot advance: wait for upstream grants/messages.
                flush(final=False)
                drain_upstream(block=True)

        if profiler is not None:
            profiler.disable()
            import pstats
            out = os.environ["REPRO_SHARD_PROFILE"]
            profiler.dump_stats(f"{out}.shard{shard_id}.prof")
        view = collect_run_view(job, owned,
                                collect_sinks=spec.collect_sinks,
                                watermark_traces=traces)
        bundle = {
            "shard_id": shard_id,
            "view": view,
            "events_processed": sim.events_processed,
            "wall_s": time.perf_counter() - t0,
            "cpu_s": time.process_time() - cpu0,
            "credit_returns": {cid: feed.returns
                               for cid, feed in feeds.items()},
            "credit_debits": debits,
            "inbox_capacity": job.config.inbox_capacity,
        }
        result_conn.send(("done", bundle))
    except BaseException:
        try:
            result_conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent gone
            pass
    finally:
        result_conn.close()


# ---------------------------------------------------------------------------
# Credit-ledger replay (post-hoc backpressure check)
# ---------------------------------------------------------------------------

def _replay_credits(debits: Dict[int, List[Tuple[float, int]]],
                    returns: Dict[int, List[float]],
                    capacity: int,
                    edge_of: Optional[Dict[int, str]] = None,
                    ) -> Tuple[bool, List[str], set]:
    """Replay each cut channel's credit counter; flag exhaustion."""
    problems = []
    flagged = set()
    edge_of = edge_of or {}
    for cid, debit_list in debits.items():
        events = [(when, 1, -k) for when, k in debit_list]
        events += [(when, 0, 1) for when in returns.get(cid, [])]
        events.sort()
        credits = capacity
        low = capacity
        for _when, _prio, delta in events:
            credits += delta
            low = min(low, credits)
        if low < 0:
            edge = edge_of.get(cid)
            where = f"channel {cid}" + (f" ({edge})" if edge else "")
            problems.append(
                f"{where}: single-process flow control would have "
                f"engaged (credit low-water {low}, capacity {capacity})")
            if edge:
                flagged.add(edge)
    return (not problems), problems, flagged


# ---------------------------------------------------------------------------
# Result + orchestration
# ---------------------------------------------------------------------------

class ShardedRunResult:
    """Merged outcome of a sharded (or reference single-process) run."""

    def __init__(self, view: Dict[str, Any], *, shards: int, plan=None,
                 events_per_shard=None, wall_s: float = 0.0,
                 worker_walls=None, worker_cpus=None,
                 backpressure_safe: bool = True,
                 backpressure_detail=None, until: float = 0.0,
                 replans: int = 0, forbidden_cuts=None):
        self.view = view
        self.shards = shards
        self.plan = plan
        self.events_per_shard = events_per_shard or []
        self.wall_s = wall_s
        self.worker_walls = worker_walls or []
        self.worker_cpus = worker_cpus or []
        self.backpressure_safe = backpressure_safe
        self.backpressure_detail = backpressure_detail or []
        self.until = until
        self.replans = replans
        self.forbidden_cuts = sorted(forbidden_cuts or [])
        self._flagged_edges: set = set()

    # -- bench-facing aggregates -------------------------------------------

    @property
    def kernel_events(self) -> int:
        return sum(self.events_per_shard)

    @property
    def bottleneck_cpu_s(self) -> float:
        """CPU seconds of the busiest shard — the critical-path wall time
        the run would take with one free core per shard.  On machines with
        fewer cores than shards, measured wall-clock reflects timeslicing
        of one core, not the pipeline; this is the hardware-independent
        number (plus IPC, which overlaps with compute)."""
        return max(self.worker_cpus, default=0.0)

    def total_source_output(self) -> int:
        return sum(c for _t, c in self.view["source_events"])

    def total_sink_input(self) -> int:
        return sum(c for _t, c in self.view["sink_events"])

    # -- equivalence -------------------------------------------------------

    def semantic_view(self) -> Dict[str, Any]:
        """The cross-process-comparable subtree (no kernel event counts —
        injection callbacks inflate them; no wall-clock).

        Time series are sorted: a sharded run concatenates per-shard
        series, a single-process run records them in dispatch order — the
        multisets must be identical, the interleavings need not be.
        """
        view = dict(self.view)
        view["latency_samples"] = sorted(view["latency_samples"])
        view["source_events"] = sorted(view["source_events"])
        view["sink_events"] = sorted(view["sink_events"])
        view["custom"] = {k: sorted(v) for k, v in view["custom"].items()}
        return view


def run_single_reference(workload_factory, *, until: float,
                         job_config=None, collect_sinks: bool = False,
                         trace_watermarks: bool = False) -> ShardedRunResult:
    """Single-process run producing the same result shape as a sharded run."""
    from ..engine.runtime import JobConfig
    import dataclasses as _dc
    config = job_config or JobConfig()
    if config.shards != 1:
        config = _dc.replace(config, shards=1)
    workload = workload_factory()
    job = workload.build(job_config=config)
    if collect_sinks:
        for spec in job.graph.sinks():
            for inst in job.instances(spec.name):
                inst.logic.collect = True
    traces: Dict[str, List] = {}
    if trace_watermarks:
        _install_watermark_trace(job, traces)
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    job.run(until=until)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - t0
    view = collect_run_view(job, list(job.graph.operators),
                            collect_sinks=collect_sinks,
                            watermark_traces=traces)
    return ShardedRunResult(view, shards=1,
                            events_per_shard=[job.sim.events_processed],
                            wall_s=wall, worker_cpus=[cpu], until=until)


def run_sharded(workload_factory, *, until: float, shards: int,
                job_config=None, weights: Optional[Dict[str, float]] = None,
                collect_sinks: bool = False,
                trace_watermarks: bool = False,
                quantum: float = DEFAULT_QUANTUM,
                max_replans: int = 1) -> ShardedRunResult:
    """Run a workload to ``until`` across ``shards`` worker processes.

    ``workload_factory`` must be a zero-argument callable returning a
    fresh :class:`~repro.workloads.base.Workload`; each worker calls it
    after forking and builds the *full* job deterministically, then starts
    only its own shard's instances.  Falls back to
    :func:`run_single_reference` when ``shards <= 1``, the plan collapses
    to one shard, or the platform cannot fork.

    When the post-hoc credit ledger shows single-process flow control
    would have engaged on a cut channel (``backpressure_safe`` False —
    the one case where results may diverge from single-process), the run
    is re-planned with those edges forbidden and retried, up to
    ``max_replans`` times.  A result that still is not certified is
    returned with ``backpressure_safe=False`` so callers can fall back.
    """
    from ..engine.runtime import JobConfig
    config = job_config or JobConfig()
    support = supports_sharding(config)
    if shards <= 1 or not support:
        if shards > 1 and not support:
            warnings.warn(
                f"sharded run degraded to single-process "
                f"[{support.reason}]: {support.detail}",
                RuntimeWarning, stacklevel=2)
        return run_single_reference(
            workload_factory, until=until, job_config=config,
            collect_sinks=collect_sinks, trace_watermarks=trace_watermarks)

    # Plan on a throwaway build (actual channel latencies, no run).
    probe_workload = workload_factory()
    probe_job = probe_workload.build(job_config=dataclasses.replace(
        config, shards=1))

    forbidden: set = set()
    replans = 0
    while True:
        plan = plan_for_job(probe_job, shards, weights=weights,
                            forbidden_edges=forbidden)
        if plan.num_shards <= 1:
            return run_single_reference(
                workload_factory, until=until, job_config=config,
                collect_sinks=collect_sinks,
                trace_watermarks=trace_watermarks)
        result = _run_sharded_once(
            workload_factory, probe_job, plan, config, until=until,
            collect_sinks=collect_sinks, trace_watermarks=trace_watermarks,
            quantum=quantum)
        result.replans = replans
        result.forbidden_cuts = sorted(forbidden)
        flagged = result._flagged_edges & set(plan.cut_edges)
        if result.backpressure_safe or replans >= max_replans or not flagged:
            return result
        forbidden |= flagged
        replans += 1


def _run_sharded_once(workload_factory, probe_job, plan, config, *,
                      until: float, collect_sinks: bool,
                      trace_watermarks: bool,
                      quantum: float) -> ShardedRunResult:
    ctx = multiprocessing.get_context("fork")
    spec_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]
    # One pipe per cut shard pair (u -> v).
    pairs = set()
    shard_of = plan.shard_of
    for e in probe_job.graph.edges:
        s, d = shard_of[e.src], shard_of[e.dst]
        if s != d:
            pairs.add((s, d))
    pair_pipes = {pair: ctx.Pipe(duplex=False) for pair in sorted(pairs)}

    workers = []
    t0 = time.perf_counter()
    for sid in range(plan.num_shards):
        up = {u: pair_pipes[(u, v)][0] for (u, v) in pairs if v == sid}
        down = {v: pair_pipes[(u, v)][1] for (u, v) in pairs if u == sid}
        proc = ctx.Process(
            target=_worker_main,
            args=(sid, workload_factory, spec_pipes[sid][0],
                  result_pipes[sid][1], up, down),
            name=f"repro-shard-{sid}", daemon=True)
        proc.start()
        workers.append(proc)
    spec = ShardSpec(shard_id=0, shards=plan.shards, until=until,
                     quantum=quantum, config_kwargs=_config_kwargs(config),
                     collect_sinks=collect_sinks,
                     trace_watermarks=trace_watermarks)
    for sid in range(plan.num_shards):
        spec_pipes[sid][1].send(dataclasses.replace(spec, shard_id=sid))

    bundles: Dict[int, Dict] = {}
    try:
        pending = {sid: result_pipes[sid][0]
                   for sid in range(plan.num_shards)}
        while pending:
            ready = multiprocessing.connection.wait(
                list(pending.values()), timeout=1.0)
            if not ready:
                for sid, proc in enumerate(workers):
                    if sid not in bundles and proc.exitcode not in (None, 0):
                        raise RuntimeError(
                            f"shard {sid} worker died "
                            f"(exit {proc.exitcode})")
                continue
            for conn in ready:
                sid = next(s for s, c in pending.items() if c is conn)
                status, payload = conn.recv()
                if status == "err":
                    raise RuntimeError(
                        f"shard {sid} worker failed:\n{payload}")
                bundles[sid] = payload
                del pending[sid]
        for proc in workers:
            proc.join(timeout=30.0)
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
    wall = time.perf_counter() - t0

    ordered = [bundles[sid] for sid in range(plan.num_shards)]
    view = _merge_views([b["view"] for b in ordered])

    # Post-hoc flow-control certification: replay every cut channel's
    # credit counter (sender-side debits vs receiver-side return times).
    edge_of = {cid: f"{src}->{dst}"
               for cid, src, dst, _ch in _enumerate_channels(probe_job)}
    backpressure_safe, detail, flagged = _ledger_check(ordered, edge_of)

    result = ShardedRunResult(
        view, shards=plan.num_shards, plan=plan,
        events_per_shard=[b["events_processed"] for b in ordered],
        wall_s=wall,
        worker_walls=[b["wall_s"] for b in ordered],
        worker_cpus=[b.get("cpu_s", 0.0) for b in ordered],
        backpressure_safe=backpressure_safe,
        backpressure_detail=detail, until=until)
    result._flagged_edges = flagged
    return result


def _ledger_check(bundles: List[Dict],
                  edge_of: Optional[Dict[int, str]] = None,
                  ) -> Tuple[bool, List[str], set]:
    """Replay cut-channel credit counters from the workers' ledgers."""
    capacity = bundles[0].get("inbox_capacity", 32) if bundles else 32
    debits: Dict[int, List[Tuple[float, int]]] = {}
    returns: Dict[int, List[float]] = {}
    for b in bundles:
        for cid, lst in b.get("credit_debits", {}).items():
            debits.setdefault(cid, []).extend(lst)
        for cid, lst in b.get("credit_returns", {}).items():
            returns.setdefault(cid, []).extend(lst)
    if not debits:
        return True, [], set()
    return _replay_credits(debits, returns, capacity, edge_of)
