"""Sharded multi-process kernel: conservative-lookahead partitioned runs.

The single-process kernel executes the whole operator graph in one event
loop; at paper scale the host CPU, not simulated time, is the bottleneck.
This module partitions the graph into contiguous topological segments
(:func:`repro.engine.routing.partition_graph`), runs each segment in its own
worker process on its own :class:`~repro.simulation.kernel.Simulator`, and
synchronizes the workers conservatively (Chandy–Misra–Bryant style):

* Every **cut edge** (an inter-shard operator edge) has strictly positive
  channel latency — the *lookahead*.  A record delivered into a downstream
  shard at simulated time ``t`` can cause an egress delivery no earlier
  than ``t`` (services and serialization are non-negative, the outgoing
  latency is positive), so grants never regress.
* Each worker repeatedly advances its local event loop to
  ``stop = min(safe, now + quantum)`` where ``safe = min(upstream grants)``
  — the null-message exchange.  A **grant** is a lower bound on the
  delivery time of any message the upstream shard may still send:
  ``min(local event queue head, staged ingress head, its own safe)``.
* Cross-shard record traffic is captured at the *sender's* simulated
  delivery time by a proxy input-channel endpoint (:class:`_Egress`) and
  re-injected at the *receiver* at exactly that time, in canonical
  ``(time, channel id, FIFO seq)`` order — so ``(time, seq)`` ordering on
  every cut channel is preserved.

**Transports.**  The default data plane (``transport="shm"``) ships each
flush as a columnar frame (:mod:`repro.engine.frames`) through a
shared-memory SPSC ring (:mod:`repro.simulation.shm_ring`) per cut shard
pair — record batches cross as seven packed numeric columns plus one
pickle per frame, watermarks as pure structs.  Grants piggyback on data
frames; a *bare* grant (null message) is sent only when the downstream
reader has raised its blocked flag in shared memory (demand-driven nulls),
and each worker adapts its quantum — widening after consecutive productive
rounds, shrinking on blocked waits — so synchronization overhead tracks
how tightly the shards are actually coupled.  Frames that exceed the ring
capacity spill through the legacy pipe behind an in-band marker,
preserving order.  ``transport="pipe"`` keeps the original
pickle-over-pipe protocol (fixed quantum, eager nulls) byte-for-byte as a
baseline and portability fallback; both transports produce identical
semantic views and both are certified by the same credit ledger.

The shard graph is feed-forward (contiguous topological segments), so the
first shard always progresses and the pipeline never deadlocks; speedup is
pipeline parallelism — all shards crunch different sim-time windows of the
same run concurrently.

**Flow-control caveat** (documented in docs/performance.md): cut channels
run with unbounded sender credits — receiver-side flow control cannot be
simulated conservatively without a feedback channel.  A post-hoc credit
ledger replays the single-process credit counter against the actual
delivery/consumption times and flags the run (``backpressure_safe=False``)
if backpressure *would* have engaged, in which case the sharded timing is
not equivalent to single-process and callers should fall back.

Barriers, checkpoints, rescale, fault injection, telemetry and autoscale
all require a single event loop and fall back to single-process execution
(:func:`supports_sharding` / the ``shards<=1`` path), mirroring the batched
plane's per-record fallback.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import multiprocessing
import os
import pickle
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine.frames import decode_frame, encode_frame
from ..engine.records import RecordBatch
from ..engine.routing import ShardPlan, partition_graph, topological_order
from .shm_ring import DEFAULT_RING_BYTES, SPILL, ShmRing

__all__ = [
    "ShardSpec",
    "ShardedRunResult",
    "run_sharded",
    "run_single_reference",
    "supports_sharding",
    "ShardingSupport",
    "collect_run_view",
    "plan_for_job",
]

#: Default (initial) sim-seconds a worker advances per synchronization
#: pass.  Only transport-batching granularity — runahead is unbounded
#: (feed-forward DAG).  The shm transport widens it adaptively up to
#: ``quantum * QUANTUM_GROWTH_LIMIT`` while rounds stay productive.
DEFAULT_QUANTUM = 0.25

#: Max adaptive widening factor over the initial quantum.
QUANTUM_GROWTH_LIMIT = 32.0

#: Consecutive productive (advanced-without-blocking) rounds before the
#: adaptive quantum doubles.
PRODUCTIVE_STREAK = 2

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


@dataclass(frozen=True)
class ShardingSupport:
    """Truthy verdict of :func:`supports_sharding`.

    Truthiness preserves the old boolean contract; when sharding is
    unsupported, :attr:`reason` carries a stable machine-readable code
    (``"controller"``, ``"telemetry"``, ``"faults"``,
    ``"changelog-async-uploads"``, ``"no-fork"``) and :attr:`detail` a
    human sentence — both end up in the fallback warning and in
    experiment reports.
    """

    supported: bool
    reason: Optional[str] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.supported


def supports_sharding(config=None, *, controller=None,
                      telemetry=False, faults=False) -> ShardingSupport:
    """Whether a run may use the multi-process kernel.

    Any feature that needs one global event loop (scaling controllers,
    telemetry probes, fault injection, the changelog backend's
    asynchronous segment uploads) degrades to single-process, as do
    platforms without the ``fork`` start method (the workers inherit the
    workload factory by forking).  Returns a truthy/falsy
    :class:`ShardingSupport`; falsy verdicts name the degradation.
    """
    if controller is not None:
        return ShardingSupport(
            False, "controller",
            "scaling controllers mutate the global assignment and need "
            "one event loop")
    if telemetry:
        return ShardingSupport(
            False, "telemetry",
            "telemetry probes sample across the whole job")
    if faults:
        return ShardingSupport(
            False, "faults",
            "fault injection coordinates crashes and recovery globally")
    if getattr(config, "state_backend", "dict") == "changelog":
        return ShardingSupport(
            False, "changelog-async-uploads",
            "the changelog backend spawns asynchronous segment-upload "
            "processes and upload listeners on the global loop")
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return ShardingSupport(
            False, "no-fork",
            "workers inherit the workload factory by forking")
    return ShardingSupport(True)


# ---------------------------------------------------------------------------
# Shard specs (pickled parent -> worker) and plan construction
# ---------------------------------------------------------------------------

@dataclass
class ShardSpec:
    """Everything one worker needs beyond the forked workload factory.

    Sent pickled over the worker's spec pipe (the workload factory itself
    rides the fork; the spec is genuinely serialized).
    """

    shard_id: int
    #: Operator names per shard, topological-contiguous (full plan — every
    #: worker derives the identical channel enumeration from it).
    shards: List[List[str]] = field(default_factory=list)
    until: float = 0.0
    quantum: float = DEFAULT_QUANTUM
    #: JobConfig fields (with ``shards`` forced to 1 for the local build).
    config_kwargs: Dict[str, Any] = field(default_factory=dict)
    collect_sinks: bool = False
    trace_watermarks: bool = False
    #: Cut-edge transport this run uses: ``"shm"`` or ``"pipe"``.
    transport: str = "shm"
    #: Whether the quantum adapts (shm protocol) or stays fixed (legacy
    #: pipe protocol).
    adaptive_quantum: bool = True
    #: Per-edge inbox-capacity overrides (edge name -> capacity) from the
    #: plan's cut hints; applied to matching *local* channels so a shard's
    #: internal flow control matches the overridden reference run.
    inbox_overrides: Dict[str, int] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def _config_kwargs(config) -> Dict[str, Any]:
    # Not dataclasses.asdict — that would recurse into the nested
    # StateTransferCostModel and JobConfig(**kwargs) would get a dict.
    kwargs = {f.name: getattr(config, f.name)
              for f in dataclasses.fields(config)}
    kwargs["shards"] = 1
    return kwargs


def plan_for_job(job, num_shards: int,
                 weights: Optional[Dict[str, float]] = None,
                 forbidden_edges: Optional[set] = None) -> ShardPlan:
    """Partition a built job's graph using its *actual* channel latencies.

    The legality of a cut is decided by the minimum latency any physical
    channel of the edge has (instance placement can map one logical edge
    onto several links).  ``weights`` default to per-operator event counts
    when the job has run (telemetry probe / previous run), else uniform.
    ``forbidden_edges`` (edge names, ``"src->dst"``) are treated as
    zero-latency — i.e. never cut; :func:`run_sharded` uses this to
    replan around cut channels whose credit ledger showed single-process
    flow control would have engaged.
    """
    lat: Dict[str, float] = {}
    for op_name in job.graph.operators:
        for inst in job.instances(op_name):
            for edge in inst.router.edges:
                name = f"{op_name}->{edge.dst_op}"
                for ch in edge.channels:
                    cur = lat.get(name)
                    l = ch.link.latency
                    lat[name] = l if cur is None else min(cur, l)
    if weights is None:
        weights = operator_event_weights(job)
    forbidden = forbidden_edges or set()

    def edge_latency(e):
        if e.name in forbidden:
            return 0.0
        return lat.get(e.name, 0.0)

    return partition_graph(job.graph, num_shards, edge_latency,
                           weights=weights)


def operator_event_weights(job) -> Optional[Dict[str, float]]:
    """Per-operator event-count weights from a (probe) run's counters.

    Returns ``None`` when the job has not processed anything yet (fresh
    build) so the partitioner falls back to uniform weights.  Sources do
    not count records the way operators do; they are weighted like their
    heaviest direct consumer (they emit what the consumer processes).
    """
    counts: Dict[str, float] = {}
    for op_name in job.graph.operators:
        counts[op_name] = float(sum(
            inst.records_processed for inst in job.instances(op_name)))
    if not any(counts.values()):
        return None
    for spec in job.graph.sources():
        downstream = [counts.get(e.dst, 0.0)
                      for e in job.graph.out_edges(spec.name)]
        counts[spec.name] = max(downstream) if downstream else 1.0
    floor = max(counts.values()) * 0.01 + 1.0
    return {name: max(c, floor) for name, c in counts.items()}


# ---------------------------------------------------------------------------
# Channel enumeration (identical deterministic walk in every worker)
# ---------------------------------------------------------------------------

def _enumerate_channels(job) -> List[Tuple[int, str, str, object]]:
    """``[(channel_id, src_op, dst_op, Channel)]`` in deterministic order.

    Walk: operators in topological order, instances in index order, output
    edges in attach order, channels in attach order — every worker builds
    the same job the same way, so ids agree across processes.
    """
    out = []
    cid = 0
    for op_name in topological_order(job.graph):
        for inst in job.instances(op_name):
            for edge in inst.router.edges:
                for ch in edge.channels:
                    out.append((cid, op_name, edge.dst_op, ch))
                    cid += 1
    return out


# ---------------------------------------------------------------------------
# Proxy endpoints
# ---------------------------------------------------------------------------

class _Egress:
    """Sender-side stand-in for the receiver's InputChannel.

    The real Channel keeps simulating serialization and propagation; its
    delivery events call these methods at the exact per-element delivery
    times, which we capture (kind, channel id, time, element) for the pipe.
    Credit debits for the post-hoc flow-control ledger are reconstructed
    here: an element delivered at ``t`` left the outbox (consumed its
    credit) one serialization + propagation earlier.
    """

    __slots__ = ("cid", "sim", "buf", "latency", "bw", "debits",
                 "strip_columns")

    def __init__(self, cid: int, sim, buf: List, latency: float, bw: float,
                 debits: List, strip_columns: bool = True):
        self.cid = cid
        self.sim = sim
        self.buf = buf
        self.latency = latency
        self.bw = bw
        self.debits = debits
        #: Pipe transport pickles the whole batch — drop any cached numpy
        #: view first (it would be pickled redundantly).  The shm codec
        #: instead *reuses* the column cache (``tobytes`` is a memcpy), so
        #: it keeps the view.
        self.strip_columns = strip_columns

    def deliver(self, element) -> None:
        now = self.sim._now
        size = getattr(element, "size_bytes", 0.0) or 0.0
        self.debits.append((now - self.latency - size / self.bw, 1))
        self.buf.append(("e", self.cid, now, element))

    def deliver_batch(self, batch) -> None:
        if self.strip_columns:
            batch._columns = None  # numpy views don't cross the pipe
        head = batch.records[0]
        when = (batch.visible_times[0] - self.latency
                - head.size_bytes / self.bw)
        self.debits.append((when, len(batch.records)))
        self.buf.append(("b", self.cid, self.sim._now, batch))

    def deliver_control(self, element) -> None:
        # Control lane bypasses flow control: no debit.
        self.buf.append(("c", self.cid, self.sim._now, element))

    def total_depth(self) -> int:
        return 0


class _IngressFeed:
    """Receiver-side stand-in for the sending Channel.

    Keeps the real InputChannel; this object answers the two questions the
    consume side asks its backing channel:

    * ``_consume_arrival_bound``: "when can the next element arrive?" — we
      maintain a sentinel :class:`RecordBatch` on a fake one-element wire
      whose ``visible_times[0]`` is the bound: the earliest staged (known,
      not yet injected) message time, else the conservative floor (the
      current pass's stop — nothing can arrive below it).
    * credit returns (``pop``/``remove``/analytic-batch consumption) — we
      only *ledger* them (see module docstring): ``credits`` stays huge so
      formation on the sending side (in the other process) is never gated
      here, and return times are recorded for the post-hoc replay.
    """

    __slots__ = ("cid", "sim", "pending", "floor", "_sentinel", "_wire",
                 "credits", "returns", "link", "_serializing", "_closed",
                 "outbox", "_send_waiters")

    def __init__(self, cid: int, sim, link):
        self.cid = cid
        self.sim = sim
        #: Delivery times of staged-but-not-yet-injected messages (FIFO).
        self.pending: deque = deque()
        self.floor = 0.0
        self._sentinel = RecordBatch([], visible_times=[0.0])
        self._wire = ((self._sentinel, 0),)
        self.credits = float("inf")
        #: Times at which the receiver returned a flow-control credit.
        self.returns: List[float] = []
        self.link = link
        self._serializing = None
        self._closed = False
        self.outbox = ()
        self._send_waiters = ()

    def update_bound(self) -> None:
        self._sentinel.visible_times[0] = (
            self.pending[0] if self.pending else self.floor)

    # -- credit ledger (InputChannel call sites) ----------------------------

    def _kick(self) -> None:
        # Called right after the inlined ``credits += 1`` in pop().
        self.returns.append(self.sim._now)

    def _return_credit(self) -> None:
        self.returns.append(self.sim._now)

    def defer_credit(self, due: float) -> None:
        self.returns.append(due)

    def cancel_deferred_credit(self, due: float) -> None:
        for i in range(len(self.returns) - 1, -1, -1):
            if self.returns[i] == due:
                del self.returns[i]
                return


# ---------------------------------------------------------------------------
# Run-view collection (shared by workers and the single-process reference)
# ---------------------------------------------------------------------------

def _canon(obj):
    """Canonical, process-independent form of a state value for digesting."""
    if isinstance(obj, dict):
        return tuple(sorted(((repr(k), _canon(v)) for k, v in obj.items())))
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(x) for x in obj))
    if isinstance(obj, (list, tuple)):
        return tuple(_canon(x) for x in obj)
    return repr(obj)


def _state_digest(instance) -> str:
    """Stable digest of an instance's keyed state.

    Excludes ``KeyGroupState.version`` (a process-wide counter, not
    simulated state) and canonicalizes dict/set ordering.
    """
    import hashlib
    groups = []
    for g in sorted(instance.state.groups(), key=lambda g: g.key_group):
        groups.append((g.key_group, g.status.name, repr(g.size_bytes),
                       _canon(g.entries), _canon(g.sub_groups_present)))
    return hashlib.sha256(repr(groups).encode()).hexdigest()


def _record_view(rec) -> tuple:
    """A Record as comparable data, excluding process-local ids."""
    return (rec.key, rec.key_group, rec.event_time, _canon(rec.value),
            rec.count, rec.size_bytes, rec.created_at)


def collect_run_view(job, owned_ops, *, collect_sinks=False,
                     watermark_traces=None) -> Dict[str, Any]:
    """The comparable outcome of a run, restricted to ``owned_ops``."""
    metrics = job.metrics
    view: Dict[str, Any] = {
        "latency_samples": list(metrics.latency_samples),
        "source_events": list(metrics._source_events),
        "sink_events": list(metrics._sink_events),
        "custom": {k: list(v) for k, v in metrics.custom.items()},
        "state_digests": {},
        "watermarks": {},
        "records_processed": {},
        "sinks": {},
        "watermark_traces": dict(watermark_traces or {}),
    }
    sink_names = {spec.name for spec in job.graph.sinks()}
    for op_name in owned_ops:
        for inst in job.instances(op_name):
            view["watermarks"][inst.name] = inst.current_watermark
            view["records_processed"][inst.name] = inst.records_processed
            if inst.state.groups():
                view["state_digests"][inst.name] = _state_digest(inst)
            if op_name in sink_names:
                logic = inst.logic
                view["sinks"][inst.name] = {
                    "records_in": getattr(logic, "records_in", None),
                    "collected": ([_record_view(r)
                                   for r in logic.collected]
                                  if collect_sinks and
                                  getattr(logic, "collect", False) else None),
                }
    return view


def _merge_views(views: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {
        "latency_samples": [], "source_events": [], "sink_events": [],
        "custom": {}, "state_digests": {}, "watermarks": {},
        "records_processed": {}, "sinks": {}, "watermark_traces": {},
    }
    for v in views:
        merged["latency_samples"] += v["latency_samples"]
        merged["source_events"] += v["source_events"]
        merged["sink_events"] += v["sink_events"]
        for k, series in v["custom"].items():
            merged["custom"].setdefault(k, []).extend(series)
        for k in ("state_digests", "watermarks", "records_processed",
                  "sinks", "watermark_traces"):
            merged[k].update(v[k])
    # Cross-shard concatenation order is shard order; normalize the merged
    # time series so they compare equal to the single-process ordering.
    merged["latency_samples"].sort()
    merged["source_events"].sort()
    merged["sink_events"].sort()
    for series in merged["custom"].values():
        series.sort()
    return merged


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def _install_watermark_trace(job, traces: Dict[str, List]) -> None:
    """Record (arrival sim-time, timestamp) of every sink-side watermark."""
    from ..engine.records import Watermark
    for spec in job.graph.sinks():
        for inst in job.instances(spec.name):
            trace = traces.setdefault(inst.name, [])

            def intercept(channel, element, _inst=inst, _trace=trace):
                if element.__class__ is Watermark:
                    _trace.append((_inst.sim._now, element.timestamp))
                return False

            inst.element_interceptor = intercept


def _apply_inbox_overrides(job, overrides: Dict[str, int]) -> None:
    """Set per-edge inbox (credit) capacities on a freshly built job.

    ``overrides`` maps edge names (``"src->dst"``) to capacities; every
    physical channel of a matching edge gets the new capacity (credits are
    still untouched by traffic at this point, so they are reset too).
    Used by both the sharded workers and the single-process reference so
    the two runs being compared simulate identical flow control.
    """
    if not overrides:
        return
    for op_name in job.graph.operators:
        for inst in job.instances(op_name):
            for edge in inst.router.edges:
                cap = overrides.get(f"{op_name}->{edge.dst_op}")
                if cap is None:
                    continue
                for ch in edge.channels:
                    ch.inbox_capacity = cap
                    ch.credits = cap


def _build_local_job(workload, spec: ShardSpec):
    """Replicate ``Workload.build`` with shard-selective generator spawn."""
    from ..engine.runtime import JobConfig, StreamJob
    config = JobConfig(**spec.config_kwargs)
    graph = workload.build_graph()
    job = StreamJob(graph, config=config)
    job.build()
    _apply_inbox_overrides(job, spec.inbox_overrides)
    owned = set(spec.shards[spec.shard_id])
    owns_sources = any(graph.operators[name].is_source for name in owned)
    if owns_sources:
        for index, generator in enumerate(workload.generators(job)):
            job.sim.spawn(generator, name=f"{workload.name}-gen-{index}")
    if spec.collect_sinks:
        for sink_spec in graph.sinks():
            if sink_spec.name in owned:
                for inst in job.instances(sink_spec.name):
                    inst.logic.collect = True
    return job, owned


def _localize(job, spec: ShardSpec):
    """Replace cross-shard channel endpoints with proxies; start owned ops.

    Returns ``(egress_buffers, feeds, debits)`` where ``egress_buffers``
    maps a downstream shard id to its capture list, ``feeds`` maps channel
    id to its :class:`_IngressFeed`, and ``debits`` maps channel id to the
    credit-debit ledger list its egress endpoint appends to.
    """
    shard_of = {name: i for i, ops in enumerate(spec.shards)
                for name in ops}
    me = spec.shard_id
    egress_buffers: Dict[int, List] = {}
    debits: Dict[int, List] = {}
    feeds: Dict[int, _IngressFeed] = {}
    for cid, src_op, dst_op, ch in _enumerate_channels(job):
        s, d = shard_of[src_op], shard_of[dst_op]
        if s == d:
            continue
        if s == me:
            buf = egress_buffers.setdefault(d, [])
            debit = debits.setdefault(cid, [])
            ch.input_channel = _Egress(cid, job.sim, buf, ch.link.latency,
                                       ch.link.bandwidth, debit,
                                       strip_columns=(
                                           spec.transport != "shm"))
            ch.credits = float("inf")
        elif d == me:
            feed = _IngressFeed(cid, job.sim, ch.link)
            ic = ch.input_channel
            ic.channel = feed
            feed.update_bound()
            feeds[cid] = feed
    owned = set(spec.shards[me])
    for op_name in owned:
        for inst in job.instances(op_name):
            inst.start()
    return egress_buffers, feeds, debits


def _inject(ic, kind: str, element) -> None:
    if kind == "e":
        ic.deliver(element)
    elif kind == "b":
        ic.deliver_batch(element)
    else:
        ic.deliver_control(element)


# ---------------------------------------------------------------------------
# Cut-edge transports
# ---------------------------------------------------------------------------

#: Blocked/writer-full wait backoff: start, cap (seconds).
_WAIT_MIN = 5e-5
_WAIT_MAX = 2e-3
#: Safety bound on one blocked wait (mirrors the legacy 10 s poll timeout).
_WAIT_LIMIT = 10.0
#: Max blocked-wait intervals kept for the telemetry trace.
_MAX_INTERVALS = 4096


class _SyncStats:
    """Per-worker synchronization-protocol counters (one per worker,
    shared by all of its senders; shipped in the result bundle)."""

    __slots__ = ("transport", "null_sent", "null_suppressed",
                 "grant_rounds", "frames_sent", "msgs_sent",
                 "bytes_shipped", "spills", "batch_fallbacks",
                 "blocked_waits", "blocked_wait_s", "writer_full_wait_s",
                 "blocked_intervals")

    def __init__(self, transport: str):
        self.transport = transport
        self.null_sent = 0           # bare-grant frames actually sent
        self.null_suppressed = 0     # grant advances not sent (no demand)
        self.grant_rounds = 0        # synchronization rounds (flush calls)
        self.frames_sent = 0
        self.msgs_sent = 0           # staged cut-edge messages shipped
        self.bytes_shipped = 0
        self.spills = 0              # frames too large for the ring
        self.batch_fallbacks = 0     # batches that needed whole-pickle
        self.blocked_waits = 0
        self.blocked_wait_s = 0.0
        self.writer_full_wait_s = 0.0
        #: (start, end) wall seconds relative to worker start, capped.
        self.blocked_intervals: List[Tuple[float, float]] = []

    def as_dict(self) -> Dict[str, Any]:
        return {
            "transport": self.transport,
            "null_sent": self.null_sent,
            "null_suppressed": self.null_suppressed,
            "grant_rounds": self.grant_rounds,
            "frames_sent": self.frames_sent,
            "msgs_sent": self.msgs_sent,
            "bytes_shipped": self.bytes_shipped,
            "spills": self.spills,
            "batch_fallbacks": self.batch_fallbacks,
            "blocked_waits": self.blocked_waits,
            "blocked_wait_s": self.blocked_wait_s,
            "writer_full_wait_s": self.writer_full_wait_s,
            "blocked_intervals": self.blocked_intervals,
        }


class _AdaptiveQuantum:
    """Per-worker quantum controller: widen while rounds are productive,
    shrink back toward the initial quantum on blocked waits.

    Host pacing only — the quantum never changes *what* is simulated
    (injection times are exact), just how much sim-time each
    synchronization round covers, i.e. how often the worker pays flush +
    grant overhead.  ``growth_limit=1`` pins the quantum (legacy
    fixed-quantum behaviour).
    """

    __slots__ = ("value", "initial", "qmax", "streak", "widenings",
                 "shrinks")

    def __init__(self, initial: float,
                 growth_limit: float = QUANTUM_GROWTH_LIMIT):
        self.value = initial
        self.initial = initial
        self.qmax = initial * growth_limit
        self.streak = 0
        self.widenings = 0
        self.shrinks = 0

    def productive(self) -> None:
        """A round advanced the frontier without a blocked wait."""
        self.streak += 1
        if self.streak >= PRODUCTIVE_STREAK and self.value < self.qmax:
            self.value = min(self.value * 2.0, self.qmax)
            self.streak = 0
            self.widenings += 1

    def blocked(self) -> None:
        """A round stalled on upstream grants."""
        self.streak = 0
        if self.value > self.initial:
            self.value = max(self.value * 0.5, self.initial)
            self.shrinks += 1


class _ShmSender:
    """Upstream endpoint of one cut shard pair over a shared-memory ring.

    Data frames always carry the current grant (piggybacking).  Bare
    grants are demand-driven: sent only when the grant advanced *and* the
    downstream reader has raised its blocked flag — otherwise the advance
    is only noted (``null_suppressed``) and will piggyback on the next
    data frame, or be sent late if the reader blocks on it after all.
    """

    __slots__ = ("ring", "spill", "stats", "sent_grant", "seen_grant")

    def __init__(self, ring: ShmRing, spill, stats: _SyncStats):
        self.ring = ring
        self.spill = spill  # legacy pipe: oversized-frame side channel
        self.stats = stats
        self.sent_grant = -1.0  # grant the receiver has actually seen
        self.seen_grant = -1.0  # newest grant observed (sent or not)

    def send(self, msgs: Optional[List], grant: float, final: bool) -> None:
        stats = self.stats
        if msgs or final:
            data = encode_frame(msgs or (), grant, final, stats=stats)
            if msgs:
                stats.msgs_sent += len(msgs)
                # Safe even though the ring write below may still be
                # waiting for space: the frame bytes captured everything
                # (columns copied, object payloads pickled) at encode
                # time, so clearing/mutating the staging list or the
                # elements cannot corrupt the receiver.  Regression:
                # tests/simulation/test_shm_ring.py.
                msgs.clear()
            self._push(data)
            self.sent_grant = self.seen_grant = grant
            return
        if grant > self.seen_grant:
            self.seen_grant = grant
            if self.ring.reader_blocked():
                self._push(encode_frame((), grant, False))
                self.sent_grant = grant
                stats.null_sent += 1
            else:
                stats.null_suppressed += 1
        elif grant > self.sent_grant and self.ring.reader_blocked():
            # Previously-suppressed grant, but the reader has since
            # blocked on it: deliver the null message now.
            self._push(encode_frame((), grant, False))
            self.sent_grant = grant
            stats.null_sent += 1

    def _push(self, data: bytes) -> None:
        stats = self.stats
        ring = self.ring
        stats.frames_sent += 1
        stats.bytes_shipped += len(data)
        if len(data) + 4 > ring.capacity:
            # Frame larger than the ring: in-band marker first (keeps
            # frame order), then the payload over the side pipe.  The
            # marker-before-payload order matters — the reader only does
            # a blocking pipe read after consuming the marker, so the
            # writer can never wedge mid-protocol.
            stats.spills += 1
            t0 = time.perf_counter()
            delay = _WAIT_MIN
            while not ring.push_spill_marker():
                time.sleep(delay)
                if delay < _WAIT_MAX:
                    delay *= 2
            stats.writer_full_wait_s += time.perf_counter() - t0
            self.spill.send_bytes(data)
            return
        if ring.push(data):
            return
        # Ring full: the reader always drains (its main loop and its
        # blocked wait both poll), so back off until space frees up —
        # the shm analogue of the legacy pipe-full blocking write.
        t0 = time.perf_counter()
        delay = _WAIT_MIN
        while not ring.push(data):
            time.sleep(delay)
            if delay < _WAIT_MAX:
                delay *= 2
        stats.writer_full_wait_s += time.perf_counter() - t0


class _PipeSender:
    """Legacy transport: the PR 8 pickle-over-pipe protocol, unchanged on
    the wire in all but pickle protocol number — grants are sent eagerly
    on every advance (no demand tracking), data rides whole-object
    pickles.  Kept as the portability fallback and as the measurable
    baseline the shm transport's counters are compared against."""

    __slots__ = ("conn", "stats", "sent_grant")

    def __init__(self, conn, stats: _SyncStats):
        self.conn = conn
        self.stats = stats
        self.sent_grant = -1.0

    def send(self, msgs: Optional[List], grant: float, final: bool) -> None:
        if msgs or grant > self.sent_grant:
            stats = self.stats
            payload = pickle.dumps(
                ("done" if final else "adv", grant, msgs or []),
                _PICKLE_PROTO)
            if msgs:
                stats.msgs_sent += len(msgs)
                # The dumps() above captured the list synchronously;
                # clear in place — the _Egress endpoints hold a
                # reference to this list.
                msgs.clear()
            elif not final:
                stats.null_sent += 1
            self.conn.send_bytes(payload)
            self.sent_grant = grant
            stats.frames_sent += 1
            stats.bytes_shipped += len(payload)


class _ShmReceiver:
    """Downstream endpoint of one cut pair: drains frames off the ring
    (fetching spilled payloads from the side pipe) and tracks the
    upstream grant."""

    __slots__ = ("ring", "spill", "grant", "done")

    def __init__(self, ring: ShmRing, spill):
        self.ring = ring
        self.spill = spill
        self.grant = 0.0
        self.done = False

    def poll(self, out: List) -> bool:
        """Decode every available frame into ``out``; True if any frame
        (data or bare grant) arrived."""
        got = False
        ring = self.ring
        while True:
            item = ring.pop()
            if item is None:
                break
            if item is SPILL:
                item = self.spill.recv_bytes()
            grant, final, msgs = decode_frame(item)
            got = True
            if grant > self.grant:
                self.grant = grant
            if final:
                self.grant = math.inf
                self.done = True
            if msgs:
                out.extend(msgs)
        return got


class _PipeReceiver:
    """Legacy receive endpoint (counterpart of :class:`_PipeSender`)."""

    __slots__ = ("conn", "grant", "done")

    def __init__(self, conn):
        self.conn = conn
        self.grant = 0.0
        self.done = False

    def poll(self, out: List) -> bool:
        got = False
        conn = self.conn
        while conn.poll():
            kind, grant, msgs = pickle.loads(conn.recv_bytes())
            got = True
            if grant > self.grant:
                self.grant = grant
            if kind == "done":
                self.grant = math.inf
                self.done = True
            if msgs:
                out.extend(msgs)
        return got


def _worker_main(shard_id: int, workload_factory, spec_conn, result_conn,
                 upstream: Dict[int, Any], downstream: Dict[int, Any]):
    """One shard's event loop under conservative synchronization."""
    try:
        spec: ShardSpec = spec_conn.recv()
        workload = workload_factory()
        job, owned = _build_local_job(workload, spec)
        sim = job.sim
        egress_buffers, feeds, debits = _localize(job, spec)
        traces: Dict[str, List] = {}
        if spec.trace_watermarks:
            _install_watermark_trace(job, traces)
        ics = {}
        for cid, _s, _d, ch in _enumerate_channels(job):
            if cid in feeds:
                ics[cid] = ch.input_channel

        until = spec.until
        use_shm = spec.transport == "shm"
        stats = _SyncStats(spec.transport)
        aq = _AdaptiveQuantum(
            spec.quantum,
            QUANTUM_GROWTH_LIMIT if spec.adaptive_quantum else 1.0)
        senders = {}
        for d, endpoint in downstream.items():
            if use_shm:
                ring, spill = endpoint
                senders[d] = _ShmSender(ring, spill, stats)
            else:
                senders[d] = _PipeSender(endpoint, stats)
        receivers = {}
        for u, endpoint in upstream.items():
            if use_shm:
                ring, spill = endpoint
                receivers[u] = _ShmReceiver(ring, spill)
            else:
                receivers[u] = _PipeReceiver(endpoint)
        grants = {u: 0.0 for u in upstream}
        # Staged ingress: heap of (time, channel_id, seq, kind, payload).
        staged: List[Tuple] = []
        seqs = {cid: 0 for cid in feeds}
        my_grant = 0.0
        t0 = time.perf_counter()
        cpu0 = time.process_time()

        def stage(msgs: List) -> None:
            for mkind, cid, t, payload in msgs:
                seq = seqs[cid]
                seqs[cid] = seq + 1
                heapq.heappush(staged, (t, cid, seq, mkind, payload))
                feed = feeds[cid]
                feed.pending.append(t)
                feed.update_bound()

        def poll_all() -> bool:
            buf: List = []
            got = False
            for u, rx in receivers.items():
                if rx.poll(buf):
                    got = True
                g = rx.grant
                if g > grants[u]:
                    grants[u] = g
            if buf:
                stage(buf)
            return got

        def drain_upstream(block: bool) -> None:
            got = poll_all()
            if not block or got:
                return
            # Blocked wait: nothing new and the caller cannot advance.
            stats.blocked_waits += 1
            w0 = time.perf_counter()
            if use_shm:
                # Raise the blocked flag on the *binding* upstream rings
                # (grant == the current minimum) — that is the demand
                # signal their writers' null messages are gated on.  The
                # re-poll after raising the flags closes the race with a
                # writer that pushed between our first poll and the flag.
                low = min(grants.values()) if grants else math.inf
                flagged = [rx for u, rx in receivers.items()
                           if not rx.done and grants[u] <= low]
                for rx in flagged:
                    rx.ring.set_blocked(True)
                delay = _WAIT_MIN
                try:
                    while not poll_all():
                        if time.perf_counter() - w0 > _WAIT_LIMIT:
                            break
                        time.sleep(delay)
                        if delay < _WAIT_MAX:
                            delay *= 2
                finally:
                    for rx in flagged:
                        rx.ring.set_blocked(False)
            else:
                conns = [rx.conn for rx in receivers.values()]
                multiprocessing.connection.wait(conns, timeout=_WAIT_LIMIT)
                poll_all()
            w1 = time.perf_counter()
            stats.blocked_wait_s += w1 - w0
            if len(stats.blocked_intervals) < _MAX_INTERVALS:
                stats.blocked_intervals.append((w0 - t0, w1 - t0))

        def flush(final: bool) -> None:
            nonlocal my_grant
            stats.grant_rounds += 1
            local_next = sim.peek()
            pending_min = staged[0][0] if staged else math.inf
            safe = min(grants.values()) if grants else math.inf
            if final:
                my_grant = math.inf
            else:
                my_grant = max(my_grant,
                               min(local_next, pending_min, safe))
            for d, snd in senders.items():
                snd.send(egress_buffers.get(d), my_grant, final)

        def run_to(stop: float, inclusive: bool) -> None:
            """Advance local sim to ``stop``, injecting staged messages
            below it (at it too, when inclusive) at their exact times."""
            while staged:
                t = staged[0][0]
                if t > stop or (t == stop and not inclusive):
                    break
                sim.run(until=math.nextafter(t, -math.inf))
                # All messages at exactly t, canonical (t, cid, seq)
                # order, delivered by ONE kernel callback: the per-message
                # pop/update/inject sequence inside it is exactly the
                # sequence N separate consecutive-counter callbacks would
                # have produced, at a fraction of the heap traffic.
                batch = []
                while staged and staged[0][0] == t:
                    _t, cid, _seq, mkind, payload = heapq.heappop(staged)
                    batch.append((cid, mkind, payload))

                def deliver_all(batch=batch):
                    for cid, mkind, payload in batch:
                        feed = feeds[cid]
                        feed.pending.popleft()
                        feed.update_bound()
                        _inject(ics[cid], mkind, payload)

                sim.call_at(t, deliver_all)
            for feed in feeds.values():
                feed.floor = stop
                feed.update_bound()
            if inclusive:
                sim.run(until=stop)
            else:
                sim.run(until=math.nextafter(stop, -math.inf))

        # `frontier` is the exclusive simulated-time bound this shard has
        # fully executed (run_to leaves sim._now at nextafter(stop, -inf),
        # so sim._now itself never equals the bound).
        frontier = 0.0
        profiler = None
        if os.environ.get("REPRO_SHARD_PROFILE"):
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
        while True:
            drain_upstream(block=False)
            safe = min(grants.values()) if grants else math.inf
            if safe > until:
                # Everything upstream is final: run inclusive of events at
                # `until` (matching single-process job.run semantics),
                # chunked so downstream keeps receiving traffic.
                while frontier < until:
                    frontier = min(frontier + aq.value, until)
                    if frontier == until:
                        break
                    run_to(frontier, inclusive=False)
                    flush(final=False)
                    aq.productive()
                run_to(until, inclusive=True)
                job._sync_batches()
                flush(final=True)
                break
            stop = min(safe, frontier + aq.value, until)
            if stop > frontier or (staged and staged[0][0] < stop):
                run_to(stop, inclusive=False)
                frontier = max(frontier, stop)
                flush(final=False)
                aq.productive()
            else:
                # Cannot advance: wait for upstream grants/messages.
                flush(final=False)
                aq.blocked()
                drain_upstream(block=True)

        if profiler is not None:
            profiler.disable()
            import pstats
            out = os.environ["REPRO_SHARD_PROFILE"]
            profiler.dump_stats(f"{out}.shard{shard_id}.prof")
        view = collect_run_view(job, owned,
                                collect_sinks=spec.collect_sinks,
                                watermark_traces=traces)
        sync = stats.as_dict()
        sync["quantum_initial"] = aq.initial
        sync["quantum_final"] = aq.value
        sync["quantum_max"] = aq.qmax
        sync["quantum_widenings"] = aq.widenings
        sync["quantum_shrinks"] = aq.shrinks
        bundle = {
            "shard_id": shard_id,
            "view": view,
            "events_processed": sim.events_processed,
            "wall_s": time.perf_counter() - t0,
            "cpu_s": time.process_time() - cpu0,
            "credit_returns": {cid: feed.returns
                               for cid, feed in feeds.items()},
            "credit_debits": debits,
            "inbox_capacity": job.config.inbox_capacity,
            "sync": sync,
        }
        result_conn.send(("done", bundle))
    except BaseException:
        try:
            result_conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent gone
            pass
    finally:
        result_conn.close()


# ---------------------------------------------------------------------------
# Credit-ledger replay (post-hoc backpressure check)
# ---------------------------------------------------------------------------

def _replay_credits(debits: Dict[int, List[Tuple[float, int]]],
                    returns: Dict[int, List[float]],
                    capacity,
                    edge_of: Optional[Dict[int, str]] = None,
                    ) -> Tuple[bool, List[str], set]:
    """Replay each cut channel's credit counter; flag exhaustion.

    ``capacity`` is either one int for every channel or a ``cid ->
    capacity`` mapping (per-cut-edge inbox overrides from the plan's cut
    hints land here).
    """
    problems = []
    flagged = set()
    edge_of = edge_of or {}
    per_cid = capacity if isinstance(capacity, dict) else None
    for cid, debit_list in debits.items():
        cap = per_cid[cid] if per_cid is not None else capacity
        events = [(when, 1, -k) for when, k in debit_list]
        events += [(when, 0, 1) for when in returns.get(cid, [])]
        events.sort()
        credits = cap
        low = cap
        for _when, _prio, delta in events:
            credits += delta
            low = min(low, credits)
        if low < 0:
            edge = edge_of.get(cid)
            where = f"channel {cid}" + (f" ({edge})" if edge else "")
            problems.append(
                f"{where}: single-process flow control would have "
                f"engaged (credit low-water {low}, capacity {cap})")
            if edge:
                flagged.add(edge)
    return (not problems), problems, flagged


# ---------------------------------------------------------------------------
# Result + orchestration
# ---------------------------------------------------------------------------

class ShardedRunResult:
    """Merged outcome of a sharded (or reference single-process) run."""

    def __init__(self, view: Dict[str, Any], *, shards: int, plan=None,
                 events_per_shard=None, wall_s: float = 0.0,
                 worker_walls=None, worker_cpus=None,
                 backpressure_safe: bool = True,
                 backpressure_detail=None, until: float = 0.0,
                 replans: int = 0, forbidden_cuts=None,
                 transport: Optional[str] = None, sync_per_shard=None):
        self.view = view
        self.shards = shards
        self.plan = plan
        self.events_per_shard = events_per_shard or []
        self.wall_s = wall_s
        self.worker_walls = worker_walls or []
        self.worker_cpus = worker_cpus or []
        self.backpressure_safe = backpressure_safe
        self.backpressure_detail = backpressure_detail or []
        self.until = until
        self.replans = replans
        self.forbidden_cuts = sorted(forbidden_cuts or [])
        #: ``"shm"`` / ``"pipe"`` for sharded runs, None single-process.
        self.transport = transport
        #: Per-shard sync-protocol counter dicts (see ``_SyncStats``).
        self.sync_per_shard: List[Dict[str, Any]] = sync_per_shard or []
        self._flagged_edges: set = set()

    # -- bench-facing aggregates -------------------------------------------

    @property
    def kernel_events(self) -> int:
        return sum(self.events_per_shard)

    @property
    def bottleneck_cpu_s(self) -> float:
        """CPU seconds of the busiest shard — the critical-path wall time
        the run would take with one free core per shard.  On machines with
        fewer cores than shards, measured wall-clock reflects timeslicing
        of one core, not the pipeline; this is the hardware-independent
        number (plus IPC, which overlaps with compute)."""
        return max(self.worker_cpus, default=0.0)

    def total_source_output(self) -> int:
        return sum(c for _t, c in self.view["source_events"])

    def total_sink_input(self) -> int:
        return sum(c for _t, c in self.view["sink_events"])

    def sync_totals(self) -> Dict[str, Any]:
        """Sum of the sync-protocol counters across shards (the
        per-`BENCH_e2e.json`/shard-check aggregate).  Empty for
        single-process runs."""
        if not self.sync_per_shard:
            return {}
        totals: Dict[str, Any] = {"transport": self.transport}
        for key in ("null_sent", "null_suppressed", "grant_rounds",
                    "frames_sent", "msgs_sent", "bytes_shipped", "spills",
                    "batch_fallbacks", "blocked_waits"):
            totals[key] = sum(s.get(key, 0) for s in self.sync_per_shard)
        for key in ("blocked_wait_s", "writer_full_wait_s"):
            totals[key] = sum(s.get(key, 0.0) for s in self.sync_per_shard)
        return totals

    # -- equivalence -------------------------------------------------------

    def semantic_view(self) -> Dict[str, Any]:
        """The cross-process-comparable subtree (no kernel event counts —
        injection callbacks inflate them; no wall-clock).

        Time series are sorted: a sharded run concatenates per-shard
        series, a single-process run records them in dispatch order — the
        multisets must be identical, the interleavings need not be.
        """
        view = dict(self.view)
        view["latency_samples"] = sorted(view["latency_samples"])
        view["source_events"] = sorted(view["source_events"])
        view["sink_events"] = sorted(view["sink_events"])
        view["custom"] = {k: sorted(v) for k, v in view["custom"].items()}
        return view


def run_single_reference(workload_factory, *, until: float,
                         job_config=None, collect_sinks: bool = False,
                         trace_watermarks: bool = False,
                         inbox_overrides: Optional[Dict[str, int]] = None,
                         ) -> ShardedRunResult:
    """Single-process run producing the same result shape as a sharded run.

    ``inbox_overrides`` applies per-edge inbox capacities (the plan's cut
    hints) so the reference simulates the same flow control as a sharded
    run configured with them.
    """
    from ..engine.runtime import JobConfig
    import dataclasses as _dc
    config = job_config or JobConfig()
    if config.shards != 1:
        config = _dc.replace(config, shards=1)
    workload = workload_factory()
    job = workload.build(job_config=config)
    _apply_inbox_overrides(job, inbox_overrides or {})
    if collect_sinks:
        for spec in job.graph.sinks():
            for inst in job.instances(spec.name):
                inst.logic.collect = True
    traces: Dict[str, List] = {}
    if trace_watermarks:
        _install_watermark_trace(job, traces)
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    job.run(until=until)
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - t0
    view = collect_run_view(job, list(job.graph.operators),
                            collect_sinks=collect_sinks,
                            watermark_traces=traces)
    return ShardedRunResult(view, shards=1,
                            events_per_shard=[job.sim.events_processed],
                            wall_s=wall, worker_cpus=[cpu], until=until)


def run_sharded(workload_factory, *, until: float, shards: int,
                job_config=None, weights: Optional[Dict[str, float]] = None,
                collect_sinks: bool = False,
                trace_watermarks: bool = False,
                quantum: float = DEFAULT_QUANTUM,
                max_replans: int = 1,
                transport: Optional[str] = None,
                cut_inbox: Optional[Dict[str, int]] = None,
                ring_bytes=None) -> ShardedRunResult:
    """Run a workload to ``until`` across ``shards`` worker processes.

    ``workload_factory`` must be a zero-argument callable returning a
    fresh :class:`~repro.workloads.base.Workload`; each worker calls it
    after forking and builds the *full* job deterministically, then starts
    only its own shard's instances.  Falls back to
    :func:`run_single_reference` when ``shards <= 1``, the plan collapses
    to one shard, or the platform cannot fork.

    ``transport`` picks the cut-edge data plane (``"shm"`` / ``"pipe"`` /
    ``"auto"``); None defers to ``job_config.shard_transport``.  ``"auto"``
    prefers shm and degrades to pipe if shared memory is unavailable.
    ``cut_inbox`` maps edge names to per-cut-edge inbox-capacity overrides
    and ``ring_bytes`` (int or per-edge mapping) sizes the shared-memory
    rings; both are recorded as cut hints on the partition plan.  A caller
    that passes ``cut_inbox`` must pass the same mapping to
    :func:`run_single_reference` (``inbox_overrides``) for equivalence
    comparisons.

    When the post-hoc credit ledger shows single-process flow control
    would have engaged on a cut channel (``backpressure_safe`` False —
    the one case where results may diverge from single-process), the run
    is re-planned with those edges forbidden and retried, up to
    ``max_replans`` times.  A result that still is not certified is
    returned with ``backpressure_safe=False`` so callers can fall back.
    """
    from ..engine.runtime import JobConfig
    config = job_config or JobConfig()
    support = supports_sharding(config)
    if shards <= 1 or not support:
        if shards > 1 and not support:
            warnings.warn(
                f"sharded run degraded to single-process "
                f"[{support.reason}]: {support.detail}",
                RuntimeWarning, stacklevel=2)
        return run_single_reference(
            workload_factory, until=until, job_config=config,
            collect_sinks=collect_sinks, trace_watermarks=trace_watermarks,
            inbox_overrides=cut_inbox)
    if transport is None:
        transport = getattr(config, "shard_transport", None) or "auto"
    if transport == "auto":
        transport = "shm"

    # Plan on a throwaway build (actual channel latencies, no run).
    probe_workload = workload_factory()
    probe_job = probe_workload.build(job_config=dataclasses.replace(
        config, shards=1))

    forbidden: set = set()
    replans = 0
    while True:
        plan = plan_for_job(probe_job, shards, weights=weights,
                            forbidden_edges=forbidden)
        if plan.num_shards <= 1:
            return run_single_reference(
                workload_factory, until=until, job_config=config,
                collect_sinks=collect_sinks,
                trace_watermarks=trace_watermarks,
                inbox_overrides=cut_inbox)
        plan.annotate_cuts(ring_bytes=ring_bytes, inbox_overrides=cut_inbox)
        result = _run_sharded_once(
            workload_factory, probe_job, plan, config, until=until,
            collect_sinks=collect_sinks, trace_watermarks=trace_watermarks,
            quantum=quantum, transport=transport)
        result.replans = replans
        result.forbidden_cuts = sorted(forbidden)
        flagged = result._flagged_edges & set(plan.cut_edges)
        if result.backpressure_safe or replans >= max_replans or not flagged:
            return result
        forbidden |= flagged
        replans += 1


def _pair_ring_bytes(plan, pair_edges: Dict[Tuple[int, int], List[str]],
                     pair) -> int:
    """Ring capacity for one cut shard pair: the max ``ring_bytes`` hint
    over the pair's edges, defaulting to :data:`DEFAULT_RING_BYTES`."""
    best = 0
    for name in pair_edges.get(pair, ()):
        best = max(best, plan.cut_hints.get(name, {}).get("ring_bytes", 0))
    return best or DEFAULT_RING_BYTES


def _run_sharded_once(workload_factory, probe_job, plan, config, *,
                      until: float, collect_sinks: bool,
                      trace_watermarks: bool, quantum: float,
                      transport: str = "shm") -> ShardedRunResult:
    ctx = multiprocessing.get_context("fork")
    spec_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]
    # One pipe per cut shard pair (u -> v): the data plane for the pipe
    # transport, the oversized-frame spill channel for shm.
    pairs = set()
    pair_edges: Dict[Tuple[int, int], List[str]] = {}
    shard_of = plan.shard_of
    for e in probe_job.graph.edges:
        s, d = shard_of[e.src], shard_of[e.dst]
        if s != d:
            pairs.add((s, d))
            pair_edges.setdefault((s, d), []).append(e.name)
    pair_pipes = {pair: ctx.Pipe(duplex=False) for pair in sorted(pairs)}

    # Shared-memory rings, created by the parent *before* forking so the
    # workers inherit the mappings (nothing pickled, no re-attach); the
    # parent closes and unlinks them after the run.
    rings: Dict[Tuple[int, int], ShmRing] = {}
    if transport == "shm":
        try:
            for pair in sorted(pairs):
                rings[pair] = ShmRing(_pair_ring_bytes(plan, pair_edges,
                                                       pair))
        except OSError as exc:  # pragma: no cover - shm-less platforms
            for ring in rings.values():
                ring.close()
                ring.unlink()
            rings.clear()
            transport = "pipe"
            warnings.warn(
                f"shared-memory transport unavailable ({exc}); falling "
                f"back to the pipe transport", RuntimeWarning,
                stacklevel=2)

    inbox_overrides = {name: hints["inbox_capacity"]
                       for name, hints in plan.cut_hints.items()
                       if "inbox_capacity" in hints}

    def endpoint(pair, end: int):
        # end 0 = receiver side, 1 = sender side of the pair's pipe.
        if transport == "shm":
            return (rings[pair], pair_pipes[pair][end])
        return pair_pipes[pair][end]

    workers = []
    t0 = time.perf_counter()
    try:
        for sid in range(plan.num_shards):
            up = {u: endpoint((u, v), 0) for (u, v) in pairs if v == sid}
            down = {v: endpoint((u, v), 1) for (u, v) in pairs if u == sid}
            proc = ctx.Process(
                target=_worker_main,
                args=(sid, workload_factory, spec_pipes[sid][0],
                      result_pipes[sid][1], up, down),
                name=f"repro-shard-{sid}", daemon=True)
            proc.start()
            workers.append(proc)
        spec = ShardSpec(shard_id=0, shards=plan.shards, until=until,
                         quantum=quantum,
                         config_kwargs=_config_kwargs(config),
                         collect_sinks=collect_sinks,
                         trace_watermarks=trace_watermarks,
                         transport=transport,
                         adaptive_quantum=(transport == "shm"),
                         inbox_overrides=inbox_overrides)
        for sid in range(plan.num_shards):
            spec_pipes[sid][1].send(dataclasses.replace(spec,
                                                        shard_id=sid))

        bundles: Dict[int, Dict] = {}
        try:
            pending = {sid: result_pipes[sid][0]
                       for sid in range(plan.num_shards)}
            while pending:
                ready = multiprocessing.connection.wait(
                    list(pending.values()), timeout=1.0)
                if not ready:
                    for sid, proc in enumerate(workers):
                        if (sid not in bundles
                                and proc.exitcode not in (None, 0)):
                            raise RuntimeError(
                                f"shard {sid} worker died "
                                f"(exit {proc.exitcode})")
                    continue
                for conn in ready:
                    sid = next(s for s, c in pending.items() if c is conn)
                    status, payload = conn.recv()
                    if status == "err":
                        raise RuntimeError(
                            f"shard {sid} worker failed:\n{payload}")
                    bundles[sid] = payload
                    del pending[sid]
            for proc in workers:
                proc.join(timeout=30.0)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
    finally:
        for ring in rings.values():
            ring.close()
            ring.unlink()
    wall = time.perf_counter() - t0

    ordered = [bundles[sid] for sid in range(plan.num_shards)]
    view = _merge_views([b["view"] for b in ordered])

    # Post-hoc flow-control certification: replay every cut channel's
    # credit counter (sender-side debits vs receiver-side return times),
    # honouring per-cut-edge capacity overrides from the plan hints.
    edge_of = {cid: f"{src}->{dst}"
               for cid, src, dst, _ch in _enumerate_channels(probe_job)}
    backpressure_safe, detail, flagged = _ledger_check(
        ordered, edge_of, inbox_overrides)

    result = ShardedRunResult(
        view, shards=plan.num_shards, plan=plan,
        events_per_shard=[b["events_processed"] for b in ordered],
        wall_s=wall,
        worker_walls=[b["wall_s"] for b in ordered],
        worker_cpus=[b.get("cpu_s", 0.0) for b in ordered],
        backpressure_safe=backpressure_safe,
        backpressure_detail=detail, until=until,
        transport=transport,
        sync_per_shard=[b.get("sync", {}) for b in ordered])
    result._flagged_edges = flagged
    return result


def _ledger_check(bundles: List[Dict],
                  edge_of: Optional[Dict[int, str]] = None,
                  inbox_overrides: Optional[Dict[str, int]] = None,
                  ) -> Tuple[bool, List[str], set]:
    """Replay cut-channel credit counters from the workers' ledgers."""
    capacity = bundles[0].get("inbox_capacity", 32) if bundles else 32
    debits: Dict[int, List[Tuple[float, int]]] = {}
    returns: Dict[int, List[float]] = {}
    for b in bundles:
        for cid, lst in b.get("credit_debits", {}).items():
            debits.setdefault(cid, []).extend(lst)
        for cid, lst in b.get("credit_returns", {}).items():
            returns.setdefault(cid, []).extend(lst)
    if not debits:
        return True, [], set()
    if inbox_overrides and edge_of:
        per_cid = {cid: inbox_overrides.get(edge, capacity)
                   for cid, edge in edge_of.items()}
        return _replay_credits(debits, returns, per_cid, edge_of)
    return _replay_credits(debits, returns, capacity, edge_of)
