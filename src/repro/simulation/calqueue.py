"""Calendar-queue (bucketed-wheel) event scheduler.

Drop-in alternative to the binary heap in :mod:`repro.simulation.kernel`
for the timer-dominated event populations of paper-scale runs: channel
latencies, bare-delay service times and window triggers cluster tightly
around ``now``, so a bucketed wheel gives O(1) amortized push/pop where a
binary heap pays O(log n) sift costs per operation.

Design (classic calendar queue, adapted for exact determinism):

* Items are the kernel's ``(time, seq, entry)`` heap tuples.  ``seq`` is
  the kernel's global monotonic counter draw, so ``(time, seq)`` is a
  strict total order — the queue reproduces the binary heap's dispatch
  order *bit-identically* (same ties broken the same way), which the
  golden-trace suite enforces.
* The wheel covers ``[base, base + nbuckets * width)``.  A push appends
  to its bucket unsorted (O(1)); a bucket is sorted once, with timsort,
  when the drain cursor first enters it.  Pushes that land in the bucket
  currently being drained are insorted past the consume position, which
  keeps the already-sorted remainder exact.
* Items at or beyond the wheel horizon go to an *overflow lane* — the
  fallback sorted lane for far-future entries.  When every bucket is
  consumed the queue *rotates*: the overflow is sorted (cheap: timsort on
  an almost-sorted list after the first rotation), the near prefix is
  redistributed into a freshly sized wheel, and the far tail stays put.
* Rotation is where the queue adapts: bucket count and width are resized
  from the observed spacing of the next event cluster, targeting a small
  constant number of items per bucket.
* Bucket assignment uses one monotone float map (``(t - base) * invw``)
  for every item, so two items can never be placed in order-violating
  buckets: if ``t1 < t2`` then ``bucket(t1) <= bucket(t2)``.  Boundary
  rounding is clamped toward the current bucket / last bucket, which by
  the same monotonicity argument is always order-safe.
* Cancelled (``_defunct``) entries are left in place and skipped by the
  kernel on pop — identical lazy-cancellation contract as the heap.

The queue never draws counters and never reorders equal-``(time, seq)``
items (there are none); all determinism obligations live in the kernel.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue", "cq_push"]

_INF = float("inf")

#: Average items per bucket the rotation sizing aims for.
_TARGET_PER_BUCKET = 4
#: How many overflow items (at most) are sampled to estimate spacing.
_SAMPLE_CAP = 4096
#: Wheel size bounds (kept modest: clearing buckets on rotate is O(nb)).
_MIN_BUCKETS = 64
_MAX_BUCKETS = 8192
#: Floor on bucket width so degenerate spacing cannot zero the horizon.
_MIN_WIDTH = 1e-9


def _pow2_clamp(n: int) -> int:
    """Smallest power of two >= n, clamped into the wheel size bounds."""
    if n <= _MIN_BUCKETS:
        return _MIN_BUCKETS
    if n >= _MAX_BUCKETS:
        return _MAX_BUCKETS
    return 1 << (n - 1).bit_length()


class CalendarQueue:
    """Bucketed-wheel priority queue over ``(time, seq, entry)`` tuples."""

    __slots__ = ("_buckets", "_nbuckets", "_width", "_invw", "_base",
                 "_limit", "_cur", "_pos", "_sorted", "_overflow",
                 "_ovf_sorted", "_size", "rotations")

    def __init__(self, width: float = 0.001, nbuckets: int = _MIN_BUCKETS):
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive: {width}")
        if nbuckets < 1:
            raise ValueError(f"need at least one bucket: {nbuckets}")
        self._buckets: List[List[Tuple[float, int, Any]]] = [
            [] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        self._invw = 1.0 / width
        self._base = 0.0
        self._limit = nbuckets * width
        self._cur = 0            # bucket the drain cursor is in
        self._pos = 0            # consume position within the current bucket
        self._sorted = False     # current bucket sorted?
        self._overflow: List[Tuple[float, int, Any]] = []
        self._ovf_sorted = True
        self._size = 0
        #: Rotation count (diagnostics; read by the scheduler microbench).
        self.rotations = 0

    def __len__(self) -> int:
        return self._size

    # -- hot path ----------------------------------------------------------

    def push(self, item: Tuple[float, int, Any]) -> None:
        """Insert an item; O(1) except for same-bucket late insorts."""
        self._size += 1
        t = item[0]
        if t >= self._limit:
            self._overflow.append(item)
            self._ovf_sorted = False
            return
        idx = int((t - self._base) * self._invw)
        if idx >= self._nbuckets:
            idx = self._nbuckets - 1
        cur = self._cur
        if idx <= cur:
            # Either genuinely due in the bucket being drained, or boundary
            # rounding mapped it a bucket low — both are order-safe in the
            # current bucket (monotone map: everything in later buckets is
            # strictly later).
            b = self._buckets[cur]
            if self._sorted:
                insort(b, item, self._pos)
            else:
                b.append(item)
            return
        self._buckets[idx].append(item)

    def _next_ready(self) -> List[Tuple[float, int, Any]]:
        """Advance the cursor to the bucket holding the next item.

        Assumes ``_size > 0``.  Returns that bucket, sorted, with ``_pos``
        pointing at the minimum remaining item.
        """
        buckets = self._buckets
        while True:
            b = buckets[self._cur]
            if self._pos < len(b):
                if not self._sorted:
                    b.sort()
                    self._sorted = True
                return b
            if self._pos:
                del b[:]
                self._pos = 0
            self._sorted = False
            self._cur += 1
            if self._cur >= self._nbuckets:
                self._rotate()
                buckets = self._buckets  # rotation may resize the wheel

    def pop(self) -> Optional[Tuple[float, int, Any]]:
        """Remove and return the minimum item, or None when empty."""
        if not self._size:
            return None
        pos = self._pos
        if self._sorted:
            b = self._buckets[self._cur]
            if pos < len(b):
                self._pos = pos + 1
                self._size -= 1
                return b[pos]
        b = self._next_ready()
        pos = self._pos
        self._pos = pos + 1
        self._size -= 1
        return b[pos]

    def pop_at(self, when: float) -> Optional[Tuple[float, int, Any]]:
        """Pop the minimum item if it is due exactly at ``when``, else None.

        Fused peek+pop for the kernel's equal-time drain loop: one cursor
        walk instead of two.
        """
        if not self._size:
            return None
        pos = self._pos
        if self._sorted:
            b = self._buckets[self._cur]
            if pos < len(b):
                item = b[pos]
                if item[0] != when:
                    return None
                self._pos = pos + 1
                self._size -= 1
                return item
        b = self._next_ready()
        pos = self._pos
        item = b[pos]
        if item[0] != when:
            return None
        self._pos = pos + 1
        self._size -= 1
        return item

    def pop_le(self, limit: float) -> Optional[Tuple[float, int, Any]]:
        """Pop the minimum item if its time is <= ``limit``, else None."""
        if not self._size:
            return None
        pos = self._pos
        if self._sorted:
            b = self._buckets[self._cur]
            if pos < len(b):
                item = b[pos]
                if item[0] > limit:
                    return None
                self._pos = pos + 1
                self._size -= 1
                return item
        b = self._next_ready()
        pos = self._pos
        item = b[pos]
        if item[0] > limit:
            return None
        self._pos = pos + 1
        self._size -= 1
        return item

    def peek_item(self) -> Optional[Tuple[float, int, Any]]:
        """The minimum item without removing it, or None when empty."""
        if not self._size:
            return None
        b = self._next_ready()
        return b[self._pos]

    def peek_time(self) -> float:
        """Time of the minimum item, or ``inf`` when empty."""
        if not self._size:
            return _INF
        b = self._next_ready()
        return b[self._pos][0]

    # -- rotation ----------------------------------------------------------

    def _rotate(self) -> None:
        """Re-seat the wheel over the next event cluster in the overflow.

        Only called with ``_size > 0`` and every bucket consumed, so the
        overflow holds all remaining items.
        """
        ovf = self._overflow
        if not self._ovf_sorted:
            ovf.sort()
            self._ovf_sorted = True
        n = len(ovf)
        t0 = ovf[0][0]
        # Size the next window from the spacing of the upcoming cluster.
        k = n if n < _SAMPLE_CAP else _SAMPLE_CAP
        span = ovf[k - 1][0] - t0
        if span > 0.0 and k > 1:
            width = span * _TARGET_PER_BUCKET / (k - 1)
        else:
            width = self._width
        if width < _MIN_WIDTH:
            width = _MIN_WIDTH
        nb = _pow2_clamp(k // _TARGET_PER_BUCKET)
        if nb != self._nbuckets:
            self._buckets = [[] for _ in range(nb)]
            self._nbuckets = nb
        self._width = width
        self._invw = 1.0 / width
        self._base = t0
        limit = t0 + nb * width
        cut = bisect_left(ovf, (limit,))
        if cut == 0:
            # Degenerate horizon (float absorption at huge t0): take at
            # least the t0-equal cluster so the drain always progresses.
            cut = bisect_right(ovf, (t0, _INF))
            limit = t0
        self._limit = limit
        buckets = self._buckets
        invw = self._invw
        base = self._base
        last = self._nbuckets - 1
        for item in ovf[:cut]:
            idx = int((item[0] - base) * invw)
            if idx > last:
                idx = last
            buckets[idx].append(item)
        del ovf[:cut]
        self._cur = 0
        self._pos = 0
        self._sorted = False
        self.rotations += 1


def cq_push(queue: CalendarQueue, item: Tuple[float, int, Any]) -> None:
    """Push with the ``heapq.heappush(heap, item)`` calling convention.

    The kernel stores one push function per simulator (``sim._push``) so
    every schedule site is scheduler-agnostic; this is the calendar-queue
    binding, mirroring ``heapq.heappush`` for the heap binding.
    """
    queue.push(item)
