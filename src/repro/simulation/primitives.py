"""Synchronization primitives built on the DES kernel.

These are the building blocks the streaming engine uses to model bounded
buffers, wake-up conditions and resource gates:

* :class:`Signal` — a re-armable "something changed, re-check your condition"
  wake-up, the backbone of every operator's main loop.
* :class:`BoundedStore` — a FIFO buffer with blocking put (backpressure) and
  blocking get.
* :class:`Semaphore` — counted resource gate (used for per-node subscale
  concurrency limits).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .kernel import Event, SimulationError, Simulator

__all__ = ["Signal", "EdgeWake", "BoundedStore", "Semaphore"]


class Signal:
    """A level-triggered wake-up for condition-polling loops.

    A waiter calls :meth:`wait` and yields the returned event; any producer
    calls :meth:`fire` to wake *all* current waiters.  If :meth:`fire` is
    called while nobody waits, the next :meth:`wait` returns an already-fired
    event, so wake-ups are never lost.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: List[Event] = []
        self._pending = False

    def wait(self) -> Event:
        if self._pending:
            self._pending = False
            # Same counter draw `event().succeed()` made, minus the guards.
            return self._sim.completed()
        ev = self._sim.event()
        self._waiters.append(ev)
        return ev

    def fire(self) -> None:
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()
        else:
            self._pending = True


class EdgeWake:
    """Edge-triggered wake-up: a :meth:`fire` with no waiter is dropped.

    Strictly cheaper than :class:`Signal` — no pending latch means no
    spurious wake/re-poll round-trip through the event heap when a producer
    fires while the consumer is busy.  It is only correct for consumers that
    re-check *all* of their wake conditions immediately before each
    :meth:`wait`, with no simulation dispatch in between (the operator and
    source main loops do exactly this: the wakeable state — input queues,
    in-band functions, pause/stop flags — is re-read at the top of every
    loop iteration, so a dropped fire can never strand observable work).
    One-shot waiters that may :meth:`wait` *after* the producer fired must
    keep using :class:`Signal`.
    """

    __slots__ = ("_sim", "_waiters")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        ev = self._sim.event()
        self._waiters.append(ev)
        return ev

    def fire(self) -> None:
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()


class BoundedStore:
    """A bounded FIFO store with blocking put/get.

    ``put`` returns an event that fires once the item has been accepted,
    which may be immediately (space available) or later (backpressure).
    ``get`` returns an event that fires with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self._sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Deque[Any]:
        """The current buffer contents (read-only use expected)."""
        return self._items

    @property
    def free(self) -> float:
        return self.capacity - len(self._items)

    def put(self, item: Any) -> Event:
        ev = self._sim.event()
        if len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
            self._serve_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._serve_getters()
        return True

    def get(self) -> Event:
        ev = self._sim.event()
        self._getters.append(ev)
        self._serve_getters()
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._serve_putters()
        return item

    def _serve_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            putter, item = self._putters.popleft()
            if putter.triggered:
                continue
            self._items.append(item)
            putter.succeed()
            self._serve_getters()


class Semaphore:
    """Counted resource gate with FIFO acquisition order."""

    def __init__(self, sim: Simulator, count: int):
        if count < 1:
            raise SimulationError("semaphore count must be >= 1")
        self._sim = sim
        self._count = count
        self._capacity = count
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._count

    @property
    def in_use(self) -> int:
        return self._capacity - self._count

    def acquire(self) -> Event:
        ev = self._sim.event()
        if self._count > 0:
            self._count -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        if self._count >= self._capacity:
            raise SimulationError("semaphore released more than acquired")
        self._count += 1

    def cancel(self, ticket: Event) -> None:
        """Give back an :meth:`acquire` ticket, held or still queued.

        A process interrupted while waiting on ``acquire()`` abandons its
        ticket event; if that event stayed in the waiter queue, a later
        ``release`` would succeed it with nobody listening and the slot
        would leak forever.  ``cancel`` is safe in either state: a granted
        ticket releases the slot, a queued one is simply withdrawn.
        """
        if ticket.triggered:
            self.release()
            return
        try:
            self._waiters.remove(ticket)
        except ValueError:
            pass
