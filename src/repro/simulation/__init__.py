"""Discrete-event simulation substrate: kernel, primitives, randomness."""

from .kernel import Event, Interrupt, Process, SimulationError, Simulator
from .primitives import BoundedStore, EdgeWake, Semaphore, Signal
from .randomness import ZipfSampler, exponential_interarrival, make_rng

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "BoundedStore",
    "EdgeWake",
    "Semaphore",
    "Signal",
    "ZipfSampler",
    "exponential_interarrival",
    "make_rng",
]
