"""Discrete-event simulation kernel.

The kernel is a small, deterministic, generator-based process engine in the
style of SimPy.  Simulated components are written as Python generators that
``yield`` :class:`Event` objects; the kernel resumes a process when the event
it waits on fires.  All state transitions happen at discrete simulated times
drawn from a single event heap, so runs are fully reproducible: identical
inputs produce identical traces.

Example::

    sim = Simulator()

    def ping(sim, interval):
        while True:
            yield sim.timeout(interval)
            print("ping at", sim.now)

    sim.spawn(ping(sim, 1.0))
    sim.run(until=5.0)

Hot-path notes (see ``docs/performance.md``):

* Queue entries are ``(time, counter, entry)`` where ``entry`` is either an
  :class:`Event` or a bare :class:`_Callback` — ``call_at``/``call_in`` skip
  the full Event machinery.  Both respond to ``_dispatch()``.
* Tie-break order on equal times is the global ``counter`` draw order.  Any
  optimization here must preserve the *relative* order of counter draws for
  retained events; removing a draw-less dispatch (e.g. skipping a defunct
  timeout) shifts nothing and is safe, while reordering draws is not.
* Cancelled waits are marked ``_defunct`` and skipped on pop instead of
  being sifted out of the queue (lazy cancellation).  Defunct dispatches do
  not count toward ``events_processed``, and dispatch targets that detect a
  superseded schedule position call :meth:`Simulator.discount` so stale
  no-op pops do not inflate the count either.
* The pending-event queue is pluggable (``Simulator(scheduler=...)``):
  ``"heap"`` is the classic binary heap, ``"calendar"`` the
  calendar-queue / bucketed-wheel scheduler in
  :mod:`repro.simulation.calqueue`.  Both dispatch in exactly the same
  ``(time, counter)`` order, so traces are bit-identical; every schedule
  site pushes through ``sim._push(sim._heap, item)`` to stay
  scheduler-agnostic.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .calqueue import CalendarQueue, cq_push

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "Interrupt",
    "SCHEDULERS",
]

#: Supported pending-event queue implementations.
SCHEDULERS = ("heap", "calendar")


def _default_scheduler() -> str:
    """Process-wide default, overridable via ``REPRO_SCHEDULER``."""
    return os.environ.get("REPRO_SCHEDULER", "heap")


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-firing events, time travel, ...)."""


class Interrupt(Exception):
    """Thrown into a process when another component interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why the
    interruption happened (e.g. a scaling controller cancelling a wait).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Callback:
    """A bare heap entry that runs a function at its scheduled time.

    Carries none of the Event machinery: no value, no waiters, no triggered
    state.  This is what ``call_at``/``call_in`` push, and what
    ``Event.add_callback`` pushes for already-processed events.
    """

    __slots__ = ("fn", "_defunct")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self._defunct = False

    def _dispatch(self) -> None:
        self.fn()


#: Sentinel stored in ``Process._waiting_on`` while the process sleeps on a
#: bare-delay yield (no Event exists to point at).
_TIMEOUT_WAIT = object()


class _At:
    """Absolute-time wait marker: ``yield _At(when)`` sleeps until ``when``.

    The bare-delay shorthand (``yield <float>``) is relative; batch
    execution needs to park until a precomputed absolute end time without
    re-deriving the delta (and its float error) at resume time.  Uses the
    same reusable timeout entry and counter-draw position as a bare delay.
    """

    __slots__ = ("when",)

    def __init__(self, when: float):
        self.when = when


class Event:
    """A one-shot occurrence that processes can wait on.

    Events start *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules all registered callbacks to run at the current simulated time.
    An event may be waited on by any number of processes and may carry a
    value, delivered as the result of the ``yield``.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_scheduled", "_defunct")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # True for events already on the heap with a future fire time
        # (timeouts, call_at): they cannot be succeeded manually, but they
        # have NOT fired yet — composites must wait for them.
        self._scheduled = False
        # Lazily-cancelled: still in the heap, skipped at dispatch.
        self._defunct = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self._processed

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking all waiters at ``sim.now``."""
        if self._triggered or self._scheduled:
            raise SimulationError("event already triggered or scheduled")
        self._triggered = True
        self._value = value
        self._ok = True
        sim = self.sim
        sim._push(sim._heap, (sim._now, next(sim._counter), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters see the exception raised."""
        if self._triggered or self._scheduled:
            raise SimulationError("event already triggered or scheduled")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        sim = self.sim
        sim._push(sim._heap, (sim._now, next(sim._counter), self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already past."""
        if self.callbacks is None:
            # Already processed: run at the current time, preserving ordering
            # relative to other same-time activity via the event heap.
            sim = self.sim
            sim._push(
                sim._heap,
                (sim._now, next(sim._counter),
                 _Callback(lambda: callback(self))))
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def _process(self) -> None:
        # Backwards-compatible alias (pre-overhaul dispatch entry point).
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<Event {state} value={self._value!r}>"


class AnyOf(Event):
    """Composite event that fires when the first of its children fires.

    The value is the child event that fired first.  Used by components that
    must react to whichever of several things happens first (e.g. "a record
    arrived OR the migration completed").

    When the first child fires, the composite detaches from the remaining
    children; a heap-scheduled child (timeout) left with no other observers
    is marked defunct so it does not linger until its fire time.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child event")
        for child in self._children:
            if child.triggered:
                self.succeed(child)
                return
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        self.succeed(child)
        for other in self._children:
            if other is child:
                continue
            callbacks = other.callbacks
            if callbacks is None:
                continue
            try:
                callbacks.remove(self._on_child)
            except ValueError:
                continue
            if not callbacks and other._scheduled and not other._triggered:
                other._defunct = True


class AllOf(Event):
    """Composite event that fires once every child event has fired."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = 0
        for child in self._children:
            if not child.triggered:
                self._remaining += 1
                child.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])

    def _on_child(self, _child: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([c.value for c in self._children])


class Process(Event):
    """A running generator.  Also an event: fires when the generator ends.

    Yield protocol: the generator yields :class:`Event` instances — or a
    bare ``float``/``int`` delay, shorthand for ``sim.timeout(delay)``
    without the Event allocation (same heap position, same counter draw).
    When the yielded event fires, the process resumes with the event's value
    (or the exception, for failed events); a bare delay resumes with
    ``None``.
    """

    __slots__ = ("_generator", "name", "_waiting_on", "_timeout_entry")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: Reusable heap entry for bare-delay yields; at most one
        #: outstanding position (recreated after an interrupt leaves a
        #: stale, defunct-marked one behind).
        self._timeout_entry: Optional[_Callback] = None
        # Kick off the process at the current time.
        start = Event(sim)
        start._triggered = True
        start.callbacks.append(self._resume)
        sim._push(sim._heap, (sim._now, next(sim._counter), start))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        No-op if the process has already finished.  The abandoned wait is
        detached: its callback is removed so a later fire cannot spuriously
        resume the process, and a heap-scheduled wait left with no other
        observers is marked defunct (lazy cancellation).
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is _TIMEOUT_WAIT:
            # Waiting on a bare-delay entry: mark it defunct in place (lazy
            # cancellation) and drop it so a later delay gets a fresh one.
            self._waiting_on = None
            entry = self._timeout_entry
            if entry is not None:
                entry._defunct = True
                self._timeout_entry = None
        elif target is not None:
            self._waiting_on = None
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume)
                except ValueError:
                    pass
                else:
                    if (not callbacks and target._scheduled
                            and not target._triggered):
                        target._defunct = True
        wake = Event(self.sim)
        wake._triggered = True
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.callbacks.append(self._resume)
        sim = self.sim
        sim._push(sim._heap, (sim._now, next(sim._counter), wake))

    def _resume(self, event: Event) -> None:
        if self._triggered:  # finished while the wake-up was in flight
            return
        self._waiting_on = None
        gen = self._generator
        while True:
            try:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    target = gen.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                # An un-caught interrupt terminates the process quietly.
                self.succeed(None)
                return
            kind = type(target)
            if kind is float or kind is int:
                # Bare-delay yield: same heap position and counter draw as
                # `yield sim.timeout(delay)`, minus the Event allocation.
                if target < 0:
                    raise SimulationError(f"negative timeout: {target}")
                entry = self._timeout_entry
                if entry is None:
                    entry = self._timeout_entry = _Callback(
                        self._timeout_fire)
                self._waiting_on = _TIMEOUT_WAIT
                sim = self.sim
                sim._push(
                    sim._heap,
                    (sim._now + target, next(sim._counter), entry))
                return
            if kind is _At:
                # Absolute-time wait: identical machinery to a bare delay,
                # but the heap time is taken verbatim (no now+delta float
                # round-trip).
                sim = self.sim
                when = target.when
                if when < sim._now:
                    raise SimulationError(
                        f"cannot wait until {when}; now is {sim._now}")
                entry = self._timeout_entry
                if entry is None:
                    entry = self._timeout_entry = _Callback(
                        self._timeout_fire)
                self._waiting_on = _TIMEOUT_WAIT
                sim._push(
                    sim._heap, (when, next(sim._counter), entry))
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances")
            if target._processed:
                # Already-past event (the shared `done` singleton, or any
                # event that fired in an earlier dispatch): resume
                # synchronously instead of round-tripping a bare callback
                # through the event heap — no counter draw, no dispatch.
                event = target
                continue
            self._waiting_on = target
            # Not processed, so `callbacks` is a live list (add_callback
            # minus the processed-path branch).
            target.callbacks.append(self._resume)
            return

    def _timeout_fire(self) -> None:
        """Dispatch target of the reusable bare-delay heap entry."""
        if self._waiting_on is _TIMEOUT_WAIT:
            self._resume(self.sim.done)
        else:
            # Stale position of the reusable entry: the wait it was armed
            # for was cancelled or replaced.  Nothing happened.
            self.sim.discount()


class Simulator:
    """The event loop: owns simulated time and the pending-event queue."""

    __slots__ = ("_now", "_heap", "_counter", "_event_count",
                 "dispatch_probe", "discount_probe", "_done", "_push",
                 "scheduler")

    def __init__(self, scheduler: Optional[str] = None):
        from_env = scheduler is None
        if from_env:
            scheduler = _default_scheduler()
        if scheduler not in SCHEDULERS:
            # Same wording as JobConfig.scheduler validation, so callers
            # see one error shape whether the bad value arrived via config
            # or via the REPRO_SCHEDULER environment variable.
            source = " (from REPRO_SCHEDULER)" if from_env else ""
            raise ValueError(
                f"unknown scheduler{source}: {scheduler!r} "
                f"(expected one of: {', '.join(SCHEDULERS)})")
        #: Which pending-event queue implementation this simulator runs on
        #: ("heap" or "calendar").  Dispatch order is identical; only the
        #: data structure (and its scaling behaviour) differs.
        self.scheduler = scheduler
        self._now = 0.0
        if scheduler == "calendar":
            self._heap: Any = CalendarQueue()
            self._push: Callable[[Any, Tuple[float, int, Any]], None] = \
                cq_push
        else:
            self._heap = []
            self._push = heapq.heappush
        self._counter = itertools.count()
        self._event_count = 0
        #: Optional zero-arg telemetry hook invoked once per dispatched
        #: event.  None (the default) keeps dispatch on the fast path; the
        #: hook must not schedule simulation events.
        self.dispatch_probe: Optional[Callable[[], None]] = None
        #: Telemetry partner of :attr:`dispatch_probe`: invoked whenever a
        #: dispatch discounts itself (see :meth:`discount`) so probe-side
        #: counters can stay in sync with ``events_processed``.
        self.discount_probe: Optional[Callable[[], None]] = None
        # Shared pre-succeeded event for already-satisfied waits (see
        # the `done` property).
        done = Event(self)
        done._triggered = True
        done._processed = True
        done.callbacks = None
        self._done = done

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Kernel events *dispatched* so far (for diagnostics and benches).

        Counts only dispatches that did work: defunct (lazily-cancelled)
        entries are skipped without counting, and dispatch targets that
        detect a superseded schedule position (a reused entry whose due
        time moved on) call :meth:`discount` to back their pop out of the
        total.  Bench schema ``repro-bench/3`` records counts under this
        definition; older baselines include the stale no-op pops.
        """
        return self._event_count

    def discount(self) -> None:
        """Back the current dispatch out of ``events_processed``.

        For dispatch targets that discover, once popped, that they are a
        superseded or cancelled schedule position (e.g. a reusable channel
        entry whose due time was re-targeted, or a stale bare-delay timer):
        the pop happened but no simulation work did, so it must not count
        as a processed event or inflate bench denominators.
        """
        self._event_count -= 1
        if self.discount_probe is not None:
            self.discount_probe()

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event; fire it with ``.succeed(value)``."""
        return Event(self)

    @property
    def done(self) -> Event:
        """The shared, already-processed success event (value ``None``).

        Hand this to a waiter whose wait is already satisfied and carries no
        value: no allocation, no heap push at hand-out time.  A process that
        yields it resumes via the processed-event path of
        :meth:`Event.add_callback`, which draws its counter at yield time —
        so only return ``done`` where no other counter draw can occur
        between hand-out and yield.
        """
        return self._done

    def completed(self, value: Any = None) -> Event:
        """An event already fired at the current time, carrying ``value``.

        Equivalent to ``sim.event().succeed(value)`` — same counter draw,
        same dispatch — minus the guard checks.  This is the accepted-send
        fast path: callers that must hand a waiter an event firing "now"
        without reordering anything.
        """
        ev = Event(self)
        ev._triggered = True
        ev._value = value
        self._push(self._heap, (self._now, next(self._counter), ev))
        return ev

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        ev = Event(self)
        ev._scheduled = True
        ev._value = value
        self._push(self._heap, (self._now + delay, next(self._counter), ev))
        return ev

    def any_of(self, events: Iterable[Event]) -> Event:
        """Fires when the first of ``events`` fires; value = that event."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute simulated time ``when``.

        Cheaper than spawning a process or succeeding an event: the heap
        entry is a bare :class:`_Callback`, not an :class:`Event`.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}; now is {self._now}")
        self._push(self._heap,
                   (when, next(self._counter), _Callback(callback)))

    def call_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    def schedule_entry(self, when: float, entry: "_Callback") -> None:
        """Push a caller-owned heap entry (``_Callback`` or compatible).

        Hot-path variant of :meth:`call_at` for callers that reuse one
        entry object across many schedules (e.g. a channel drainer): no
        per-call wrapper allocation.  The same entry may sit in the heap at
        several positions at once; ``_dispatch()`` runs once per pop.  The
        caller must never mark a reused entry ``_defunct``.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}; now is {self._now}")
        self._push(self._heap, (when, next(self._counter), entry))

    # -- scheduling internals ----------------------------------------------

    def _schedule_event(self, event: Event) -> None:
        self._push(self._heap, (self._now, next(self._counter), event))

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty.

        Defunct (lazily-cancelled) entries are discarded without counting
        as a processed event.
        """
        heap = self._heap
        if type(heap) is list:
            while heap:
                when, _seq, entry = heapq.heappop(heap)
                if entry._defunct:
                    continue
                if when < self._now:
                    raise SimulationError("event heap went backwards in time")
                self._now = when
                self._event_count += 1
                if self.dispatch_probe is not None:
                    self.dispatch_probe()
                entry._dispatch()
                return True
            return False
        while True:
            item = heap.pop()
            if item is None:
                return False
            entry = item[2]
            if entry._defunct:
                continue
            when = item[0]
            if when < self._now:
                raise SimulationError("event queue went backwards in time")
            self._now = when
            self._event_count += 1
            if self.dispatch_probe is not None:
                self.dispatch_probe()
            entry._dispatch()
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulated time at which execution stopped.

        The loop is inlined (no per-event ``step()`` call) and pops runs of
        same-time events in an inner loop: a dispatch can only push entries
        with *later* counters, so draining the equal-time prefix before
        re-checking ``until`` preserves tie-break order exactly.
        """
        heap = self._heap
        if type(heap) is not list:
            return self._run_calendar(until)
        pop = heapq.heappop
        count = 0
        try:
            if self.dispatch_probe is None:
                # Probe-off fast loop: no per-event hook check.  If a
                # dispatch installs a probe mid-run we fall through to the
                # instrumented loop below on the next outer iteration.
                if until is None:
                    while heap and self.dispatch_probe is None:
                        when, _seq, entry = pop(heap)
                        if entry._defunct:
                            continue
                        self._now = when
                        count += 1
                        entry._dispatch()
                        # Batched same-time pops: drain the equal-time run.
                        while heap and heap[0][0] == when:
                            _w, _s, entry = pop(heap)
                            if entry._defunct:
                                continue
                            count += 1
                            entry._dispatch()
                else:
                    while (heap and heap[0][0] <= until
                           and self.dispatch_probe is None):
                        when, _seq, entry = pop(heap)
                        if entry._defunct:
                            continue
                        self._now = when
                        count += 1
                        entry._dispatch()
                        while heap and heap[0][0] == when:
                            _w, _s, entry = pop(heap)
                            if entry._defunct:
                                continue
                            count += 1
                            entry._dispatch()
                if self.dispatch_probe is None:
                    if until is not None and self._now < until:
                        self._now = until
                    return self._now
            if until is None:
                while heap:
                    when, _seq, entry = pop(heap)
                    if entry._defunct:
                        continue
                    self._now = when
                    count += 1
                    if self.dispatch_probe is not None:
                        self.dispatch_probe()
                    entry._dispatch()
                    # Batched same-time pops: drain the equal-time run.
                    while heap and heap[0][0] == when:
                        _w, _s, entry = pop(heap)
                        if entry._defunct:
                            continue
                        count += 1
                        if self.dispatch_probe is not None:
                            self.dispatch_probe()
                        entry._dispatch()
                return self._now
            while heap and heap[0][0] <= until:
                when, _seq, entry = pop(heap)
                if entry._defunct:
                    continue
                self._now = when
                count += 1
                if self.dispatch_probe is not None:
                    self.dispatch_probe()
                entry._dispatch()
                while heap and heap[0][0] == when:
                    _w, _s, entry = pop(heap)
                    if entry._defunct:
                        continue
                    count += 1
                    if self.dispatch_probe is not None:
                        self.dispatch_probe()
                    entry._dispatch()
            if self._now < until:
                self._now = until
            return self._now
        finally:
            self._event_count += count

    def _run_calendar(self, until: Optional[float]) -> float:
        """Calendar-queue run loop; same dispatch order as the heap loop.

        ``pop``/``peek_time`` replace ``heappop``/``heap[0][0]``; the
        equal-time inner drain and defunct skipping are structured exactly
        as in :meth:`run`, so pop order — and therefore every trace — is
        bit-identical between the two schedulers.
        """
        q = self._heap
        q_pop = q.pop
        q_pop_at = q.pop_at
        q_pop_le = q.pop_le
        count = 0
        try:
            if until is None:
                while True:
                    item = q_pop()
                    if item is None:
                        break
                    entry = item[2]
                    if entry._defunct:
                        continue
                    when = item[0]
                    self._now = when
                    count += 1
                    if self.dispatch_probe is not None:
                        self.dispatch_probe()
                    entry._dispatch()
                    # Batched same-time pops: drain the equal-time run.
                    while True:
                        item = q_pop_at(when)
                        if item is None:
                            break
                        entry = item[2]
                        if entry._defunct:
                            continue
                        count += 1
                        if self.dispatch_probe is not None:
                            self.dispatch_probe()
                        entry._dispatch()
                return self._now
            while True:
                item = q_pop_le(until)
                if item is None:
                    break
                entry = item[2]
                if entry._defunct:
                    continue
                when = item[0]
                self._now = when
                count += 1
                if self.dispatch_probe is not None:
                    self.dispatch_probe()
                entry._dispatch()
                while True:
                    item = q_pop_at(when)
                    if item is None:
                        break
                    entry = item[2]
                    if entry._defunct:
                        continue
                    count += 1
                    if self.dispatch_probe is not None:
                        self.dispatch_probe()
                    entry._dispatch()
            if self._now < until:
                self._now = until
            return self._now
        finally:
            self._event_count += count

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        heap = self._heap
        if type(heap) is list:
            while heap and heap[0][2]._defunct:
                heapq.heappop(heap)
            return heap[0][0] if heap else float("inf")
        while True:
            item = heap.peek_item()
            if item is None:
                return float("inf")
            if item[2]._defunct:
                heap.pop()
                continue
            return item[0]
