"""Discrete-event simulation kernel.

The kernel is a small, deterministic, generator-based process engine in the
style of SimPy.  Simulated components are written as Python generators that
``yield`` :class:`Event` objects; the kernel resumes a process when the event
it waits on fires.  All state transitions happen at discrete simulated times
drawn from a single event heap, so runs are fully reproducible: identical
inputs produce identical traces.

Example::

    sim = Simulator()

    def ping(sim, interval):
        while True:
            yield sim.timeout(interval)
            print("ping at", sim.now)

    sim.spawn(ping(sim, 1.0))
    sim.run(until=5.0)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-firing events, time travel, ...)."""


class Interrupt(Exception):
    """Thrown into a process when another component interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why the
    interruption happened (e.g. a scaling controller cancelling a wait).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Events start *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules all registered callbacks to run at the current simulated time.
    An event may be waited on by any number of processes and may carry a
    value, delivered as the result of the ``yield``.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # True for events already on the heap with a future fire time
        # (timeouts, call_at): they cannot be succeeded manually, but they
        # have NOT fired yet — composites must wait for them.
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self._processed

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, waking all waiters at ``sim.now``."""
        if self._triggered or self._scheduled:
            raise SimulationError("event already triggered or scheduled")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiters see the exception raised."""
        if self._triggered or self._scheduled:
            raise SimulationError("event already triggered or scheduled")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already past."""
        if self.callbacks is None:
            # Already processed: run at the current time, preserving ordering
            # relative to other same-time activity via the event heap.
            immediate = Event(self.sim)
            immediate.callbacks.append(lambda _ev: callback(self))
            immediate._value = self._value
            immediate._ok = self._ok
            immediate._triggered = True
            self.sim._schedule_event(immediate)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<Event {state} value={self._value!r}>"


class AnyOf(Event):
    """Composite event that fires when the first of its children fires.

    The value is the child event that fired first.  Used by components that
    must react to whichever of several things happens first (e.g. "a record
    arrived OR the migration completed").
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child event")
        for child in self._children:
            if child.triggered:
                self.succeed(child)
                return
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if not self.triggered:
            self.succeed(child)


class AllOf(Event):
    """Composite event that fires once every child event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._remaining = 0
        for child in self._children:
            if not child.triggered:
                self._remaining += 1
                child.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])

    def _on_child(self, _child: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([c.value for c in self._children])


class Process(Event):
    """A running generator.  Also an event: fires when the generator ends.

    Yield protocol: the generator must yield :class:`Event` instances.  When
    the yielded event fires, the process resumes with the event's value (or
    the exception, for failed events).
    """

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current time.
        start = Event(sim)
        start._triggered = True
        start.callbacks.append(self._resume)
        sim._schedule_event(start)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        No-op if the process has already finished.
        """
        if self.triggered:
            return
        wake = Event(self.sim)
        wake._triggered = True
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.callbacks.append(self._resume)
        self.sim._schedule_event(wake)

    def _resume(self, event: Event) -> None:
        if self.triggered:  # finished while the wake-up was in flight
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances")
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The event loop: owns simulated time and the pending-event heap."""

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._event_count = 0
        #: Optional zero-arg telemetry hook invoked once per dispatched
        #: event.  None (the default) keeps dispatch on the fast path; the
        #: hook must not schedule simulation events.
        self.dispatch_probe: Optional[Callable[[], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of kernel events processed so far (for diagnostics)."""
        return self._event_count

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event; fire it with ``.succeed(value)``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        ev = Event(self)
        ev._scheduled = True
        ev._value = value
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), ev))
        return ev

    def any_of(self, events: Iterable[Event]) -> Event:
        """Fires when the first of ``events`` fires; value = that event."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}; now is {self._now}")
        ev = Event(self)
        ev._scheduled = True
        ev.callbacks.append(lambda _e: callback())
        heapq.heappush(self._heap, (when, next(self._counter), ev))

    def call_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    # -- scheduling internals ----------------------------------------------

    def _schedule_event(self, event: Event) -> None:
        heapq.heappush(self._heap, (self._now, next(self._counter), event))

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap went backwards in time")
        self._now = when
        self._event_count += 1
        if self.dispatch_probe is not None:
            self.dispatch_probe()
        event._triggered = True
        event._process()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time passes ``until``.

        Returns the simulated time at which execution stopped.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        while self._heap and self._heap[0][0] <= until:
            self.step()
        if self._now < until:
            self._now = until
        return self._now

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
