"""Synthetic Twitch viewer-engagement workload (§V-A).

The paper replays a one-fifth sample (~4 M events compressed into 1000 s,
so ~4 K events/s) of the Rappaz-McAuley-Aberer Twitch dataset through a
seven-operator pipeline computing per-channel loyalty scores, reaching
~500 MB of state when scaling begins.

The real trace is not redistributable, so this module generates a synthetic
equivalent preserving what the paper uses it for — realistic key skew and
arrival patterns: channel popularity follows a Zipf law (live-streaming
audiences are heavily concentrated), session lengths are geometric, and the
event rate carries a mild diurnal-style modulation.

Pipeline (7 operators): source → parse → filter(bot traffic) →
enrich(re-key by channel) → session aggregator (keyed) → loyalty window
(keyed, the scaling bottleneck) → sink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..engine.graph import JobGraph, OperatorSpec
from ..engine.operators import FilterLogic, KeyedReduceLogic, MapLogic
from ..engine.records import LatencyMarker, Record, Watermark
from ..engine.routing import Partitioning
from ..engine.windows import SlidingWindowAggregateLogic
from ..simulation.randomness import ZipfSampler, make_rng
from .base import Workload, WorkloadConfig

__all__ = ["TwitchConfig", "TwitchWorkload"]


@dataclass
class TwitchConfig(WorkloadConfig):
    """Defaults follow the paper's derived trace: ~4 K events/s."""

    rate: float = 4_000.0
    num_keys: int = 3000        # live channels
    skew: float = 0.7           # audience concentration
    #: ±fraction of rate modulation over the trace (viewership waves).
    rate_wave: float = 0.1
    rate_wave_period: float = 200.0
    #: Optional arrival-rate profile: multiplier on ``rate`` as a function
    #: of sim time (diurnal curves, flash crowds).  None keeps the built-in
    #: sine-wave modulation bit-identical (golden traces depend on it).
    rate_profile: Optional[Callable[[float], float]] = None
    #: Optional popularity shifts: ``((time, rotation), ...)`` — from
    #: ``time`` onwards sampled channel ids rotate by ``rotation`` (mod
    #: ``num_keys``), re-pointing the Zipf head at different channels.
    #: None = stable popularity (the default trace).
    popularity_shifts: Optional[Tuple[Tuple[float, int], ...]] = None
    source_parallelism: int = 2
    operator_parallelism: int = 8
    sink_parallelism: int = 1
    #: Fraction of events that survive the bot filter.
    filter_pass: float = 0.9
    window_size: float = 20.0
    window_slide: float = 2.0
    #: Calibrated toward ~500 MB total loyalty state at scale time
    #: (10 panes × ~3.6 K rec/s surviving the filter × 10 s × bytes).
    bytes_per_record: float = 1390.0
    source_service: float = 2e-6
    parse_service: float = 4e-6
    filter_service: float = 2e-6
    enrich_service: float = 4e-6
    session_service: float = 6.0e-4
    loyalty_service: float = 1.5e-3
    sink_service: float = 1e-6
    session_state_bytes: float = 16.0


class TwitchWorkload(Workload):
    """Seven-operator loyalty-score pipeline over a synthetic Twitch trace."""

    name = "twitch"
    scaling_operator = "loyalty"

    def __init__(self, config: Optional[TwitchConfig] = None):
        super().__init__(config or TwitchConfig())

    def build_graph(self) -> JobGraph:
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("twitch-source",
                         parallelism=cfg.source_parallelism,
                         service_time=cfg.source_service)
        graph.add_operator(OperatorSpec(
            name="parse",
            logic_factory=lambda: MapLogic(lambda r: r),
            parallelism=cfg.source_parallelism,
            service_time=cfg.parse_service))
        graph.add_operator(OperatorSpec(
            name="bot-filter",
            logic_factory=lambda: FilterLogic(
                pass_fraction=cfg.filter_pass),
            parallelism=cfg.source_parallelism,
            service_time=cfg.filter_service))
        graph.add_operator(OperatorSpec(
            name="enrich",
            logic_factory=lambda: MapLogic(lambda r: r),
            parallelism=cfg.source_parallelism,
            service_time=cfg.enrich_service))
        graph.add_operator(OperatorSpec(
            name="session",
            logic_factory=lambda: KeyedReduceLogic(
                lambda old, r: (old or 0) + r.count,
                emit_updates=True,
                state_bytes_per_record=0.0),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.session_service,
            keyed=True,
            bytes_per_entry=cfg.session_state_bytes))
        graph.add_operator(OperatorSpec(
            name=self.scaling_operator,
            logic_factory=lambda: SlidingWindowAggregateLogic(
                size=cfg.window_size, slide=cfg.window_slide,
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.loyalty_service,
            keyed=True))
        graph.add_sink("twitch-sink", parallelism=cfg.sink_parallelism,
                       service_time=cfg.sink_service)
        graph.connect("twitch-source", "parse", Partitioning.FORWARD)
        graph.connect("parse", "bot-filter", Partitioning.FORWARD)
        graph.connect("bot-filter", "enrich", Partitioning.FORWARD)
        graph.connect("enrich", "session", Partitioning.HASH)
        graph.connect("session", self.scaling_operator, Partitioning.HASH)
        graph.connect(self.scaling_operator, "twitch-sink",
                      Partitioning.REBALANCE)
        return graph

    def generators(self, job):
        cfg = self.config
        sources = job.instances("twitch-source")
        per_source = cfg.rate / len(sources)
        for i, source in enumerate(sources):
            yield self._trace(job, source, per_source,
                              emit_markers=(i == 0),
                              seed=cfg.seed + i)

    def _trace(self, job, source, rate, emit_markers, seed):
        """Synthetic engagement trace: Zipf channels, geometric sessions,
        wave-modulated arrival rate."""
        cfg = self.config
        sim = job.sim
        rng = make_rng(seed)
        sampler = ZipfSampler(cfg.num_keys, cfg.skew, rng)
        next_marker = cfg.marker_interval
        next_watermark = cfg.watermark_interval
        deadline = (sim.now + cfg.duration
                    if cfg.duration is not None else None)
        session_channel = None
        session_left = 0
        shifts = (sorted(cfg.popularity_shifts)
                  if cfg.popularity_shifts else None)
        shift_index = 0
        rotation = 0
        while deadline is None or sim.now < deadline:
            # Sessions: a viewer interacts with one channel for a while.
            if session_left <= 0:
                session_channel = sampler.sample()
                session_left = 1 + int(rng.expovariate(1.0 / 2.0))
            session_left -= 1
            if cfg.rate_profile is not None:
                current_rate = max(rate * cfg.rate_profile(sim.now), 1.0)
            else:
                wave = 1.0 + cfg.rate_wave * math.sin(
                    2 * math.pi * sim.now / cfg.rate_wave_period)
                current_rate = max(rate * wave, 1.0)
            if shifts is not None:
                while (shift_index < len(shifts)
                       and sim.now >= shifts[shift_index][0]):
                    rotation = shifts[shift_index][1]
                    shift_index += 1
            channel = (session_channel if rotation == 0
                       else (session_channel + rotation) % cfg.num_keys)
            source.offer(Record(
                key=f"channel-{channel}",
                event_time=sim.now,
                value=rng.choice(("chat", "follow", "sub", "view")),
                count=cfg.batch_size,
                size_bytes=cfg.record_bytes * cfg.batch_size,
            ))
            if emit_markers and sim.now >= next_marker:
                source.offer(LatencyMarker(key=f"channel-{channel}"))
                next_marker = sim.now + cfg.marker_interval
            if sim.now >= next_watermark:
                source.offer(Watermark(timestamp=sim.now - cfg.watermark_lag))
                next_watermark = sim.now + cfg.watermark_interval
            yield sim.timeout(cfg.batch_size / current_rate)
