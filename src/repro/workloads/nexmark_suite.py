"""The wider NEXMark query suite (Q1-Q6), beyond the paper's Q7/Q8.

The paper evaluates on Q7 and Q8; a library a downstream user would adopt
should speak the whole benchmark.  These queries follow the standard
NEXMark formulations adapted to the engine's operator set; every keyed
query exposes a ``scaling_operator`` so any of them can drive a rescaling
experiment.

Queries:

* **Q1 currency conversion** — stateless map over bids (price × 0.908).
* **Q2 selection** — stateless filter of bids on a set of auctions.
* **Q3 local item suggestion** — incremental join of persons and auctions
  of selected sellers (keyed by seller).
* **Q4 average closing price** — windowed max per auction, running average
  per category.
* **Q5 hot items** — sliding-window count per auction, windowed arg-max.
* **Q6 average selling price by seller** — windowed max per auction,
  running mean of the last wins per seller.

The generator reuses the canonical person/auction/bid proportions
(1 : 3 : 46) from :mod:`repro.workloads.nexmark`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.graph import JobGraph, OperatorSpec
from ..engine.operators import (FilterLogic, KeyedReduceLogic, MapLogic,
                                OperatorLogic)
from ..engine.routing import Partitioning
from ..engine.windows import SlidingWindowAggregateLogic, WindowedJoinLogic
from .base import Workload, WorkloadConfig, drive_source
from .nexmark import AUCTION_PROPORTION, PERSON_PROPORTION

__all__ = ["NexmarkSuiteConfig", "NexmarkQ1", "NexmarkQ2", "NexmarkQ3",
           "NexmarkQ4", "NexmarkQ5", "NexmarkQ6", "QUERIES"]


@dataclass
class NexmarkSuiteConfig(WorkloadConfig):
    """Shared knobs for the suite queries."""

    rate: float = 10_000.0
    num_keys: int = 1000          # auctions (or sellers, per query)
    skew: float = 0.3
    source_parallelism: int = 2
    operator_parallelism: int = 4
    sink_parallelism: int = 1
    window_size: float = 10.0
    window_slide: float = 2.0
    bytes_per_record: float = 64.0
    source_service: float = 2e-6
    operator_service: float = 1e-4
    sink_service: float = 1e-6
    #: Fraction of bids surviving Q2's auction selection.
    q2_selectivity: float = 0.1
    #: NEXMark's dollar-to-euro factor for Q1.
    q1_exchange_rate: float = 0.908
    #: Number of categories for Q4.
    num_categories: int = 16


class _SuiteQuery(Workload):
    """Shared scaffolding: bid-stream source → query body → sink."""

    def __init__(self, config: Optional[NexmarkSuiteConfig] = None):
        super().__init__(config or NexmarkSuiteConfig())

    def _base_graph(self) -> JobGraph:
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("bids-source", parallelism=cfg.source_parallelism,
                         service_time=cfg.source_service)
        graph.add_sink("sink", parallelism=cfg.sink_parallelism,
                       collect=False, service_time=cfg.sink_service)
        return graph

    def generators(self, job):
        cfg = self.config
        sources = job.instances("bids-source")
        per_source = cfg.rate / len(sources)

        def bid(rng, auction_index):
            return ("bid", auction_index, rng.randint(1, 10_000))

        for i, source in enumerate(sources):
            yield drive_source(job, source, cfg, per_source,
                               make_value=bid, key_prefix="auction-",
                               emit_markers=(i == 0),
                               rng_seed=cfg.seed + i)


class NexmarkQ1(_SuiteQuery):
    """Q1: currency conversion — stateless map."""

    name = "nexmark-q1"
    scaling_operator = ""  # stateless: nothing to rescale statefully

    def build_graph(self):
        cfg = self.config
        graph = self._base_graph()
        rate = cfg.q1_exchange_rate
        graph.add_operator(OperatorSpec(
            "q1-convert",
            logic_factory=lambda: MapLogic(
                lambda r: r.copy_with(value=("bid-eur", r.value[1],
                                             r.value[2] * rate))),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service))
        graph.connect("bids-source", "q1-convert", Partitioning.REBALANCE)
        graph.connect("q1-convert", "sink", Partitioning.REBALANCE)
        return graph


class NexmarkQ2(_SuiteQuery):
    """Q2: selection — keep bids on a subset of auctions."""

    name = "nexmark-q2"
    scaling_operator = ""

    def build_graph(self):
        cfg = self.config
        graph = self._base_graph()
        graph.add_operator(OperatorSpec(
            "q2-filter",
            logic_factory=lambda: FilterLogic(
                pass_fraction=cfg.q2_selectivity),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service))
        graph.connect("bids-source", "q2-filter", Partitioning.REBALANCE)
        graph.connect("q2-filter", "sink", Partitioning.REBALANCE)
        return graph


class NexmarkQ3(_SuiteQuery):
    """Q3: local item suggestion — windowed join of persons ⋈ auctions of
    selected sellers, keyed by seller."""

    name = "nexmark-q3"
    scaling_operator = "q3-join"

    def build_graph(self):
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("persons-source",
                         parallelism=max(1, cfg.source_parallelism // 2),
                         service_time=cfg.source_service)
        graph.add_source("auctions-source",
                         parallelism=max(1, cfg.source_parallelism // 2),
                         service_time=cfg.source_service)
        graph.add_operator(OperatorSpec(
            self.scaling_operator,
            logic_factory=lambda: WindowedJoinLogic(
                size=cfg.window_size, slide=cfg.window_slide,
                side_fn=lambda r: r.value[0],
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service,
            keyed=True))
        graph.add_sink("sink", parallelism=cfg.sink_parallelism,
                       service_time=cfg.sink_service)
        graph.connect("persons-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect("auctions-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "sink",
                      Partitioning.REBALANCE)
        return graph

    def generators(self, job):
        cfg = self.config
        share = PERSON_PROPORTION / (PERSON_PROPORTION
                                     + AUCTION_PROPORTION)
        persons = job.instances("persons-source")
        auctions = job.instances("auctions-source")
        for i, source in enumerate(persons):
            yield drive_source(job, source, cfg,
                               cfg.rate * share / len(persons),
                               make_value=lambda rng, k: ("left", k),
                               key_prefix="seller-",
                               emit_markers=(i == 0),
                               rng_seed=cfg.seed + i)
        for i, source in enumerate(auctions):
            yield drive_source(job, source, cfg,
                               cfg.rate * (1 - share) / len(auctions),
                               make_value=lambda rng, k: ("right", k),
                               key_prefix="seller-",
                               emit_markers=False,
                               rng_seed=cfg.seed + 50 + i)


class _RunningCategoryAverage(OperatorLogic):
    """Q4 stage 2: running average of closing prices per category."""

    def on_record(self, record, instance):
        kg = record.key_group
        count, total = instance.state.get(kg, record.key, (0, 0.0))
        price = record.value if isinstance(record.value, (int, float)) \
            else 0.0
        count += 1
        total += price
        instance.state.put(kg, record.key, (count, total))
        return [record.copy_with(value=total / count)]


class NexmarkQ4(_SuiteQuery):
    """Q4: average closing price per category (two keyed stages)."""

    name = "nexmark-q4"
    scaling_operator = "q4-closing-price"

    def build_graph(self):
        cfg = self.config
        graph = self._base_graph()
        graph.add_operator(OperatorSpec(
            self.scaling_operator,
            logic_factory=lambda: SlidingWindowAggregateLogic(
                size=cfg.window_size, slide=cfg.window_size,  # tumbling
                agg_fn=lambda cur, r: max(cur or 0, r.value[2]),
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service,
            keyed=True))
        categories = cfg.num_categories
        graph.add_operator(OperatorSpec(
            "q4-category-avg",
            logic_factory=lambda: _RunningCategoryAverage(),
            parallelism=max(2, cfg.operator_parallelism // 2),
            service_time=cfg.operator_service,
            keyed=True))
        # window output keys are ("window", kg, start); re-key by category.
        graph.add_operator(OperatorSpec(
            "q4-categorize",
            logic_factory=lambda: MapLogic(
                lambda r: r.copy_with(
                    key=f"category-{hash(r.key) % categories}",
                    key_group=None)),
            parallelism=2,
            service_time=cfg.source_service))
        graph.connect("bids-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "q4-categorize",
                      Partitioning.REBALANCE)
        graph.connect("q4-categorize", "q4-category-avg",
                      Partitioning.HASH)
        graph.connect("q4-category-avg", "sink", Partitioning.REBALANCE)
        return graph


class NexmarkQ5(_SuiteQuery):
    """Q5: hot items — sliding-window bid count per auction."""

    name = "nexmark-q5"
    scaling_operator = "q5-count"

    def build_graph(self):
        cfg = self.config
        graph = self._base_graph()
        graph.add_operator(OperatorSpec(
            self.scaling_operator,
            logic_factory=lambda: SlidingWindowAggregateLogic(
                size=cfg.window_size, slide=cfg.window_slide,
                agg_fn=lambda cur, r: (cur or 0) + r.count,
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service,
            keyed=True))
        graph.add_operator(OperatorSpec(
            "q5-argmax",
            logic_factory=lambda: KeyedReduceLogic(
                lambda best, r: r.value if best is None
                or r.value > best else best),
            parallelism=1,
            service_time=cfg.operator_service,
            keyed=True))
        graph.connect("bids-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "q5-argmax",
                      Partitioning.HASH)
        graph.connect("q5-argmax", "sink", Partitioning.FORWARD)
        return graph


class NexmarkQ6(_SuiteQuery):
    """Q6: average selling price per seller (windowed max, running mean)."""

    name = "nexmark-q6"
    scaling_operator = "q6-wins"

    def build_graph(self):
        cfg = self.config
        graph = self._base_graph()
        graph.add_operator(OperatorSpec(
            self.scaling_operator,
            logic_factory=lambda: SlidingWindowAggregateLogic(
                size=cfg.window_size, slide=cfg.window_size,
                agg_fn=lambda cur, r: max(cur or 0, r.value[2]),
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.operator_service,
            keyed=True))
        graph.add_operator(OperatorSpec(
            "q6-seller-avg",
            logic_factory=lambda: _RunningCategoryAverage(),
            parallelism=max(2, cfg.operator_parallelism // 2),
            service_time=cfg.operator_service,
            keyed=True))
        graph.connect("bids-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "q6-seller-avg",
                      Partitioning.HASH)
        graph.connect("q6-seller-avg", "sink", Partitioning.REBALANCE)
        return graph


#: Query name → workload class, for programmatic access.
QUERIES = {
    "q1": NexmarkQ1,
    "q2": NexmarkQ2,
    "q3": NexmarkQ3,
    "q4": NexmarkQ4,
    "q5": NexmarkQ5,
    "q6": NexmarkQ6,
}
