"""Workload abstraction and rate-controlled generators.

A :class:`Workload` owns a job graph, the generator processes that feed its
sources, and the identity of the scaling (bottleneck) operator.  Generators
model the paper's ingestion paths: NEXMark/Twitch arrive through an
admission queue (the Kafka stand-in built into :class:`SourceInstance`),
while the custom sensitivity workload generates internally — either way,
element timestamps are stamped at admission so end-to-end latency includes
queue wait (§V-A).

**Batching**: one emitted :class:`Record` stands for ``batch_size`` physical
records of one key (``count = batch_size``); rates, state sizes and
throughput all account in physical records.  Latency markers and watermarks
are individual elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..engine.cluster import ClusterModel
from ..engine.graph import JobGraph
from ..engine.records import LatencyMarker, Record, Watermark
from ..engine.runtime import JobConfig, SourceInstance, StreamJob
from ..simulation.randomness import ZipfSampler, make_rng

__all__ = ["WorkloadConfig", "Workload", "drive_source"]


@dataclass
class WorkloadConfig:
    """Knobs shared by every workload."""

    #: Input rate in physical records/second (per workload, split across
    #: source instances).
    rate: float = 4000.0
    #: Physical records represented by one simulated record entity.
    batch_size: int = 100
    #: Number of distinct keys the generator draws from.
    num_keys: int = 1000
    #: Zipf skew over keys (0.0 = uniform).
    skew: float = 0.0
    #: Generation horizon in simulated seconds (None = run forever).
    duration: Optional[float] = None
    #: Seconds between latency markers (per workload).
    marker_interval: float = 0.25
    #: Seconds between watermarks.
    watermark_interval: float = 0.5
    #: Watermark lag behind generated event time.
    watermark_lag: float = 0.1
    #: Key-group count of the job.
    num_key_groups: int = 128
    #: RNG seed.
    seed: int = 7
    #: Bytes per physical record on the wire.
    record_bytes: float = 64.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        if self.skew < 0:
            raise ValueError("skew must be >= 0")


class Workload:
    """Base class: subclasses define the graph and generator processes."""

    name = "abstract"
    scaling_operator = ""

    def __init__(self, config: Optional[WorkloadConfig] = None):
        self.config = config or WorkloadConfig()

    # -- interface ------------------------------------------------------------------

    def build_graph(self) -> JobGraph:
        raise NotImplementedError

    def generators(self, job: StreamJob) -> Iterable:
        """Yield generator coroutines to spawn on the job's simulator."""
        raise NotImplementedError

    # -- assembly -------------------------------------------------------------------

    def build(self, cluster: Optional[ClusterModel] = None,
              job_config: Optional[JobConfig] = None) -> StreamJob:
        """Materialise the job with its generators attached."""
        graph = self.build_graph()
        job = StreamJob(graph, cluster=cluster, config=job_config)
        job.build()
        for index, generator in enumerate(self.generators(job)):
            job.sim.spawn(generator, name=f"{self.name}-gen-{index}")
        return job


def drive_source(job: StreamJob, source: SourceInstance,
                 config: WorkloadConfig,
                 rate: float,
                 make_value=None,
                 key_prefix: str = "k",
                 emit_markers: bool = True,
                 rng_seed: Optional[int] = None):
    """Generic rate-controlled generator process feeding one source.

    Draws keys from a Zipf(``config.skew``) distribution over
    ``config.num_keys`` keys, emits batch records at ``rate`` physical
    records/second, and interleaves watermarks and latency markers.
    """
    sim = job.sim
    rng = make_rng(rng_seed if rng_seed is not None else config.seed)
    sampler = ZipfSampler(config.num_keys, config.skew, rng)
    gap = config.batch_size / rate
    # Zipf keeps the working set of keys small; cache the key strings so the
    # per-record f-string (and its hash, via str interning of the cached
    # object) is paid once per distinct key.
    key_cache: dict = {}
    next_marker = config.marker_interval
    next_watermark = config.watermark_interval
    deadline = (sim.now + config.duration
                if config.duration is not None else None)
    # Per-iteration hot-loop locals (``sim.now`` is a property call).
    offer = source.offer
    sample = sampler.sample
    get_key = key_cache.get
    batch_size = config.batch_size
    batch_bytes = config.record_bytes * config.batch_size
    marker_interval = config.marker_interval
    watermark_interval = config.watermark_interval
    watermark_lag = config.watermark_lag
    while True:
        now = sim.now
        if deadline is not None and now >= deadline:
            break
        key_index = sample()
        key = get_key(key_index)
        if key is None:
            key = f"{key_prefix}{key_index}"
            key_cache[key_index] = key
        value = make_value(rng, key_index) if make_value is not None else None
        offer(Record(
            key=key,
            event_time=now,
            value=value,
            count=batch_size,
            size_bytes=batch_bytes,
        ))
        if emit_markers and now >= next_marker:
            offer(LatencyMarker(key=key))
            next_marker = now + marker_interval
        if now >= next_watermark:
            offer(Watermark(timestamp=now - watermark_lag))
            next_watermark = now + watermark_interval
        yield gap  # bare-delay yield == sim.timeout(gap)
