"""Evaluation workloads: NEXMark Q7/Q8, synthetic Twitch, custom sensitivity."""

from .base import Workload, WorkloadConfig, drive_source
from .custom import CustomConfig, CustomWorkload
from .nexmark import NexmarkConfig, NexmarkQ7, NexmarkQ8, NexmarkQ8Config
from .nexmark_suite import (QUERIES, NexmarkQ1, NexmarkQ2, NexmarkQ3,
                            NexmarkQ4, NexmarkQ5, NexmarkQ6,
                            NexmarkSuiteConfig)
from .twitch import TwitchConfig, TwitchWorkload

__all__ = [
    "Workload",
    "WorkloadConfig",
    "drive_source",
    "CustomConfig",
    "CustomWorkload",
    "NexmarkConfig",
    "QUERIES",
    "NexmarkQ1",
    "NexmarkQ2",
    "NexmarkQ3",
    "NexmarkQ4",
    "NexmarkQ5",
    "NexmarkQ6",
    "NexmarkSuiteConfig",
    "NexmarkQ7",
    "NexmarkQ8",
    "NexmarkQ8Config",
    "TwitchConfig",
    "TwitchWorkload",
]
