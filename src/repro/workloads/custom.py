"""The 3-operator sensitivity workload (§V-A, §V-D).

A generator, a keyed aggregator and a sink — "given that the major overhead
of on-the-fly scaling occurs only in the scaling operator and its
predecessors."  Internal data generation (no admission-queue modelling
beyond the source's own) captures scaling-induced latency variations, and
the three sensitivity axes are direct knobs:

* ``rate`` — input rate (paper sweeps 5 K–20 K tps),
* ``target_state_bytes`` — total keyed state at scale time (5–30 GB),
* ``skew`` — Zipf skewness over keys (0.0 / 0.5 / 1.0 / 1.5).

The Fig. 15 cluster setup uses 256 key-groups and 25 instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.graph import JobGraph, OperatorSpec
from ..engine.operators import KeyedReduceLogic
from ..engine.routing import Partitioning
from .base import Workload, WorkloadConfig, drive_source

__all__ = ["CustomConfig", "CustomWorkload"]


@dataclass
class CustomConfig(WorkloadConfig):
    """Defaults give the single-machine variant; Fig. 15 overrides."""

    rate: float = 5_000.0
    num_keys: int = 4000
    skew: float = 0.0
    num_key_groups: int = 256
    source_parallelism: int = 2
    operator_parallelism: int = 25
    sink_parallelism: int = 1
    #: Total keyed state at build time, spread uniformly over key-groups.
    target_state_bytes: float = 5e9
    #: Additional state bytes accrued per processed record.
    state_bytes_per_record: float = 0.0
    #: ~72 % utilisation of 25 instances at the top sweep rate (20 K tps).
    source_service: float = 2e-6
    aggregate_service: float = 9e-4
    sink_service: float = 1e-6


class CustomWorkload(Workload):
    """generator → keyed aggregator → sink."""

    name = "custom"
    scaling_operator = "aggregator"

    def __init__(self, config: Optional[CustomConfig] = None):
        super().__init__(config or CustomConfig())

    def build_graph(self) -> JobGraph:
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("generator", parallelism=cfg.source_parallelism,
                         service_time=cfg.source_service)
        graph.add_operator(OperatorSpec(
            name=self.scaling_operator,
            logic_factory=lambda: KeyedReduceLogic(
                lambda old, r: (old or 0) + r.count,
                emit_updates=True,
                state_bytes_per_record=cfg.state_bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.aggregate_service,
            keyed=True,
            initial_state_bytes_per_group=(cfg.target_state_bytes
                                           / cfg.num_key_groups)))
        graph.add_sink("sink", parallelism=cfg.sink_parallelism,
                       service_time=cfg.sink_service)
        graph.connect("generator", self.scaling_operator, Partitioning.HASH)
        graph.connect(self.scaling_operator, "sink", Partitioning.REBALANCE)
        return graph

    def generators(self, job):
        cfg = self.config
        sources = job.instances("generator")
        per_source = cfg.rate / len(sources)
        for i, source in enumerate(sources):
            yield drive_source(job, source, cfg, per_source,
                               key_prefix="key-",
                               emit_markers=(i == 0),
                               rng_seed=cfg.seed + i)
