"""NEXMark queries 7 and 8 (§V-A), on the simulated engine.

The paper uses Q7 and Q8 with *sliding* windows (instead of NEXMark's
tumbling ones) for stable scaling behaviour:

* **Q7** — highest bid per window: bids keyed by auction, a sliding-window
  max aggregate.  Paper parameters: 20 K tuples/s input, 10 s window,
  500 ms slide, state approaching ~800 MB at 128 key-groups.
* **Q8** — new users who open auctions: persons ⋈ auctions per window,
  keyed by person (seller).  Paper parameters: 1 K tuples/s, 40 s window,
  5 s slide, state ~3 GB.

The generator produces the NEXMark entity mix (persons : auctions : bids of
1 : 3 : 46) with Zipf-skewed auction popularity.  ``state_scale`` lets the
benchmarks trade absolute state size for runtime while preserving the
Q7-vs-Q8 ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.graph import JobGraph, OperatorSpec
from ..engine.routing import Partitioning
from ..engine.windows import SlidingWindowAggregateLogic, WindowedJoinLogic
from .base import Workload, WorkloadConfig, drive_source

__all__ = ["NexmarkConfig", "NexmarkQ7", "NexmarkQ8"]

#: NEXMark's canonical proportions among generated events.
PERSON_PROPORTION = 1
AUCTION_PROPORTION = 3
BID_PROPORTION = 46


@dataclass
class NexmarkConfig(WorkloadConfig):
    """NEXMark-specific knobs; defaults follow §V-B (Q7 values)."""

    rate: float = 20_000.0
    num_keys: int = 2000       # active auctions
    skew: float = 0.4          # auction popularity is mildly skewed
    window_size: float = 10.0
    window_slide: float = 0.5
    source_parallelism: int = 2
    operator_parallelism: int = 8
    sink_parallelism: int = 1
    #: Per-record window-state bytes.  Live state at equilibrium is
    #: (size/slide) panes × rate × (size/2) × bytes_per_record; the default
    #: calibrates Q7 to ~800 MB total state (§V-B) at the default rate.
    bytes_per_record: float = 400.0
    #: Source/window/sink CPU seconds per record.  The window default puts
    #: the 8 scaling instances at ~87 % utilisation (a true bottleneck, as in the paper's scaling trigger) (1-core containers).
    source_service: float = 2e-6
    window_service: float = 3.5e-4
    sink_service: float = 1e-6


class NexmarkQ7(Workload):
    """Q7: sliding-window highest bid, keyed by auction."""

    name = "nexmark-q7"
    scaling_operator = "q7-window"

    def __init__(self, config: Optional[NexmarkConfig] = None):
        super().__init__(config or NexmarkConfig())

    def build_graph(self) -> JobGraph:
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("bids-source", parallelism=cfg.source_parallelism,
                         service_time=cfg.source_service)
        graph.add_operator(OperatorSpec(
            name=self.scaling_operator,
            logic_factory=lambda: SlidingWindowAggregateLogic(
                size=cfg.window_size, slide=cfg.window_slide,
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.window_service,
            keyed=True))
        graph.add_sink("q7-sink", parallelism=cfg.sink_parallelism,
                       service_time=cfg.sink_service)
        graph.connect("bids-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "q7-sink",
                      Partitioning.REBALANCE)
        return graph

    def generators(self, job):
        cfg = self.config
        sources = job.instances("bids-source")
        per_source = cfg.rate / len(sources)

        def bid_price(rng, _auction_index):
            return rng.randint(1, 10_000)

        for i, source in enumerate(sources):
            yield drive_source(job, source, cfg, per_source,
                               make_value=bid_price,
                               key_prefix="auction-",
                               emit_markers=(i == 0),
                               rng_seed=cfg.seed + i)


@dataclass
class NexmarkQ8Config(NexmarkConfig):
    """Q8 defaults per §V-B: lower rate, larger windows, ~3 GB state."""

    rate: float = 1_000.0
    num_keys: int = 1500       # active sellers
    window_size: float = 40.0
    window_slide: float = 5.0
    batch_size: int = 20
    #: Q8 state is ~3 GB at 1 K tps / 40 s windows — calibrated via the same
    #: pane-equilibrium formula as Q7.
    bytes_per_record: float = 18_750.0
    window_service: float = 6.0e-3


class NexmarkQ8(Workload):
    """Q8: persons ⋈ auctions per window, keyed by seller."""

    name = "nexmark-q8"
    scaling_operator = "q8-join"

    def __init__(self, config: Optional[NexmarkQ8Config] = None):
        super().__init__(config or NexmarkQ8Config())

    def build_graph(self) -> JobGraph:
        cfg = self.config
        graph = JobGraph(self.name, num_key_groups=cfg.num_key_groups)
        graph.add_source("persons-source",
                         parallelism=max(1, cfg.source_parallelism // 2),
                         service_time=cfg.source_service)
        graph.add_source("auctions-source",
                         parallelism=max(1, cfg.source_parallelism // 2),
                         service_time=cfg.source_service)
        graph.add_operator(OperatorSpec(
            name=self.scaling_operator,
            logic_factory=lambda: WindowedJoinLogic(
                size=cfg.window_size, slide=cfg.window_slide,
                side_fn=lambda r: r.value[0],
                bytes_per_record=cfg.bytes_per_record),
            parallelism=cfg.operator_parallelism,
            service_time=cfg.window_service,
            keyed=True))
        graph.add_sink("q8-sink", parallelism=cfg.sink_parallelism,
                       service_time=cfg.sink_service)
        graph.connect("persons-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect("auctions-source", self.scaling_operator,
                      Partitioning.HASH)
        graph.connect(self.scaling_operator, "q8-sink",
                      Partitioning.REBALANCE)
        return graph

    def generators(self, job):
        cfg = self.config
        person_share = PERSON_PROPORTION / (PERSON_PROPORTION
                                            + AUCTION_PROPORTION)
        persons = job.instances("persons-source")
        auctions = job.instances("auctions-source")
        person_rate = cfg.rate * person_share / len(persons)
        auction_rate = cfg.rate * (1 - person_share) / len(auctions)
        for i, source in enumerate(persons):
            yield drive_source(job, source, cfg, person_rate,
                               make_value=lambda rng, k: ("left", k),
                               key_prefix="seller-",
                               emit_markers=(i == 0),
                               rng_seed=cfg.seed + i)
        for i, source in enumerate(auctions):
            yield drive_source(job, source, cfg, auction_rate,
                               make_value=lambda rng, k: ("right", k),
                               key_prefix="seller-",
                               emit_markers=False,
                               rng_seed=cfg.seed + 100 + i)
