"""Command-line interface: regenerate any figure or inspect workloads.

Examples::

    python -m repro list
    python -m repro figure fig10 --scale quick
    python -m repro figure fig15 --scale paper
    python -m repro run q7 --system drrs --new-parallelism 12
    python -m repro workload twitch --until 30
    python -m repro trace q8 --system drrs --output trace.json
    python -m repro bench --scale smoke --json
    python -m repro autoscale --scale smoke --json --check
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from .experiments import (PAPER, QUICK, format_fig02, format_fig10,
                          format_fig12, format_fig13, format_fig14,
                          format_fig15, format_table,
                          run_fig02_unbound_probe, run_fig10_latency,
                          run_fig11_throughput,
                          run_fig12_propagation_dependency,
                          run_fig13_suspension, run_fig14_ablation,
                          run_fig15_sensitivity)
from .experiments.figures import _run_one
from .experiments.report import format_table as _format_table
from .experiments.scenarios import make_workload

__all__ = ["main", "FIGURES"]

#: Shared exit-status contract for check-style subcommands, shown in
#: their ``--help`` epilog.  ``{fail}`` names what exit 1 means there.
EXIT_CONTRACT = """\
exit status:
  0  run completed and every check passed
  1  {fail}
  2  usage error (bad arguments or unreadable input files)
"""


def _fig11_text(out) -> str:
    return format_table(
        out["recovery"],
        title="Fig. 11 — source throughput around the scaling operation "
              "(records/s)")


#: figure name → (runner, formatter)
FIGURES: Dict[str, tuple] = {
    "fig02": (run_fig02_unbound_probe, format_fig02),
    "fig10": (run_fig10_latency, format_fig10),
    "fig11": (run_fig11_throughput, _fig11_text),
    "fig12": (run_fig12_propagation_dependency, format_fig12),
    "fig13": (run_fig13_suspension, format_fig13),
    "fig14": (run_fig14_ablation, format_fig14),
    "fig15": (run_fig15_sensitivity, format_fig15),
}

SYSTEMS = ("drrs", "megaphone", "meces", "otfs", "otfs-all-at-once",
           "unbound", "stop-restart", "dr", "schedule", "subscale")
WORKLOADS = ("q7", "q8", "twitch", "custom")


def _usage_error(message: str) -> SystemExit:
    """Exit 2 (usage) with a message — the argparse convention, kept
    for errors surfacing after parse time (see EXIT_CONTRACT)."""
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (exit 2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _scenario(name: str):
    if name == "quick":
        return QUICK
    if name == "paper":
        return PAPER
    raise _usage_error(f"unknown scale {name!r}: use 'quick' or 'paper'")


def _cmd_list(_args) -> int:
    print("figures:   " + " ".join(sorted(FIGURES)))
    print("workloads: " + " ".join(WORKLOADS))
    print("systems:   " + " ".join(SYSTEMS))
    return 0


def _figure_json(obj):
    """Figure output → JSON-safe document (results become summaries)."""
    from .experiments.harness import ExperimentResult
    from .telemetry.exporters import _json_safe

    def convert(value):
        if isinstance(value, ExperimentResult):
            summary = dict(value.summary())
            summary["label"] = value.label
            return summary
        if isinstance(value, dict):
            return {str(k): convert(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return value

    return _json_safe(convert(obj))


def _cmd_figure(args) -> int:
    runner, formatter = FIGURES[args.name]
    scenario = _scenario(args.scale)
    out = runner(scenario)
    if args.json:
        text = json.dumps({"figure": args.name, "scale": args.scale,
                           "data": _figure_json(out)},
                          indent=1, sort_keys=True)
    else:
        text = formatter(out)
    print(text)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        print(f"[saved to {args.output}]")
    return 0


def _cmd_run(args) -> int:
    scenario = _scenario(args.scale)
    system = None if args.system == "no-scale" else args.system
    result = _run_one(args.workload, system, scenario,
                      new_parallelism=args.new_parallelism)
    summary = result.summary()
    rows = [{"metric": k, "value": v} for k, v in summary.items()]
    print(_format_table(
        rows, title=f"{args.workload} under {summary['controller']}"))
    return 0


def _cmd_workload(args) -> int:
    workload = make_workload(args.name, _scenario(args.scale))
    job = workload.build()
    job.run(until=args.until)
    from .engine.introspection import operator_rows
    stats = job.metrics.latency_stats(args.until / 2, args.until)
    rows = [
        {"metric": "records generated",
         "value": job.metrics.total_source_output()},
        {"metric": "records delivered",
         "value": job.metrics.total_sink_input()},
        {"metric": "mean latency (s)", "value": stats["mean"]},
        {"metric": "p99 latency (s)", "value": stats["p99"]},
        {"metric": f"state of {workload.scaling_operator} (MB)",
         "value": job.total_state_bytes(workload.scaling_operator) / 1e6},
        {"metric": "kernel events", "value": job.sim.events_processed},
    ]
    if args.json:
        doc = {"workload": args.name, "until": args.until,
               "summary": {row["metric"]: row["value"] for row in rows}}
        if args.inspect:
            doc["operators"] = operator_rows(job)
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    if args.inspect:
        print(_format_table(operator_rows(job),
                            title=f"{args.name} operators at "
                                  f"t={args.until:.0f}s"))
        print()
    print(_format_table(rows, title=f"{args.name} steady state after "
                                    f"{args.until:.0f} simulated seconds"))
    return 0


def _cmd_trace(args) -> int:
    scenario = _scenario(args.scale)
    system = None if args.system == "no-scale" else args.system
    result = _run_one(args.workload, system, scenario,
                      new_parallelism=args.new_parallelism, telemetry=True)
    telemetry = result.telemetry
    from .telemetry import (migration_breakdown, phase_summary_table,
                            write_chrome_trace, write_jsonl)
    print(phase_summary_table(
        telemetry, title=f"{args.workload}/{system or 'no-scale'} "
                         "phase summary"))
    try:
        breakdown = migration_breakdown(telemetry)
    except ValueError:
        breakdown = None
    if breakdown is not None:
        waves = breakdown.pop("waves")
        rows = [{"metric": k, "value": v} for k, v in breakdown.items()]
        print()
        print(_format_table(rows, title="Migration phase breakdown "
                                        "(span-derived)"))
        print()
        print(_format_table(
            waves,
            columns=["subscale_id", "src", "dst", "start", "end",
                     "duration_s", "bytes_moved"],
            title="Subscale waves"))
    write_chrome_trace(telemetry, args.output)
    print(f"[chrome trace saved to {args.output}; load it at "
          "https://ui.perfetto.dev or chrome://tracing]")
    if args.jsonl:
        write_jsonl(telemetry, args.jsonl)
        print(f"[raw spans saved to {args.jsonl}]")
    return 0


def _cmd_bench(args) -> int:
    import os

    from .perf import compare_bench_docs, config_mismatch_warnings, \
        format_config, format_delta_table, write_bench_files

    if args.shards is None:
        # JobConfig's validation owns the REPRO_SHARDS env contract.
        from .engine.runtime import JobConfig
        args.shards = JobConfig().shards

    # Baselines are validated *before* any bench runs: a bad --compare
    # argument must fail fast (exit 2), not after minutes of measurement.
    suites = ("kernel", "e2e") if args.only is None else (args.only,)
    baselines = {}
    for path in args.compare or ():
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as error:
            raise _usage_error(
                f"cannot read --compare baseline {path}: {error}")
        baselines[doc.get("bench")] = doc
    unmatched = set(baselines) - set(suites)
    if unmatched:
        raise _usage_error(
            f"--compare baseline(s) for {sorted(unmatched)} have no "
            "matching current bench (check --only)")

    written = write_bench_files(output_dir=args.output, scale=args.scale,
                                which=args.only, best_of=args.best_of,
                                stat=args.stat, shards=args.shards,
                                transport=args.transport,
                                inbox=args.inbox)
    docs = {}
    for name, path in written.items():
        with open(path) as f:
            docs[name] = json.load(f)

    def _compare_all():
        rows, regs = [], {}
        for name, doc in docs.items():
            if name in baselines:
                suite_rows, bad = compare_bench_docs(
                    doc, baselines[name], threshold=args.threshold)
                rows += suite_rows
                if bad:
                    regs[name] = bad
        return rows, regs

    # A baseline measured under a different scheduler / record plane /
    # shard count is apples-to-oranges: print both configs and warn
    # instead of comparing silently.
    config_warnings = []
    for name, doc in docs.items():
        if name in baselines:
            for warning in config_mismatch_warnings(doc, baselines[name]):
                config_warnings.append(f"{name}: {warning}")
    if config_warnings:
        for name in sorted(set(docs) & set(baselines)):
            print(f"[{name} current  config: {format_config(docs[name])}]",
                  file=sys.stderr)
            print(f"[{name} baseline config: "
                  f"{format_config(baselines[name])}]", file=sys.stderr)
        for line in config_warnings:
            print(f"WARNING: {line}", file=sys.stderr)

    # A wall-clock dip must survive re-measurement to count: single-box
    # throughput noise routinely exceeds the threshold, so each regressed
    # suite is re-run up to --retry times and only a persistent drop fails.
    all_rows, per_suite = _compare_all()
    for attempt in range(args.retry):
        if not per_suite:
            break
        print(f"[possible regression in {sorted(per_suite)}; re-measuring "
              f"(retry {attempt + 1}/{args.retry})]", file=sys.stderr)
        for suite in per_suite:
            rewritten = write_bench_files(
                output_dir=args.output, scale=args.scale, which=suite,
                best_of=args.best_of, stat=args.stat, shards=args.shards,
                transport=args.transport, inbox=args.inbox)
            with open(rewritten[suite]) as f:
                docs[suite] = json.load(f)
        all_rows, per_suite = _compare_all()
    regressions = [line for bad in per_suite.values() for line in bad]

    if args.json:
        out = dict(docs)
        if baselines:
            out["compare"] = {"rows": all_rows, "regressions": regressions,
                              "config_warnings": config_warnings}
        print(json.dumps(out, indent=1, sort_keys=True))
    else:
        for name, path in written.items():
            doc = docs[name]
            print(f"[{name} bench written to {path}]")
            speedup = doc.get("speedup_vs_pre_pr")
            if name == "e2e":
                results = doc["results"]
                if "records_per_sec" in results:
                    scenarios = {"q7": results}
                else:
                    scenarios = results
                for scen, result in sorted(scenarios.items()):
                    rps = result.get("records_per_sec", 0.0)
                    line = f"  {scen}: {rps:,.0f} records/s"
                    if speedup is not None and "records_per_sec" in results:
                        line += f"  ({speedup:.2f}x vs pre-PR)"
                    print(line)
            elif isinstance(speedup, dict):
                for bench_name, ratio in sorted(speedup.items()):
                    print(f"  {bench_name}: {ratio:.2f}x vs pre-PR")
        if all_rows:
            print()
            print(format_delta_table(all_rows))

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and all_rows:
        with open(summary_path, "a") as f:
            f.write("### Bench deltas vs baseline "
                    f"(threshold -{100 * args.threshold:.0f}%)\n\n")
            f.write(format_delta_table(all_rows, markdown=True))
            f.write("\n\n")
            if regressions:
                f.write("**REGRESSIONS:**\n\n")
                f.writelines(f"- {line}\n" for line in regressions)
                f.write("\n")

    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


def _cmd_shard_check(args) -> int:
    import dataclasses
    import os

    from .engine.runtime import JobConfig
    from .experiments.scenarios import QUICK, make_workload
    from .perf.benches import SHARD_WEIGHTS
    from .simulation.sharded import run_sharded, run_single_reference

    # The shard flow-control window applies to both runs (same-config
    # comparison): JobConfig owns the default / REPRO_SHARD_INBOX contract.
    config = JobConfig(shards=args.shards,
                       shard_inbox_capacity=args.inbox,
                       shard_transport=args.transport)
    config = dataclasses.replace(
        config, inbox_capacity=config.shard_inbox_capacity)

    def factory():
        return make_workload(args.workload, QUICK)

    single = run_single_reference(
        factory, until=args.until, job_config=config,
        collect_sinks=True, trace_watermarks=True)
    sharded = run_sharded(
        factory, until=args.until, shards=args.shards, job_config=config,
        weights=SHARD_WEIGHTS.get(args.workload),
        collect_sinks=True, trace_watermarks=True)
    equal = single.semantic_view() == sharded.semantic_view()

    def _sink_dump(result):
        # Sorted sink record views + counts: deterministic bytes, so CI
        # can diff the two files directly.
        view = result.semantic_view()
        return {"sink_events": view["sink_events"],
                "sinks": {name: {"records_in": s["records_in"],
                                 "collected": s["collected"]}
                          for name, s in sorted(view["sinks"].items())}}

    if args.output:
        os.makedirs(args.output, exist_ok=True)
        for label, result in (("single", single), ("sharded", sharded)):
            path = os.path.join(args.output, f"sink-{label}.json")
            with open(path, "w") as f:
                json.dump(_sink_dump(result), f, indent=1, sort_keys=True)
                f.write("\n")

    sync = sharded.sync_totals()
    report = {
        "workload": args.workload,
        "until": args.until,
        "shards_requested": args.shards,
        "workers": sharded.shards,
        "plan": [list(s) for s in sharded.plan.shards]
        if sharded.plan else [],
        "replans": sharded.replans,
        "forbidden_cuts": sharded.forbidden_cuts,
        "backpressure_safe": sharded.backpressure_safe,
        "backpressure_detail": sharded.backpressure_detail,
        "results_equal": equal,
        "sink_records_single": single.total_sink_input(),
        "sink_records_sharded": sharded.total_sink_input(),
        "transport": sharded.transport,
        "inbox_capacity": config.shard_inbox_capacity,
        "sync": sync,
        "sync_per_shard": [
            {k: v for k, v in s.items() if k != "blocked_intervals"}
            for s in sharded.sync_per_shard],
    }
    if args.trace_out:
        from .telemetry.shards import write_shard_sync_trace
        write_shard_sync_trace(sharded.sync_per_shard, args.trace_out,
                               transport=sharded.transport)
        report["trace"] = args.trace_out
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        plan = " | ".join("+".join(s) for s in report["plan"]) or "(single)"
        print(f"[{args.workload} until={args.until:g} "
              f"shards={sharded.shards}: {plan}]")
        print(f"  results {'EQUAL' if equal else 'DIFFER'}, "
              f"flow-control certification "
              f"{'OK' if sharded.backpressure_safe else 'FAILED'}, "
              f"sink records {single.total_sink_input()} vs "
              f"{sharded.total_sink_input()}")
        if sync:
            print(f"  transport={sync.get('transport')} "
                  f"nulls sent/suppressed="
                  f"{sync.get('null_sent', 0)}/"
                  f"{sync.get('null_suppressed', 0)} "
                  f"grant rounds={sync.get('grant_rounds', 0)} "
                  f"frames={sync.get('frames_sent', 0)} "
                  f"cut bytes={sync.get('bytes_shipped', 0)} "
                  f"spills={sync.get('spills', 0)}")
            print(f"  blocked waits={sync.get('blocked_waits', 0)} "
                  f"({sync.get('blocked_wait_s', 0.0):.3f}s), "
                  f"writer-full waits "
                  f"{sync.get('writer_full_wait_s', 0.0):.3f}s")
        for line in sharded.backpressure_detail:
            print(f"  {line}", file=sys.stderr)
    ok = equal and sharded.backpressure_safe
    return 0 if ok else 1


def _cmd_autoscale(args) -> int:
    from .experiments.diurnal import (DIURNAL_POLICIES, DiurnalConfig,
                                      compare_policies, run_diurnal)

    overrides = {}
    if args.slo is not None:
        overrides["slo"] = args.slo
    config = DiurnalConfig(scale=args.scale, seed=args.seed, **overrides)
    if args.policy == "compare":
        doc = compare_policies(config)
        ok = bool(doc["criteria"]["passed"])
        runs = doc["policies"]
    else:
        doc = run_diurnal(args.policy, config)
        ok = doc["attainment"] >= config.attainment_target
        runs = {args.policy: doc}
    text = json.dumps(doc, indent=1, sort_keys=True)
    if args.json:
        print(text)
    else:
        savings = doc.get("instance_seconds_savings", {})
        rows = []
        for name in DIURNAL_POLICIES:
            if name not in runs:
                continue
            run = runs[name]
            rows.append({
                "policy": name,
                "attainment": run["attainment"],
                "violations": f"{run['violations']}/{run['windows']}",
                "ramp_viol": (f"{run['ramp_violations']}"
                              f"/{run['ramp_windows']}"),
                "p99_s": run["p99_latency"],
                "inst_sec": run["instance_seconds"],
                "rescales": run["rescales"],
                "savings": savings.get(name, ""),
            })
        print(_format_table(
            rows, title=f"diurnal day ({config.scale}, seed "
                        f"{config.seed}, SLO {config.slo}s, attainment "
                        f"target {config.attainment_target})"))
        if args.policy == "compare":
            print()
            for key, value in doc["criteria"].items():
                print(f"  {key}: {'PASS' if value else 'FAIL'}")
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        if not args.json:
            print(f"[report saved to {args.output}]")
    if args.check and not ok:
        print("autoscale: acceptance criteria FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from .experiments.chaos_bank import CHAOS_SCENARIOS
    from .faults.chaos import ChaosHarness

    names = list(CHAOS_SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    reports = []
    for name in names:
        for seed in args.seed:
            report = ChaosHarness(
                CHAOS_SCENARIOS[name], seed=seed,
                state_backend=args.state_backend).run()
            reports.append(report)
            if not args.json:
                print(report.summary())
    doc = {"passed": all(r.passed for r in reports),
           "runs": [r.to_dict() for r in reports]}
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    if args.output:
        with open(args.output, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
        if not args.json:
            print(f"[invariant report saved to {args.output}]")
    return 0 if doc["passed"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRRS reproduction: regenerate the paper's evaluation "
                    "on the simulated streaming engine.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures, workloads and systems")

    p_figure = sub.add_parser("figure", help="regenerate one figure")
    p_figure.add_argument("name", choices=sorted(FIGURES))
    p_figure.add_argument("--scale", default="quick",
                          choices=("quick", "paper"))
    p_figure.add_argument("--output", help="also save the output here")
    p_figure.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of the "
                               "formatted table")

    p_run = sub.add_parser("run",
                           help="run one workload under one mechanism")
    p_run.add_argument("workload", choices=WORKLOADS)
    p_run.add_argument("--system", default="drrs",
                       choices=SYSTEMS + ("no-scale",))
    p_run.add_argument("--scale", default="quick",
                       choices=("quick", "paper"))
    p_run.add_argument("--new-parallelism", type=int, default=None,
                       help="target parallelism of the scaling operator "
                            "(default: the scenario's)")

    p_workload = sub.add_parser("workload",
                                help="run a workload without scaling")
    p_workload.add_argument("name", choices=WORKLOADS)
    p_workload.add_argument("--until", type=float, default=30.0)
    p_workload.add_argument("--inspect", action="store_true",
                            help="print per-operator load/queue/state rows")
    p_workload.add_argument("--scale", default="quick",
                            choices=("quick", "paper"))
    p_workload.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON instead of "
                                 "the formatted tables")

    p_trace = sub.add_parser(
        "trace",
        help="run one workload with tracing enabled and export the trace")
    p_trace.add_argument("workload", choices=WORKLOADS)
    p_trace.add_argument("--system", default="drrs",
                         choices=SYSTEMS + ("no-scale",))
    p_trace.add_argument("--scale", default="quick",
                         choices=("quick", "paper"))
    p_trace.add_argument("--new-parallelism", type=int, default=None,
                         help="target parallelism of the scaling operator "
                              "(default: the scenario's)")
    p_trace.add_argument("--output", default="trace.json",
                         help="Chrome trace-event file (Perfetto-loadable)")
    p_trace.add_argument("--jsonl",
                         help="also dump raw spans/events as JSON Lines")

    p_bench = sub.add_parser(
        "bench",
        help="run the wall-clock perf benches and write "
             "BENCH_kernel.json / BENCH_e2e.json",
        epilog=EXIT_CONTRACT.format(
            fail="a --compare baseline shows a throughput regression "
                 "past --threshold that persists through every --retry"),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_bench.add_argument("--scale", default="full",
                         choices=("smoke", "full", "paper"),
                         help="smoke: CI gate; full: recorded trajectory; "
                              "paper: 600 s NEXMark Q7/Q8 + the 4M-event "
                              "Twitch trace (nightly tier)")
    p_bench.add_argument("--output", default=".",
                         help="directory for the BENCH_*.json files")
    p_bench.add_argument("--only", choices=("kernel", "e2e"), default=None,
                         help="run just one suite")
    p_bench.add_argument("--json", action="store_true",
                         help="also print the bench documents as JSON")
    p_bench.add_argument("--best-of", type=_positive_int, default=None,
                         help="repetitions per bench, >= 1 (default: "
                              "harness BEST_OF)")
    p_bench.add_argument("--stat", default="best",
                         choices=("best", "median"),
                         help="reduce the repetitions to the fastest run "
                              "or the median run (CI uses median)")
    p_bench.add_argument("--compare", action="append", metavar="BASELINE",
                         help="baseline BENCH_*.json to diff against; "
                              "repeatable (one per suite); exits non-zero "
                              "if any throughput drops past --threshold")
    p_bench.add_argument("--threshold", type=float, default=0.10,
                         help="relative drop that counts as a regression "
                              "(default 0.10 = 10%%)")
    p_bench.add_argument("--retry", type=int, default=2,
                         help="re-measure a regressed suite up to N times; "
                              "only a drop that persists through every "
                              "retry fails the gate (default 2)")
    p_bench.add_argument("--shards", type=_positive_int, default=None,
                         help="worker processes for the e2e scenarios "
                              "(default: REPRO_SHARDS or 1); > 1 runs the "
                              "sharded kernel plus its single-process "
                              "reference and records plan, equivalence, "
                              "and both speedups")
    p_bench.add_argument("--transport", default=None,
                         choices=("auto", "shm", "pipe"),
                         help="cut-edge data plane for sharded e2e runs "
                              "(default: REPRO_SHARD_TRANSPORT or auto; "
                              "auto picks shared memory)")
    p_bench.add_argument("--inbox", type=_positive_int, default=None,
                         metavar="N",
                         help="shard flow-control window "
                              "(default: REPRO_SHARD_INBOX or 512)")

    p_shard = sub.add_parser(
        "shard-check",
        help="run one workload sharded and single-process at the same "
             "config and compare results exactly",
        epilog=EXIT_CONTRACT.format(
            fail="the sharded run's results differ from single-process "
                 "or its flow-control certification fails"),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_shard.add_argument("--workload", default="q7",
                         choices=("q7", "q8", "twitch"))
    p_shard.add_argument("--until", type=float, default=60.0,
                         help="simulated seconds to run (default 60)")
    p_shard.add_argument("--shards", type=_positive_int, default=2,
                         help="worker processes (default 2)")
    p_shard.add_argument("--output", default=None,
                         help="directory to write sink-dump JSON files "
                              "(sink-single.json / sink-sharded.json) for "
                              "byte-for-byte diffing in CI")
    p_shard.add_argument("--json", action="store_true",
                         help="print the comparison report as JSON")
    p_shard.add_argument("--transport", default=None,
                         choices=("auto", "shm", "pipe"),
                         help="cut-edge data plane (default: "
                              "REPRO_SHARD_TRANSPORT or auto; auto picks "
                              "shared memory)")
    p_shard.add_argument("--inbox", type=_positive_int, default=None,
                         metavar="N",
                         help="shard flow-control window "
                              "(default: REPRO_SHARD_INBOX or 512)")
    p_shard.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write the per-shard sync-protocol blocked "
                              "waits as a Chrome trace (open in "
                              "ui.perfetto.dev)")

    from .experiments.chaos_bank import CHAOS_SCENARIOS
    p_chaos = sub.add_parser(
        "chaos",
        help="run seeded fault-injection scenarios and check the §IV-C "
             "safety invariants",
        epilog=EXIT_CONTRACT.format(
            fail="any safety invariant is violated"),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_chaos.add_argument("scenario", nargs="?", default="all",
                         choices=("all",) + tuple(sorted(CHAOS_SCENARIOS)),
                         help="scenario name (default: every scenario)")
    p_chaos.add_argument("--seed", type=int, action="append", default=None,
                         help="seed(s) to run; repeatable (default: 7)")
    p_chaos.add_argument("--state-backend", default=None,
                         choices=("dict", "changelog"),
                         help="force every scenario onto this keyed-state "
                              "backend (default: each scenario's own; the "
                              "report records which backend ran)")
    p_chaos.add_argument("--output",
                         help="save the invariant report as JSON here")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of "
                              "summaries")

    from .experiments.diurnal import DIURNAL_POLICIES
    p_auto = sub.add_parser(
        "autoscale",
        help="run the diurnal-day elasticity scenario under a scaling "
             "policy (or compare policies) and report SLO attainment "
             "vs instance-seconds",
        epilog=EXIT_CONTRACT.format(
            fail="--check was given and the acceptance criteria (or the "
                 "single run's SLO attainment target) failed"),
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_auto.add_argument("--policy", default="compare",
                        choices=("compare",) + DIURNAL_POLICIES,
                        help="one policy, or 'compare' to run "
                             "static-peak/reactive/predictive and "
                             "evaluate the acceptance criteria")
    p_auto.add_argument("--scale", default="smoke",
                        choices=("smoke", "quick", "paper"))
    p_auto.add_argument("--seed", type=int, default=7)
    p_auto.add_argument("--slo", type=float, default=None,
                        help="windowed-p99 SLO in seconds (default: the "
                             "scenario's 1.5)")
    p_auto.add_argument("--json", action="store_true",
                        help="emit the full machine-readable report "
                             "(byte-identical across same-seed runs)")
    p_auto.add_argument("--output",
                        help="save the JSON report here as well")
    p_auto.add_argument("--check", action="store_true",
                        help="exit 1 unless the criteria pass")
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers: Dict[str, Callable] = {
        "list": _cmd_list,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "workload": _cmd_workload,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "shard-check": _cmd_shard_check,
        "chaos": _cmd_chaos,
        "autoscale": _cmd_autoscale,
    }
    if args.command == "chaos" and args.seed is None:
        args.seed = [7]
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
