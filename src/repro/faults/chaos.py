"""Chaos harness: run a scenario, inject faults, check invariants.

A :class:`ChaosScenario` is a named, seed-parameterised builder that
returns a fully wired :class:`ChaosSetup` — job, fault injector, recovery
manager, controllers, a per-operator oracle and a horizon.  The
:class:`ChaosHarness` then:

1. arms the injector and a :class:`~.invariants.WatermarkMonitor`,
2. runs the simulation to the horizon (long enough to quiesce: retries
   finish, sources finish replaying, channels drain),
3. evaluates the safety invariants (exactly-once state vs oracle, unique
   key-group ownership, routing consistency, watermark monotonicity)
   plus any scenario-specific expectations (e.g. "recovery used a
   checkpoint taken *during* the scaling operation"),
4. returns a :class:`ChaosReport` — JSON-serialisable, used by the
   ``repro chaos`` CLI and the CI chaos-smoke job.

Everything is deterministic in ``(scenario, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .invariants import WatermarkMonitor, check_all, semantic_trace

__all__ = ["ChaosScenario", "ChaosSetup", "ChaosReport", "ChaosHarness"]


@dataclass
class ChaosSetup:
    """Everything the harness needs to run and judge one scenario."""

    job: object
    injector: object
    #: Keyed operators whose structural invariants are checked.
    keyed_ops: List[str]
    horizon: float
    recovery: object = None
    #: op name -> (key -> expected reduced value), evaluated post-run.
    #: Populated by the scenario's generator as it offers records, so it
    #: is an oracle independent of replay history and of any faults.
    oracle: Dict[str, Dict] = field(default_factory=dict)
    #: Extra scenario-specific assertions, each returning violation
    #: strings: ``fn(setup) -> List[str]``.
    expectations: List[Callable] = field(default_factory=list)
    #: Interval for the watermark monitor (0 disables it).
    watermark_interval: float = 0.25
    #: Scenario-specific measurements; expectations may populate this and
    #: the harness copies it into the report (JSON-serialisable values).
    measurements: Dict = field(default_factory=dict)


@dataclass
class ChaosScenario:
    """A named builder: ``build(seed, state_backend=None) -> ChaosSetup``.

    ``state_backend`` selects the keyed-state backend ("dict" or
    "changelog"; None keeps the scenario's own default) — every scenario
    must pass the same invariants under either, and the semantic traces
    must be identical (backend equivalence)."""

    name: str
    build: Callable[..., ChaosSetup]
    description: str = ""


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run."""

    scenario: str
    seed: int
    passed: bool
    horizon: float
    #: Keyed-state backend the run used ("dict"/"changelog") — recorded
    #: so seeded-report diffs cannot silently compare across backends.
    state_backend: str = "dict"
    #: ``(time, kind, detail)`` per fired fault / closed window.
    faults: List = field(default_factory=list)
    #: Faults that fired but could not take effect.
    fault_errors: List = field(default_factory=list)
    #: ``(time, checkpoint id)`` per recovery performed.
    recoveries: List = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    kernel_events: int = 0
    #: Timing-free run outcome (:func:`~.invariants.semantic_trace`) —
    #: what the CI two-backend matrix diffs byte-for-byte.
    semantic_trace: Optional[Dict] = None
    #: Scenario-specific measurements (e.g. crash-large-state's
    #: recovery-time comparison), JSON-serialisable.
    measurements: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "horizon": self.horizon,
            "state_backend": self.state_backend,
            "faults": [list(entry) for entry in self.faults],
            "fault_errors": [list(entry) for entry in self.fault_errors],
            "recoveries": [list(entry) for entry in self.recoveries],
            "violations": list(self.violations),
            "kernel_events": self.kernel_events,
            "semantic_trace": self.semantic_trace,
            "measurements": dict(self.measurements),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"[{verdict}] {self.scenario} (seed={self.seed}, "
                 f"backend={self.state_backend}): "
                 f"{len(self.faults)} fault events, "
                 f"{len(self.recoveries)} recoveries, "
                 f"{len(self.violations)} violations"]
        for violation in self.violations:
            lines.append(f"  ! {violation}")
        for when, error in self.fault_errors:
            lines.append(f"  ~ t={when:.3f}: {error}")
        return "\n".join(lines)


class ChaosHarness:
    """Runs one scenario at one seed and judges the outcome.

    ``state_backend`` (None / "dict" / "changelog") is forwarded to the
    scenario builder; None keeps the scenario's default."""

    def __init__(self, scenario: ChaosScenario, seed: int = 0,
                 state_backend: Optional[str] = None):
        self.scenario = scenario
        self.seed = seed
        self.state_backend = state_backend

    def run(self) -> ChaosReport:
        if self.state_backend is None:
            setup = self.scenario.build(self.seed)
        else:
            setup = self.scenario.build(self.seed,
                                        state_backend=self.state_backend)
        job = setup.job
        setup.injector.arm()
        monitor: Optional[WatermarkMonitor] = None
        if setup.watermark_interval > 0:
            monitor = WatermarkMonitor(
                job, recovery=setup.recovery,
                interval=setup.watermark_interval).start()
        job.run(until=setup.horizon)
        if monitor is not None:
            monitor.stop()

        violations: List[str] = []
        for op_name in setup.keyed_ops:
            violations += check_all(job, op_name,
                                    oracle=setup.oracle.get(op_name))
        if monitor is not None:
            violations += monitor.violations
        for expectation in setup.expectations:
            violations += list(expectation(setup))

        recoveries = (list(setup.recovery.recoveries)
                      if setup.recovery is not None else [])
        return ChaosReport(
            scenario=self.scenario.name,
            seed=self.seed,
            passed=not violations,
            horizon=setup.horizon,
            state_backend=getattr(job.config, "state_backend", "dict"),
            faults=list(setup.injector.injected),
            fault_errors=list(setup.injector.errors),
            recoveries=recoveries,
            violations=violations,
            kernel_events=job.sim.events_processed,
            semantic_trace=semantic_trace(job, setup.keyed_ops),
            measurements=dict(setup.measurements),
        )
