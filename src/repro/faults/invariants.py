"""Safety invariants a chaos run must satisfy after recovery.

These are the properties §IV-C's fault-tolerance coexistence promises,
phrased as checks over a quiesced job (run the simulation long enough for
retries, replay and in-flight data to drain first):

1. **Exactly-once keyed state** — every keyed operator's merged state
   equals what a single-threaded oracle would compute from the records
   the generators produced, regardless of crashes, rollbacks and retries
   in between (:func:`check_exactly_once_state`).
2. **Unique ownership** — every key-group is held processable by exactly
   one instance, the one the authoritative assignment names, and no
   migration residue (``INCOMING``/``INACTIVE`` stubs) survives
   (:func:`check_unique_ownership`).
3. **Routing consistency** — every hash-partitioned edge into a keyed
   operator routes every key-group to the assignment's owner
   (:func:`check_routing_consistency`).
4. **Watermark monotonicity** — per-instance watermarks never regress,
   *except* across a recovery restore, which legitimately rewinds them
   (:class:`WatermarkMonitor`; it samples, so only use it in chaos runs
   where bit-identity with unmonitored runs does not matter).

5. **Backend equivalence** — a run's outcome must not depend on the
   keyed-state backend: the dict and changelog backends must produce
   identical *semantic traces* (final keyed state, per-key final sink
   values, final watermarks — everything except timing, which legitimately
   differs because changelog checkpoints cost a constant on the barrier
   path) (:func:`semantic_trace` / :func:`check_backend_equivalence`).

Each check returns a list of human-readable violation strings — empty
means the invariant holds.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..engine.graph import Partitioning
from ..engine.state import StateStatus

__all__ = [
    "check_exactly_once_state",
    "check_unique_ownership",
    "check_routing_consistency",
    "check_all",
    "semantic_trace",
    "check_backend_equivalence",
    "WatermarkMonitor",
]

#: Statuses under which a key-group's bytes actually live on an instance.
_HOLDS_BYTES = (StateStatus.LOCAL, StateStatus.PENDING_OUT,
                StateStatus.INACTIVE)


def check_exactly_once_state(job, op_name: str,
                             oracle: Dict) -> List[str]:
    """Merged keyed state of ``op_name`` equals the oracle exactly.

    ``oracle`` maps key → expected value (what a single-threaded run over
    the produced records would leave in the reduce state).  Reports keys
    that are missing, wrong (lost or double-counted records), spurious,
    or present on more than one instance.
    """
    violations: List[str] = []
    merged: Dict = {}
    holders: Dict = {}
    for instance in job.instances(op_name):
        for group in instance.state.groups():
            if group.status not in _HOLDS_BYTES:
                continue
            for key, value in group.entries.items():
                if key in merged:
                    violations.append(
                        f"{op_name}: key {key!r} held by both "
                        f"{holders[key]} and {instance.name}")
                merged[key] = value
                holders[key] = instance.name
    for key, expected in oracle.items():
        actual = merged.get(key)
        if actual != expected:
            violations.append(
                f"{op_name}: key {key!r} = {actual!r}, oracle says "
                f"{expected!r}")
    for key in merged:
        if key not in oracle:
            violations.append(
                f"{op_name}: spurious key {key!r} = {merged[key]!r}")
    return violations


def check_unique_ownership(job, op_name: str) -> List[str]:
    """Every key-group processable on exactly the assigned instance."""
    violations: List[str] = []
    assignment = job.assignments[op_name].as_dict()
    instances = job.instances(op_name)
    processable: Dict[int, List[int]] = {}
    for instance in instances:
        for group in instance.state.groups():
            if group.status in (StateStatus.INCOMING,
                                StateStatus.INACTIVE):
                violations.append(
                    f"{op_name}[{instance.index}]: key-group "
                    f"{group.key_group} stuck {group.status.name} "
                    "(migration residue)")
            if group.processable:
                processable.setdefault(group.key_group,
                                       []).append(instance.index)
    for kg, owner in assignment.items():
        holders = processable.get(kg, [])
        if len(holders) != 1:
            violations.append(
                f"{op_name}: key-group {kg} processable on "
                f"{holders or 'no instance'} (want exactly one)")
        elif holders[0] != owner:
            violations.append(
                f"{op_name}: key-group {kg} lives on instance "
                f"{holders[0]} but the assignment names {owner}")
    for kg in processable:
        if kg not in assignment:
            violations.append(
                f"{op_name}: key-group {kg} held but not assigned")
    return violations


def check_routing_consistency(job, op_name: str) -> List[str]:
    """Hash edges into ``op_name`` route every group to its owner."""
    violations: List[str] = []
    assignment = job.assignments[op_name].as_dict()
    for sender, edge in job.senders_to(op_name):
        if edge.partitioning is not Partitioning.HASH:
            continue
        for kg, owner in assignment.items():
            routed = edge.routing_table.get(kg)
            if routed != owner:
                violations.append(
                    f"edge {sender.name}->{op_name}: key-group {kg} "
                    f"routed to {routed}, assignment names {owner}")
    return violations


def check_all(job, op_name: str,
              oracle: Optional[Dict] = None) -> List[str]:
    """Run every structural check (and the oracle check when given)."""
    violations = check_unique_ownership(job, op_name)
    violations += check_routing_consistency(job, op_name)
    if oracle is not None:
        violations += check_exactly_once_state(job, op_name, oracle)
    return violations


def semantic_trace(job, keyed_ops: Optional[List[str]] = None) -> Dict:
    """The timing-free outcome of a quiesced run, for cross-run diffing.

    Captures, per keyed operator, the merged final state (sorted
    ``(key_group, sorted entries)``) with a stable digest; per sink
    instance, the *last* collected value for each key (at-least-once
    replay may duplicate intermediate emissions, but per-key updates are
    FIFO-ordered so the final one is the converged value); and each
    instance's final watermark.  Two runs of the same scenario under
    different state backends must produce identical traces —
    event *timing* differs (that is the point of the changelog backend),
    the semantics must not.
    """
    if keyed_ops is None:
        keyed_ops = sorted(op for op in job.assignments)
    state: Dict[str, list] = {}
    for op_name in keyed_ops:
        groups = []
        for instance in job.instances(op_name):
            for group in instance.state.groups():
                if group.status not in _HOLDS_BYTES:
                    continue
                entries = sorted((repr(k), repr(v))
                                 for k, v in group.entries.items())
                groups.append((group.key_group, entries))
        state[op_name] = sorted(groups)
    sinks: Dict[str, list] = {}
    for instance in job.all_instances():
        collected = getattr(instance.logic, "collected", None)
        if collected is None:
            continue
        last: Dict = {}
        for record in collected:
            key = getattr(record, "key", None)
            value = getattr(record, "value", record)
            last[repr(key)] = repr(value)
        sinks[instance.name] = sorted(last.items())
    watermarks = {}
    for instance in job.all_instances():
        wm = instance.current_watermark
        watermarks[instance.name] = repr(wm)
    trace = {"state": state, "sinks": sinks, "watermarks": watermarks}
    canonical = "|".join((repr(sorted(state.items())),
                          repr(sorted(sinks.items())),
                          repr(sorted(watermarks.items()))))
    trace["digest"] = hashlib.sha256(canonical.encode()).hexdigest()
    return trace


def check_backend_equivalence(trace_a: Dict, trace_b: Dict,
                              label_a: str = "dict",
                              label_b: str = "changelog") -> List[str]:
    """Diff two semantic traces; violations name what diverged where."""
    violations: List[str] = []
    for section in ("state", "sinks", "watermarks"):
        part_a, part_b = trace_a.get(section, {}), trace_b.get(section, {})
        for name in sorted(set(part_a) | set(part_b)):
            if name not in part_a:
                violations.append(
                    f"{section}[{name}]: present under {label_b} only")
            elif name not in part_b:
                violations.append(
                    f"{section}[{name}]: present under {label_a} only")
            elif part_a[name] != part_b[name]:
                violations.append(
                    f"{section}[{name}]: {label_a} and {label_b} "
                    f"disagree ({part_a[name]!r} != {part_b[name]!r})")
    if not violations and trace_a.get("digest") != trace_b.get("digest"):
        violations.append(
            f"trace digests differ ({label_a}={trace_a.get('digest')}, "
            f"{label_b}={trace_b.get('digest')}) with no section diff")
    return violations


class WatermarkMonitor:
    """Samples per-instance watermarks; flags regressions.

    A watermark may only move backwards across a recovery restore (the
    restore rewinds it to ``-inf`` before replay).  The monitor tags each
    sample with the recovery epoch (``len(recovery.recoveries)``) and
    only compares samples within one epoch.

    Sampling spawns a kernel process, so attach this only to chaos runs.
    """

    def __init__(self, job, recovery=None, interval: float = 0.25):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.job = job
        self.recovery = recovery
        self.interval = interval
        self.violations: List[str] = []
        self._last: Dict[str, tuple] = {}
        self._running = False

    def _epoch(self) -> int:
        return len(self.recovery.recoveries) if self.recovery else 0

    def start(self) -> "WatermarkMonitor":
        if self._running:
            return self
        self._running = True
        self.job.sim.spawn(self._loop(), name="watermark-monitor")
        return self

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        sim = self.job.sim
        while self._running:
            yield sim.timeout(self.interval)
            epoch = self._epoch()
            for instance in self.job.all_instances():
                if instance.paused:
                    # A paused instance's watermark is not externally
                    # visible; recovery rewinds it to -inf while paused,
                    # which would read as a same-epoch regression.
                    continue
                wm = instance.current_watermark
                last = self._last.get(instance.name)
                if (last is not None and last[1] == epoch
                        and wm < last[0]):
                    self.violations.append(
                        f"{instance.name}: watermark regressed "
                        f"{last[0]} -> {wm} at t={sim.now} with no "
                        "recovery in between")
                self._last[instance.name] = (wm, epoch)
