"""Deterministic fault injection and chaos testing (§IV-C robustness).

See :mod:`repro.faults.injector` for the fault model,
:mod:`repro.faults.invariants` for the safety properties checked after
recovery, and :mod:`repro.faults.chaos` for the scenario harness.  Ready
made scenarios live in :mod:`repro.experiments.chaos_bank`; run them with
``python -m repro chaos``.
"""

from .chaos import ChaosHarness, ChaosReport, ChaosScenario, ChaosSetup
from .injector import (CrashInstance, CrashNode, DelayRecords, DropRecords,
                       DuplicateRecords, FaultInjector, StallTransfers,
                       StallUploads)
from .invariants import (WatermarkMonitor, check_all,
                         check_backend_equivalence,
                         check_exactly_once_state,
                         check_routing_consistency, check_unique_ownership,
                         semantic_trace)

__all__ = [
    "FaultInjector",
    "CrashInstance",
    "CrashNode",
    "DropRecords",
    "DuplicateRecords",
    "DelayRecords",
    "StallTransfers",
    "StallUploads",
    "ChaosHarness",
    "ChaosReport",
    "ChaosScenario",
    "ChaosSetup",
    "WatermarkMonitor",
    "check_all",
    "check_backend_equivalence",
    "check_exactly_once_state",
    "check_routing_consistency",
    "check_unique_ownership",
    "semantic_trace",
]
