"""Deterministic fault injection for chaos experiments.

A :class:`FaultInjector` schedules *fault specs* against a running
:class:`~repro.engine.runtime.StreamJob`.  Every fault is triggered either

* at an absolute simulated time (``at=...``), via the kernel's cheap
  callback heap, or
* at the **start of a named telemetry phase** (``phase=...``) — the
  injector hooks :attr:`Tracer.span_listener` and fires the first time a
  span with that name opens (e.g. ``phase="state-transfer"`` crashes the
  job the moment the first key-group migration begins).

All randomness flows through one ``random.Random`` seeded at construction
(:func:`~repro.simulation.randomness.make_rng`), and the kernel itself is
deterministic, so a chaos run is exactly reproducible from
``(scenario, seed)``.  With no faults scheduled the injector touches
nothing — the hooks it uses (``Channel.fault_hook``,
``job.transfer_fault_hook``, ``tracer.span_listener``) all default to
``None`` and cost one attribute check, so fault-free runs stay
bit-identical to runs without an injector.

Fault model (what can go wrong, mirroring the failures §IV-C must
coexist with):

=====================  ====================================================
spec                   effect
=====================  ====================================================
:class:`CrashInstance` an instance fails → whole-job rollback recovery
                       (Flink's restart-all strategy); if a scaling
                       operation is in flight the controller aborts and
                       rolls it back first
:class:`CrashNode`     same recovery path, attributed to a host failure
:class:`DropRecords`   records on one operator→operator hop are lost on
                       the wire for a window (flow-control credits are
                       returned so the pipe keeps flowing)
:class:`DuplicateRecords` records on one hop are delivered twice for a
                       window
:class:`DelayRecords`  records on one hop are held back and re-delivered
                       ``hold`` seconds later (re-ordering them past
                       their successors)
:class:`StallTransfers` key-group state transfers of one operator take
                       ``extra_seconds`` longer while the window is open,
                       holding their NIC slot (models a slow/overloaded
                       host during migration)
:class:`StallUploads`  asynchronous changelog-segment checkpoint uploads
                       of one operator take ``extra_seconds`` longer
                       while the window is open — the checkpoint cannot
                       complete until its delta chain is durable (models
                       a slow/overloaded DFS; no-op for the dict backend,
                       which has no async uploads)
=====================  ====================================================

Dropping or duplicating records violates exactly-once *by design*; chaos
scenarios pair those windows with a crash+recovery that rolls state back
to a checkpoint from before the window, after which replay restores
exactly-once (see :mod:`repro.experiments.chaos_bank`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..simulation.randomness import make_rng

__all__ = [
    "FaultInjector",
    "CrashInstance",
    "CrashNode",
    "DropRecords",
    "DuplicateRecords",
    "DelayRecords",
    "StallTransfers",
    "StallUploads",
]


@dataclass
class CrashInstance:
    """One instance of ``op`` fails.

    Recovery is whole-job rollback (the simulator models Flink's
    restart-all strategy), so which instance crashed only flavours the
    reason string — but the *timing* relative to checkpoints and scaling
    operations is what chaos scenarios vary.
    """

    op: str
    index: int = 0
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return f"crash of {self.op}[{self.index}]"

    def apply(self, injector: "FaultInjector") -> None:
        injector.crash(self.describe())


@dataclass
class CrashNode:
    """A whole host fails; every instance placed on it goes down."""

    node: str
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return f"crash of node {self.node}"

    def apply(self, injector: "FaultInjector") -> None:
        injector.crash(self.describe())


@dataclass
class DropRecords:
    """Records on the ``from_op -> to_op`` hop are lost for a window."""

    from_op: str
    to_op: str
    duration: float
    probability: float = 1.0
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return (f"drop p={self.probability} on {self.from_op}->"
                f"{self.to_op} for {self.duration}s")

    def apply(self, injector: "FaultInjector") -> None:
        injector.open_channel_window(self, action="drop")


@dataclass
class DuplicateRecords:
    """Records on one hop are delivered twice for a window."""

    from_op: str
    to_op: str
    duration: float
    probability: float = 1.0
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return (f"duplicate p={self.probability} on {self.from_op}->"
                f"{self.to_op} for {self.duration}s")

    def apply(self, injector: "FaultInjector") -> None:
        injector.open_channel_window(self, action="duplicate")


@dataclass
class DelayRecords:
    """Records on one hop are held ``hold`` seconds, re-ordering them."""

    from_op: str
    to_op: str
    duration: float
    hold: float = 0.5
    probability: float = 1.0
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return (f"delay {self.hold}s p={self.probability} on "
                f"{self.from_op}->{self.to_op} for {self.duration}s")

    def apply(self, injector: "FaultInjector") -> None:
        injector.open_delay_window(self)


@dataclass
class StallTransfers:
    """State transfers out of ``op`` stall for ``extra_seconds`` each."""

    op: str
    extra_seconds: float
    duration: float
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return (f"stall +{self.extra_seconds}s on transfers of "
                f"{self.op} for {self.duration}s")

    def apply(self, injector: "FaultInjector") -> None:
        injector.open_stall_window(self)


@dataclass
class StallUploads:
    """Changelog checkpoint uploads of ``op`` stall while the window is
    open, delaying delta-chain completeness (and hence checkpoint
    completion); the barrier path is untouched.  No effect under the dict
    backend, which uploads nothing asynchronously."""

    op: str
    extra_seconds: float
    duration: float
    at: Optional[float] = None
    phase: Optional[str] = None

    def describe(self) -> str:
        return (f"stall +{self.extra_seconds}s on checkpoint uploads of "
                f"{self.op} for {self.duration}s")

    def apply(self, injector: "FaultInjector") -> None:
        injector.open_upload_stall_window(self)


class FaultInjector:
    """Schedules fault specs deterministically against one job.

    Usage::

        injector = FaultInjector(job, recovery=manager, seed=7)
        injector.add(CrashInstance("agg", 1, at=8.0))
        injector.add(DropRecords("src", "agg", duration=0.5,
                                 phase="state-transfer"))
        injector.arm()
        job.run(until=40.0)

    :attr:`injected` logs every fired fault as ``(time, kind, detail)``;
    :attr:`errors` collects faults that could not take effect (e.g. a
    crash before any checkpoint completed — nothing to recover from).
    """

    def __init__(self, job, recovery=None, seed: int = 0):
        self.job = job
        self.sim = job.sim
        self.recovery = recovery
        self.seed = seed
        self.rng = make_rng(seed)
        self.pending: List = []
        #: ``(sim time, fault class name, detail)`` per fired fault.
        self.injected: List[Tuple[float, str, str]] = []
        #: Faults that fired but could not take effect.
        self.errors: List[Tuple[float, str]] = []
        self._phase_watch: Dict[str, List] = {}
        self._armed = False

    # -- scheduling -----------------------------------------------------------

    def add(self, fault) -> "FaultInjector":
        """Register a fault spec; returns self for chaining."""
        if fault.at is None and fault.phase is None:
            raise ValueError("fault needs a trigger: set at= or phase=")
        # Fault windows need per-record channel hooks (drop/duplicate act
        # on individual deliveries), so the batched record plane is
        # collapsed as soon as a real fault exists — chaos scenarios
        # exercise the reference plane by construction.  An injector that
        # never receives a fault stays inert.
        self.job.disable_batching()
        self.pending.append(fault)
        if self._armed:
            self._arm_one(fault)
        return self

    def arm(self) -> "FaultInjector":
        """Activate all registered faults; idempotent."""
        if self._armed:
            return self
        self._armed = True
        for fault in self.pending:
            self._arm_one(fault)
        return self

    def _arm_one(self, fault) -> None:
        if fault.at is not None:
            self.sim.call_at(fault.at, lambda: self._fire(fault))
        else:
            self._watch_phase(fault)

    def _watch_phase(self, fault) -> None:
        telemetry = self.job.telemetry
        if telemetry is None:
            raise ValueError(
                "phase-triggered faults need job.enable_telemetry()")
        tracer = telemetry.tracer
        if (tracer.span_listener is not None
                and tracer.span_listener is not self._on_span):
            raise RuntimeError("tracer.span_listener is already taken")
        tracer.span_listener = self._on_span
        self._phase_watch.setdefault(fault.phase, []).append(fault)

    def _on_span(self, span) -> None:
        waiting = self._phase_watch.get(span.name)
        if not waiting:
            return
        due, waiting[:] = list(waiting), []
        for fault in due:
            # Deferred one kernel step: firing inside begin() would mutate
            # the very machinery (scaling procs, channels) that is midway
            # through opening the span.
            self.sim.call_in(0.0, lambda f=fault: self._fire(f))

    def _fire(self, fault) -> None:
        detail = fault.describe()
        self.injected.append((self.sim.now, type(fault).__name__, detail))
        telemetry = self.job.telemetry
        if telemetry is not None:
            telemetry.tracer.instant(
                "fault.injected", category="fault", track="faults",
                kind=type(fault).__name__, detail=detail)
        fault.apply(self)

    # -- effect primitives (what fault specs call back into) ------------------

    def crash(self, reason: str) -> None:
        from ..engine.recovery import RecoveryError
        if self.recovery is None:
            raise RuntimeError(
                "crash faults need a RecoveryManager: pass recovery= to "
                "FaultInjector")
        try:
            self.recovery.fail_and_recover(reason)
        except RecoveryError as error:
            # No completed checkpoint (or an unabortable controller): the
            # job cannot recover.  Record it; the invariant report
            # surfaces unrecoverable crashes instead of exploding the sim.
            self.errors.append((self.sim.now, str(error)))

    def channels_between(self, from_op: str, to_op: str) -> List:
        channels = []
        for sender, edge in self.job.senders_to(to_op):
            if sender.spec.name == from_op:
                channels.extend(edge.channels)
        return channels

    def _record_filter(self, probability: float):
        rng = self.rng
        if probability >= 1.0:
            return lambda element: bool(getattr(element, "is_record",
                                                False))
        return lambda element: (getattr(element, "is_record", False)
                                and rng.random() < probability)

    def open_channel_window(self, fault, action: str) -> None:
        """Drop or duplicate matching records until the window closes."""
        channels = self.channels_between(fault.from_op, fault.to_op)
        if not channels:
            raise ValueError(
                f"no channels between {fault.from_op} and {fault.to_op}")
        matches = self._record_filter(fault.probability)
        hit = [0]

        def hook(channel, element):
            if matches(element):
                hit[0] += 1
                return action
            return None

        saved = [(channel, channel.fault_hook) for channel in channels]
        for channel in channels:
            channel.fault_hook = hook

        def close():
            for channel, previous in saved:
                if channel.fault_hook is hook:
                    channel.fault_hook = previous
            self.injected.append(
                (self.sim.now, "WindowClosed",
                 f"{action} window {fault.from_op}->{fault.to_op}: "
                 f"{hit[0]} records"))

        self.sim.call_in(fault.duration, close)

    def open_delay_window(self, fault) -> None:
        """Hold matching records and re-deliver them ``hold`` later.

        Implemented as drop-with-redelivery: the channel returns the
        flow-control credit immediately (as for a drop) and the record
        re-enters the inbox later without consuming one — the inbox may
        transiently exceed its capacity, like a real burst of delayed
        packets.
        """
        channels = self.channels_between(fault.from_op, fault.to_op)
        if not channels:
            raise ValueError(
                f"no channels between {fault.from_op} and {fault.to_op}")
        matches = self._record_filter(fault.probability)
        hit = [0]

        def hook(channel, element):
            if not matches(element):
                return None
            hit[0] += 1

            def redeliver(ch=channel, el=element):
                if ch.input_channel is not None:
                    ch.input_channel.deliver(el)

            self.sim.call_in(fault.hold, redeliver)
            return "drop"

        saved = [(channel, channel.fault_hook) for channel in channels]
        for channel in channels:
            channel.fault_hook = hook

        def close():
            for channel, previous in saved:
                if channel.fault_hook is hook:
                    channel.fault_hook = previous
            self.injected.append(
                (self.sim.now, "WindowClosed",
                 f"delay window {fault.from_op}->{fault.to_op}: "
                 f"{hit[0]} records"))

        self.sim.call_in(fault.duration, close)

    def open_stall_window(self, fault) -> None:
        """Stretch state transfers out of ``fault.op`` while open."""
        job = self.job
        deadline = self.sim.now + fault.duration
        previous = job.transfer_fault_hook
        hit = [0]

        def hook(src, dst, key_group):
            extra = previous(src, dst, key_group) if previous else 0.0
            if src.spec.name == fault.op and self.sim.now <= deadline:
                hit[0] += 1
                return extra + fault.extra_seconds
            return extra

        job.transfer_fault_hook = hook

        def close():
            if job.transfer_fault_hook is hook:
                job.transfer_fault_hook = previous
            self.injected.append(
                (self.sim.now, "WindowClosed",
                 f"stall window on {fault.op}: {hit[0]} transfers"))

        self.sim.call_in(fault.duration, close)

    def open_upload_stall_window(self, fault) -> None:
        """Stretch async checkpoint uploads of ``fault.op`` while open."""
        job = self.job
        deadline = self.sim.now + fault.duration
        previous = job.checkpoint_upload_hook
        hit = [0]

        def hook(instance, segment):
            extra = previous(instance, segment) if previous else 0.0
            if (instance.spec.name == fault.op
                    and self.sim.now <= deadline):
                hit[0] += 1
                return (extra or 0.0) + fault.extra_seconds
            return extra

        job.checkpoint_upload_hook = hook

        def close():
            if job.checkpoint_upload_hook is hook:
                job.checkpoint_upload_hook = previous
            self.injected.append(
                (self.sim.now, "WindowClosed",
                 f"upload-stall window on {fault.op}: {hit[0]} uploads"))

        self.sim.call_in(fault.duration, close)
