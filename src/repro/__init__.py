"""repro — reproduction of "Towards Fine-Grained Scalability for Stateful
Stream Processing Systems" (DRRS, ICDE 2025) on a simulated streaming engine.

Public API tour
---------------
* :mod:`repro.simulation` — deterministic discrete-event kernel.
* :mod:`repro.engine` — the Flink-like streaming engine substrate: job
  graphs, operator instances, credit-based channels, key-group state,
  watermarks, checkpoints, metrics.
* :mod:`repro.scaling` — the scaling framework and baseline mechanisms
  (generalized OTFS, Megaphone-style, Meces-style, Unbound,
  Stop-Checkpoint-Restart).
* :mod:`repro.core` — DRRS itself (Decoupling and Re-routing, Record
  Scheduling, Subscale Division) and its ablation variants.
* :mod:`repro.workloads` — NEXMark Q7/Q8, the synthetic Twitch pipeline and
  the configurable sensitivity workload.
* :mod:`repro.experiments` — the warm-up → scale → stabilize harness and
  one runner per figure of the paper's evaluation.
"""

from .core.drrs import DRRSConfig, DRRSController, make_variant
from .engine.graph import JobGraph, OperatorSpec
from .engine.runtime import JobConfig, StreamJob
from .scaling.megaphone import MegaphoneController
from .scaling.meces import MecesController
from .scaling.otfs import OTFSController
from .scaling.stop_restart import StopRestartController
from .scaling.unbound import UnboundController
from .simulation.kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "DRRSConfig",
    "DRRSController",
    "make_variant",
    "JobGraph",
    "OperatorSpec",
    "JobConfig",
    "StreamJob",
    "MegaphoneController",
    "MecesController",
    "OTFSController",
    "StopRestartController",
    "UnboundController",
    "Simulator",
    "__version__",
]
