"""Scaling-decision policies for the Scale Planner's Policy Generator (C0).

The paper's default C0 is a user-request trigger (§IV-A) and treats
decision-making as orthogonal, to be integrated later (§VII).  This module
provides that integration point: pluggable trigger policies that watch the
running job and invoke a :class:`ScalingController` when their condition
holds.

Shipped policies:

* :class:`UserRequestPolicy` — the paper's default: fire exactly when told.
* :class:`UtilizationPolicy` — rescale the operator when its mean busy
  fraction stays above a threshold for a hold period (classic reactive
  autoscaling, e.g. the DS2/Dhalion family the paper cites as orthogonal).
* :class:`BacklogPolicy` — rescale when the per-instance input backlog
  exceeds a bound (useful when service times are unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..engine.runtime import StreamJob
from ..scaling.base import ScalingController

__all__ = ["ScalingPolicy", "UserRequestPolicy", "UtilizationPolicy",
           "BacklogPolicy", "RetryPolicy"]


@dataclass
class RetryPolicy:
    """Backoff schedule for retrying an aborted scaling operation.

    ``DRRSController.abort_and_rollback`` consults this after a mid-scaling
    failure: attempt *k* (1-based) waits ``backoff(k)`` simulated seconds
    before re-requesting the rescale; after ``max_attempts`` failed
    attempts the operation's done event fails instead.
    """

    max_attempts: int = 3
    initial_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 10.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_backoff <= 0:
            raise ValueError("initial_backoff must be > 0 (a zero delay "
                             "would race the rollback it retries after)")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Delay before the given 1-based retry attempt."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.initial_backoff * (self.multiplier ** (attempt - 1))
        return min(delay, self.max_backoff)


class ScalingPolicy:
    """Base: a simulation process that may request rescales."""

    def __init__(self, job: StreamJob, controller: ScalingController,
                 operator: str):
        self.job = job
        self.controller = controller
        self.operator = operator
        self.decisions: List[Tuple[float, int]] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.job.sim.spawn(self._loop(), name=f"policy:{self.operator}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        raise NotImplementedError

    def _request(self, new_parallelism: int):
        self.decisions.append((self.job.sim.now, new_parallelism))
        return self.controller.request_rescale(self.operator,
                                               new_parallelism)


class UserRequestPolicy(ScalingPolicy):
    """The paper's default C0: scale when (and only when) asked."""

    def __init__(self, job, controller, operator,
                 at: float, new_parallelism: int):
        super().__init__(job, controller, operator)
        self.at = at
        self.new_parallelism = new_parallelism

    def _loop(self):
        delay = self.at - self.job.sim.now
        if delay > 0:
            yield self.job.sim.timeout(delay)
        if self._running:
            self._request(self.new_parallelism)


@dataclass
class _Window:
    """Rolling mean over the last N samples."""

    size: int
    samples: List[float] = field(default_factory=list)

    def push(self, value: float) -> None:
        self.samples.append(value)
        if len(self.samples) > self.size:
            self.samples.pop(0)

    @property
    def full(self) -> bool:
        return len(self.samples) >= self.size

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


class UtilizationPolicy(ScalingPolicy):
    """Reactive scale-out on sustained high operator utilisation.

    Utilisation is the mean busy fraction of the operator's instances over
    the evaluation interval.  When the rolling mean over ``hold_samples``
    intervals exceeds ``high_threshold``, parallelism is increased by
    ``step`` (capped at ``max_parallelism``), sized so the post-scaling
    utilisation lands near ``target``.
    """

    def __init__(self, job, controller, operator,
                 high_threshold: float = 0.85,
                 target: float = 0.6,
                 interval: float = 5.0,
                 hold_samples: int = 3,
                 max_parallelism: int = 64,
                 cooldown: float = 30.0,
                 metric: str = "max"):
        super().__init__(job, controller, operator)
        if not 0 < target < high_threshold <= 1.5:
            raise ValueError("need 0 < target < high_threshold")
        if metric not in ("max", "mean"):
            raise ValueError(f"unknown metric: {metric!r}")
        self.high_threshold = high_threshold
        self.target = target
        self.interval = interval
        self.hold_samples = hold_samples
        self.max_parallelism = max_parallelism
        self.cooldown = cooldown
        #: "max" watches the hottest instance (robust under key skew, where
        #: one saturated subtask head-of-line-blocks the whole pipeline
        #: while the *mean* stays deceptively low); "mean" is the classic
        #: aggregate signal.
        self.metric = metric

    def _utilization(self, busy_before: dict) -> float:
        instances = self.job.instances(self.operator)
        fractions = []
        for inst in instances:
            delta = inst.busy_seconds - busy_before.get(id(inst), 0.0)
            fractions.append(delta / self.interval)
        if not fractions:
            return 0.0
        if self.metric == "max":
            return max(fractions)
        return sum(fractions) / len(fractions)

    def _loop(self):
        window = _Window(self.hold_samples)
        last_scale = -float("inf")
        while self._running:
            busy_before = {id(inst): inst.busy_seconds
                           for inst in self.job.instances(self.operator)}
            yield self.job.sim.timeout(self.interval)
            if not self._running:
                return
            window.push(self._utilization(busy_before))
            now = self.job.sim.now
            if (window.full and window.mean > self.high_threshold
                    and not self.controller.active
                    and now - last_scale >= self.cooldown):
                current = len(self.job.instances(self.operator))
                wanted = min(self.max_parallelism,
                             max(current + 1,
                                 int(round(current * window.mean
                                           / self.target))))
                if wanted > current:
                    self._request(wanted)
                    last_scale = now
                    window.samples.clear()


class BacklogPolicy(ScalingPolicy):
    """Reactive scale-out on sustained input backlog.

    Backlog is the total queued elements across the operator's input
    channels plus the source admission queues feeding it (a proxy for
    consumer lag).  Exceeding ``max_backlog`` for ``hold_samples``
    consecutive checks triggers a one-step scale-out.
    """

    def __init__(self, job, controller, operator,
                 max_backlog: int = 200,
                 interval: float = 5.0,
                 hold_samples: int = 2,
                 step: int = 2,
                 max_parallelism: int = 64,
                 cooldown: float = 30.0):
        super().__init__(job, controller, operator)
        self.max_backlog = max_backlog
        self.interval = interval
        self.hold_samples = hold_samples
        self.step = step
        self.max_parallelism = max_parallelism
        self.cooldown = cooldown

    def _backlog(self) -> int:
        total = 0
        for inst in self.job.instances(self.operator):
            for channel in inst.input_channels:
                # Visibility-aware logical depth: batch members still "on
                # the wire" in per-record terms must not inflate the
                # backlog the policy reacts to.
                total += len(channel)
        for source in self.job.sources():
            total += source.backlog
        return total

    def _loop(self):
        over = 0
        last_scale = -float("inf")
        while self._running:
            yield self.job.sim.timeout(self.interval)
            if not self._running:
                return
            over = over + 1 if self._backlog() > self.max_backlog else 0
            now = self.job.sim.now
            if (over >= self.hold_samples and not self.controller.active
                    and now - last_scale >= self.cooldown):
                current = len(self.job.instances(self.operator))
                wanted = min(self.max_parallelism, current + self.step)
                if wanted > current:
                    self._request(wanted)
                    last_scale = now
                    over = 0
