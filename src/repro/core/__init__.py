"""DRRS — the paper's primary contribution."""

from .barriers import ConfirmBarrier, TriggerBarrier
from .coordinator import ScaleCoordinator
from .drrs import (CoupledSubscaleController, DRRSConfig, DRRSController,
                   make_variant)
from .executor import DRRSInputHandler, ScaleExecutor
from .planner import Subscale, SubscalePlanner
from .policy import (BacklogPolicy, ScalingPolicy, UserRequestPolicy,
                     UtilizationPolicy)
from .rerouting import ReRouteManager
from .scheduling import scan_inter_channel, scan_intra_channel

__all__ = [
    "ConfirmBarrier",
    "TriggerBarrier",
    "ScaleCoordinator",
    "CoupledSubscaleController",
    "DRRSConfig",
    "DRRSController",
    "make_variant",
    "DRRSInputHandler",
    "ScaleExecutor",
    "BacklogPolicy",
    "ScalingPolicy",
    "UserRequestPolicy",
    "UtilizationPolicy",
    "Subscale",
    "SubscalePlanner",
    "ReRouteManager",
    "scan_inter_channel",
    "scan_intra_channel",
]
