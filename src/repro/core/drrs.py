"""DRRS: the paper's on-the-fly scaling method, and its ablation variants.

:class:`DRRSController` wires the three mechanisms together:

* Decoupling and Re-routing (§III-A) — decoupled trigger/confirm barriers
  with predecessor injection and implicit alignment at the receiver;
* Record Scheduling (§III-B) — inter-/intra-channel execution-order
  adjustments within a bounded buffer;
* Subscale Division (§III-C) — independent subscales scheduled greedily
  under a per-node concurrency threshold.

:func:`make_variant` builds the four systems of the Fig. 14 isolation test:
``"drrs"`` (all three), ``"dr"`` (Decoupling and Re-routing only),
``"schedule"`` (Record Scheduling on a conventional coupled-signal scaling),
and ``"subscale"`` (Subscale Division driven by coupled signals, whose
mutual synchronization interference the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.runtime import StreamJob
from ..engine.state import StateStatus
from ..scaling.base import ScalingController
from ..scaling.otfs import OTFSController
from .coordinator import ScaleCoordinator
from .planner import Subscale

__all__ = ["DRRSConfig", "DRRSController", "CoupledSubscaleController",
           "make_variant"]


@dataclass
class DRRSConfig:
    """Per-mechanism toggles and tunables (defaults = the paper's)."""

    #: Decoupled trigger/confirm signals with re-routing.  Turning this off
    #: is not supported inside DRRSController — use make_variant() for the
    #: coupled-signal ablations instead.
    decouple_reroute: bool = True
    #: Record Scheduling (inter-channel switching; see ``intra_channel``).
    record_scheduling: bool = True
    #: Intra-channel bypassing (only effective with record_scheduling).
    intra_channel: bool = True
    #: Subscale Division; when False the scale runs as one undivided
    #: subscale per migration path.
    subscale_division: bool = True
    #: Target number of subscales for the lexicographic division (C1).
    num_subscales: int = 16
    #: Per-node concurrent-subscale threshold (§IV-A).
    max_concurrent_per_node: int = 2
    #: Subscale scheduling strategy: "greedy" (paper default: fewest held
    #: keys first) or "fifo" (lexicographic order).
    subscale_strategy: str = "greedy"
    #: Bounded pre-serialization buffer for Record Scheduling (items).
    schedule_buffer: int = 200
    #: Re-route Manager flush strategy (B4).
    reroute_flush_capacity: int = 16
    reroute_flush_timeout: float = 0.002


class DRRSController(ScalingController):
    """DRRS on-the-fly rescaling (Decoupling/Re-routing + Scheduling +
    Subscale Division)."""

    name = "drrs"

    def __init__(self, job: StreamJob, config: Optional[DRRSConfig] = None,
                 control_latency: float = 0.002):
        super().__init__(job, control_latency=control_latency)
        self.config = config or DRRSConfig()
        if not self.config.decouple_reroute:
            raise ValueError(
                "DRRSController requires decouple_reroute; use "
                "make_variant() for coupled-signal ablations")
        self._op_name: Optional[str] = None
        self._plan = None
        self._executors: Dict[int, object] = {}
        self._completion_signal = None
        self._wave_spans: Dict[int, object] = {}
        self.cancelled = False

    # -- concurrent executions (§IV-B) ----------------------------------------------

    def request_rescale(self, op_name: str, new_parallelism: int):
        """Start (or supersede) a rescale of ``op_name``.

        If a scaling operation is already in flight for this controller,
        it is terminated (§IV-B case 1): no further subscales launch, the
        ones already running complete, the partial result is committed,
        and the new request then plans from the partially migrated state —
        avoiding redundant data migrations.
        """
        if not self.active:
            return super().request_rescale(op_name, new_parallelism)
        previous_done = self._current_done
        self.cancel()
        done = self.sim.event()

        def chain():
            yield previous_done
            inner = super(DRRSController, self).request_rescale(
                op_name, new_parallelism)
            result = yield inner
            done.succeed(result)

        self.sim.spawn(chain(), name=f"supersede:{op_name}")
        return done

    def cancel(self) -> None:
        """Terminate the in-flight scaling operation after the subscales
        already launched have completed."""
        if self.active:
            self.cancelled = True
            if self._completion_signal is not None:
                self._completion_signal.fire()

    # -- ScalingController hooks ---------------------------------------------------

    def _execute(self, op_name, plan, scale_id):
        self.cancelled = False
        self._op_name = op_name
        self._plan = plan
        coordinator = ScaleCoordinator(self)
        yield from coordinator.execute(op_name, plan, scale_id)

    def scaling_instances(self):
        return self.job.instances(self._op_name)

    # -- migration (driven by trigger barriers via the executors) ---------------------

    def start_subscale_migration(self, subscale: Subscale) -> None:
        self.sim.spawn(self._migrate_subscale(subscale),
                       name=f"drrs-subscale-{subscale.subscale_id}")

    def _migrate_subscale(self, subscale: Subscale):
        instances = self.scaling_instances()
        src = instances[subscale.src_index]
        dst = instances[subscale.dst_index]
        wave_span = self._wave_spans.get(subscale.subscale_id)
        for kg in subscale.key_groups:
            if wave_span is not None:
                group = src.state.group(kg)
                if group is not None:
                    wave_span.attrs["bytes_moved"] = (
                        wave_span.attrs.get("bytes_moved", 0.0)
                        + group.size_bytes)
            yield from self._transfer_group(
                src, dst, kg, arrival_status=StateStatus.INACTIVE)
            group = dst.state.group(kg)
            if subscale.aligned and group.status is StateStatus.INACTIVE:
                group.status = StateStatus.LOCAL
            subscale.migrated_groups.add(kg)
            dst.wake.fire()
            self.on_subscale_progress(subscale)

    def on_subscale_progress(self, subscale: Subscale) -> None:
        if subscale.done and subscale.completed_at is None:
            subscale.completed_at = self.sim.now
            wave_span = self._wave_spans.pop(subscale.subscale_id, None)
            if wave_span is not None and not wave_span.closed:
                self.job.telemetry.tracer.end(
                    wave_span, migrated=len(subscale.migrated_groups))
            if self._completion_signal is not None:
                self._completion_signal.fire()


class CoupledSubscaleController(OTFSController):
    """Subscale Division *without* decoupled signals (Fig. 14 "Subscale").

    The move set is divided as DRRS would, but each subscale synchronizes
    with a conventional coupled barrier.  All subscale barriers are injected
    back-to-back, so their alignments interfere (Fig. 7a): a blocked channel
    from subscale *i*'s alignment delays subscale *i+1*'s barrier — the
    source of the large fluctuations the paper reports for this variant.
    """

    name = "subscale_only"

    def __init__(self, job, num_subscales: int = 16,
                 scheduling: bool = False,
                 control_latency: float = 0.002):
        super().__init__(job, migration="fluid", injection="predecessor",
                         scheduling=scheduling,
                         control_latency=control_latency)
        self.num_subscales = num_subscales

    def _execute(self, op_name, plan, scale_id):
        import math

        self._plan = plan
        self._op_name = op_name
        self._route_set = self._upstream_closure(op_name) | {op_name}
        self.job.signal_router = self._on_signal

        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        scaling_instances = (instances[:plan.old_parallelism]
                             + new_instances)
        self._attach_suspension_probes(scaling_instances)
        saved = self._install_handlers(scaling_instances,
                                       scheduling=self.scheduling)

        groups = plan.migrating_groups
        chunk = max(1, math.ceil(len(groups) / self.num_subscales))
        batches = [groups[i:i + chunk]
                   for i in range(0, len(groups), chunk)]

        self._remaining = set(groups)
        self._complete = self.sim.event()
        for phase, batch in enumerate(batches):
            routing = {}
            for kg in batch:
                move = plan.move_for(kg)
                routing[kg] = move.dst_index
                instances[move.src_index].state.require_group(
                    kg).status = StateStatus.PENDING_OUT
                instances[move.dst_index].state.register_group(
                    kg, StateStatus.INCOMING)
            self._aligned_old = set()
            # Back-to-back injection: no waiting between subscales.
            yield from self._inject_phase(op_name, plan, scale_id,
                                          phase=phase, routing=routing)
        if self._remaining:
            yield self._complete
        self._restore_handlers(saved)
        self._detach_suspension_probes(scaling_instances)
        self._finalize_assignment(op_name, plan)


def make_variant(job: StreamJob, variant: str = "drrs",
                 num_subscales: int = 16,
                 control_latency: float = 0.002) -> ScalingController:
    """The four systems of the design-rationale isolation test (Fig. 14)."""
    if variant == "drrs":
        return DRRSController(job, DRRSConfig(num_subscales=num_subscales),
                              control_latency=control_latency)
    if variant == "dr":
        return DRRSController(
            job,
            DRRSConfig(record_scheduling=False, intra_channel=False,
                       subscale_division=False),
            control_latency=control_latency)
    if variant == "schedule":
        return OTFSController(job, migration="fluid",
                              injection="predecessor", scheduling=True,
                              control_latency=control_latency)
    if variant == "subscale":
        return CoupledSubscaleController(job, num_subscales=num_subscales,
                                         control_latency=control_latency)
    raise ValueError(f"unknown DRRS variant: {variant!r}")
