"""DRRS: the paper's on-the-fly scaling method, and its ablation variants.

:class:`DRRSController` wires the three mechanisms together:

* Decoupling and Re-routing (§III-A) — decoupled trigger/confirm barriers
  with predecessor injection and implicit alignment at the receiver;
* Record Scheduling (§III-B) — inter-/intra-channel execution-order
  adjustments within a bounded buffer;
* Subscale Division (§III-C) — independent subscales scheduled greedily
  under a per-node concurrency threshold.

:func:`make_variant` builds the four systems of the Fig. 14 isolation test:
``"drrs"`` (all three), ``"dr"`` (Decoupling and Re-routing only),
``"schedule"`` (Record Scheduling on a conventional coupled-signal scaling),
and ``"subscale"`` (Subscale Division driven by coupled signals, whose
mutual synchronization interference the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.runtime import StreamJob
from ..engine.state import StateStatus
from ..scaling.base import ScalingController
from ..scaling.otfs import OTFSController
from .coordinator import ScaleCoordinator
from .planner import Subscale
from .policy import RetryPolicy

__all__ = ["DRRSConfig", "DRRSController", "CoupledSubscaleController",
           "make_variant"]


@dataclass
class DRRSConfig:
    """Per-mechanism toggles and tunables (defaults = the paper's)."""

    #: Decoupled trigger/confirm signals with re-routing.  Turning this off
    #: is not supported inside DRRSController — use make_variant() for the
    #: coupled-signal ablations instead.
    decouple_reroute: bool = True
    #: Record Scheduling (inter-channel switching; see ``intra_channel``).
    record_scheduling: bool = True
    #: Intra-channel bypassing (only effective with record_scheduling).
    intra_channel: bool = True
    #: Subscale Division; when False the scale runs as one undivided
    #: subscale per migration path.
    subscale_division: bool = True
    #: Target number of subscales for the lexicographic division (C1).
    num_subscales: int = 16
    #: Per-node concurrent-subscale threshold (§IV-A).
    max_concurrent_per_node: int = 2
    #: Subscale scheduling strategy: "greedy" (paper default: fewest held
    #: keys first) or "fifo" (lexicographic order).
    subscale_strategy: str = "greedy"
    #: Bounded pre-serialization buffer for Record Scheduling (items).
    schedule_buffer: int = 200
    #: Re-route Manager flush strategy (B4).
    reroute_flush_capacity: int = 16
    reroute_flush_timeout: float = 0.002


class DRRSController(ScalingController):
    """DRRS on-the-fly rescaling (Decoupling/Re-routing + Scheduling +
    Subscale Division)."""

    name = "drrs"

    def __init__(self, job: StreamJob, config: Optional[DRRSConfig] = None,
                 control_latency: float = 0.002,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(job, control_latency=control_latency)
        self.config = config or DRRSConfig()
        if not self.config.decouple_reroute:
            raise ValueError(
                "DRRSController requires decouple_reroute; use "
                "make_variant() for coupled-signal ablations")
        self._op_name: Optional[str] = None
        self._plan = None
        self._executors: Dict[int, object] = {}
        self._completion_signal = None
        self._wave_spans: Dict[int, object] = {}
        self.cancelled = False
        # -- crash tolerance (abort_and_rollback / retry) ---------------------
        self.retry_policy = retry_policy or RetryPolicy()
        #: Bumped by every abort; in-band injection closures capture the
        #: epoch at command time and become no-ops once it moves on.
        self._abort_epoch = 0
        #: subscale_id -> migration Process (interruptible on abort).
        self._migration_procs: Dict[int, object] = {}
        #: subscale_id -> Subscale for launched-but-incomplete subscales.
        self._inflight_subscales: Dict[int, Subscale] = {}
        #: id(instance) -> channel-less auxiliary InputChannel that aborted
        #: migrations re-deliver stranded records through.
        self._rollback_queues: Dict[int, object] = {}
        self._attempts = 0
        self._in_retry = False
        self._target_parallelism: Optional[int] = None
        self._target_op: Optional[str] = None
        # Failure recovery sweeps re-route manager buffers: records parked
        # there live outside any channel, so a teardown flush would
        # silently drop them (pre-checkpoint ones would be lost for good).
        job.aux_sweep_hooks.append(self._sweep_reroute_buffers)

    def _sweep_reroute_buffers(self):
        """Drain every re-route manager buffer for recovery's sweep.

        Returns ``(op name, element)`` pairs and *empties* the buffers —
        post-restore, pre-cut records are re-injected and post-cut ones
        replayed, so letting the drain process flush the stale copies into
        the fresh epoch would double-deliver them.
        """
        swept = []
        for executor in self._executors.values():
            op = executor.instance.spec.name
            for manager in executor.reroute_managers.values():
                while manager._buffer:
                    element = manager._buffer.popleft()
                    if element.is_record:
                        swept.append((op, element))
        return swept

    # -- concurrent executions (§IV-B) ----------------------------------------------

    def request_rescale(self, op_name: str, new_parallelism: int):
        """Start (or supersede) a rescale of ``op_name``.

        If a scaling operation is already in flight for this controller,
        it is terminated (§IV-B case 1): no further subscales launch, the
        ones already running complete, the partial result is committed,
        and the new request then plans from the partially migrated state —
        avoiding redundant data migrations.
        """
        self._target_parallelism = new_parallelism
        self._target_op = op_name
        if not self._in_retry:
            self._attempts = 0
        if not self.active:
            return super().request_rescale(op_name, new_parallelism)
        previous_done = self._current_done
        self.cancel()
        done = self.sim.event()

        def chain():
            yield previous_done
            inner = super(DRRSController, self).request_rescale(
                op_name, new_parallelism)
            result = yield inner
            done.succeed(result)

        self.sim.spawn(chain(), name=f"supersede:{op_name}")
        return done

    def cancel(self) -> None:
        """Terminate the in-flight scaling operation after the subscales
        already launched have completed."""
        if self.active:
            self.cancelled = True
            if self._completion_signal is not None:
                self._completion_signal.fire()

    # -- ScalingController hooks ---------------------------------------------------

    def _execute(self, op_name, plan, scale_id):
        self.cancelled = False
        self._op_name = op_name
        self._plan = plan
        coordinator = ScaleCoordinator(self)
        yield from coordinator.execute(op_name, plan, scale_id)

    def scaling_instances(self):
        return self.job.instances(self._op_name)

    # -- migration (driven by trigger barriers via the executors) ---------------------

    def start_subscale_migration(self, subscale: Subscale) -> None:
        self._migration_procs[subscale.subscale_id] = self.sim.spawn(
            self._migrate_subscale(subscale),
            name=f"drrs-subscale-{subscale.subscale_id}")

    def _migrate_subscale(self, subscale: Subscale):
        instances = self.scaling_instances()
        src = instances[subscale.src_index]
        dst = instances[subscale.dst_index]
        wave_span = self._wave_spans.get(subscale.subscale_id)
        for kg in subscale.key_groups:
            if wave_span is not None:
                group = src.state.group(kg)
                if group is not None:
                    wave_span.attrs["bytes_moved"] = (
                        wave_span.attrs.get("bytes_moved", 0.0)
                        + group.size_bytes)
            yield from self._transfer_group(
                src, dst, kg, arrival_status=StateStatus.INACTIVE)
            group = dst.state.group(kg)
            if subscale.aligned and group.status is StateStatus.INACTIVE:
                group.status = StateStatus.LOCAL
            subscale.migrated_groups.add(kg)
            dst.wake.fire()
            self.on_subscale_progress(subscale)

    def on_subscale_progress(self, subscale: Subscale) -> None:
        if subscale.done and subscale.completed_at is None:
            subscale.completed_at = self.sim.now
            self._inflight_subscales.pop(subscale.subscale_id, None)
            self._migration_procs.pop(subscale.subscale_id, None)
            wave_span = self._wave_spans.pop(subscale.subscale_id, None)
            if wave_span is not None and not wave_span.closed:
                self.job.telemetry.tracer.end(
                    wave_span, migrated=len(subscale.migrated_groups))
            if self._completion_signal is not None:
                self._completion_signal.fire()

    # -- crash-tolerant abort, rollback and retry (§IV-C coexistence) -----------------

    def abort_and_rollback(self, reason: str = "fault", retry: bool = True):
        """Cancel the in-flight scale, undo incomplete subscales, retry.

        Runs synchronously (no simulated time passes): in-flight state
        transfers are interrupted and their bytes land back at the source,
        routing and the authoritative assignment revert for every unfinished
        subscale, and records already sent towards a rolled-back destination
        are re-delivered to the restored source.  Completed subscales stay
        committed — the retry plans from the partially-migrated reality,
        mirroring the supersede path (§IV-B).

        With ``retry=True`` the original ``request_rescale`` done event is
        kept pending and settled by the retried attempt; once
        ``retry_policy.max_attempts`` attempts have aborted, it fails.
        Returns that done event (or None if no scale was active).
        """
        if not self.active:
            return None
        self._abort_epoch += 1
        self.cancelled = True
        job = self.job
        telemetry = job.telemetry
        span = None
        op_name = self._op_name or self._target_op
        if telemetry is not None:
            span = telemetry.tracer.begin(
                "scale.rollback", category="recovery", track="scale",
                op=op_name, reason=str(reason))
        instances = self.job.instances(op_name)
        redirected: Dict[int, tuple] = {}
        rolled = 0
        for sid, subscale in list(self._inflight_subscales.items()):
            proc = self._migration_procs.pop(sid, None)
            if subscale.done:
                self._inflight_subscales.pop(sid, None)
                continue
            # Pull in-flight transfers out of the registry *before*
            # interrupting their process: interrupt() detaches the wait
            # synchronously, so the transfer generator can never resume
            # past its registry check and install state at the target.
            flights = []
            for kg in subscale.key_groups:
                flight = job.inflight_state.pop((self._op_name, kg), None)
                if flight is not None:
                    flights.append(flight)
            if proc is not None and proc.is_alive:
                proc.interrupt(reason)
            self._rollback_subscale(subscale, flights, instances, redirected)
            self._inflight_subscales.pop(sid, None)
            rolled += 1
            wave_span = self._wave_spans.pop(sid, None)
            if wave_span is not None and not wave_span.closed:
                telemetry.tracer.end(wave_span, rolled_back=True)
        self._install_redirectors(redirected)
        # Defense-in-depth for the bulk revert above: every sender-side
        # key-group -> channel cache targeting the operator is dropped, so
        # a cache entry that survived the per-entry set_routing writes (or
        # was populated mid-rollback by an emitting batch) cannot steer
        # records at the rolled-back destination.
        job.invalidate_routing_caches(op_name)
        if span is not None:
            telemetry.tracer.end(span, subscales_rolled_back=rolled,
                                 retry=retry)
        done = self._current_done
        if retry:
            # Keep the caller's done pending across the abort; the retry
            # (or its exhaustion) settles it.  Must be set before the scale
            # process is interrupted, so _run_scale's finally sees it.
            self._retry_pending = True
            attempt = self._attempts + 1
            if attempt > self.retry_policy.max_attempts:
                if done is not None and not done.triggered:
                    done.fail(RuntimeError(
                        f"rescale of {op_name} failed after "
                        f"{self._attempts} retries: {reason}"))
            else:
                self.sim.spawn(
                    self._retry(op_name, self._target_parallelism,
                                done, attempt),
                    name=f"scale-retry:{op_name}:{attempt}")
        if self._scale_proc is not None and self._scale_proc.is_alive:
            self._scale_proc.interrupt(reason)
        return done

    def _rollback_subscale(self, subscale: Subscale, flights, instances,
                           redirected) -> None:
        """Undo one launched-but-incomplete subscale, synchronously."""
        job = self.job
        op_name = self._op_name
        src = instances[subscale.src_index]
        dst = instances[subscale.dst_index]
        key_groups = set(subscale.key_groups)
        restored = 0
        # 1. State.  Bytes that were mid-transfer land back at the source;
        # bytes that already reached the destination are pulled back (their
        # entries may reflect records processed there — keeping them
        # preserves exactly-once); expectation stubs are dropped.
        for flight in flights:
            src.state.install_group(
                flight.key_group, flight.entries, flight.size_bytes,
                status=StateStatus.LOCAL,
                sub_groups_present=flight.sub_groups_present)
            restored += 1
        for kg in subscale.key_groups:
            group = dst.state.group(kg)
            if group is None:
                continue
            if group.status is StateStatus.INCOMING:
                dst.state.drop_group(kg)
            elif group.status in (StateStatus.INACTIVE, StateStatus.LOCAL):
                dst.state.drop_group(kg)
                src.state.install_group(
                    kg, group.entries, group.size_bytes,
                    status=StateStatus.LOCAL,
                    sub_groups_present=group.sub_groups_present)
                restored += 1
        for kg in subscale.key_groups:
            group = src.state.group(kg)
            if group is not None and group.status is StateStatus.PENDING_OUT:
                group.status = StateStatus.LOCAL
        # 2. Routing and the authoritative assignment revert to the source.
        assignment = job.assignments[op_name]
        for kg in subscale.key_groups:
            assignment.apply_move(kg, subscale.src_index)
        for _sender, edge in job.senders_to(op_name):
            for kg in subscale.key_groups:
                edge.set_routing(kg, subscale.src_index)
        # 3. Both executors forget the subscale (a late trigger barrier for
        # it then falls through harmlessly).
        for instance in (src, dst):
            executor = self._executors.get(id(instance))
            if executor is not None:
                executor.rollback_subscale(subscale)
        # 4. Stranded records: everything queued at the destination or
        # still in a predecessor's output cache for these key-groups is
        # re-delivered to the source (oldest first: input queues, then
        # output caches).  Records on the wire are caught by the temporary
        # redirector installed afterwards.
        rollback_queue = self._rollback_queue_for(src)
        stranded = []
        for input_channel in dst.input_channels:
            matches = [e for e in input_channel.queue
                       if getattr(e, "key_group", None) in key_groups]
            for element in matches:
                input_channel.remove(element)
                stranded.append(element)
        for _sender, edge in job.senders_to(op_name):
            channel = edge.channels[subscale.dst_index]
            stranded.extend(channel.extract_outbox(
                lambda e: getattr(e, "key_group", None) in key_groups))
        if stranded:
            rollback_queue.queue.extend(stranded)
            src.wake.fire()
        dst_entry = redirected.setdefault(id(dst), (dst, {}))
        for kg in key_groups:
            dst_entry[1][kg] = src
        self.metrics.note_remigration(restored)
        if job.telemetry is not None:
            job.telemetry.registry.counter(
                "drrs.subscales_rolled_back", operator=op_name).inc()
            if stranded:
                job.telemetry.registry.counter(
                    "drrs.records_rolled_back", operator=op_name).inc(
                        len(stranded))

    def _rollback_queue_for(self, instance):
        """A channel-less auxiliary input lane for re-delivered records."""
        queue = self._rollback_queues.get(id(instance))
        if queue is None or queue not in instance.input_channels:
            queue = instance.add_input_channel(
                name=f"rollback->{instance.name}")
            queue.is_auxiliary = True
            queue.watermark = float("inf")
            self._rollback_queues[id(instance)] = queue
        return queue

    def _install_redirectors(self, redirected) -> None:
        """Close the wire-race window after a rollback.

        Records serialized towards a rolled-back destination before the
        routing reverted deliver within one link latency (plus at most one
        re-route flush).  A temporary element interceptor at the
        destination forwards them to the restored source's rollback lane,
        then uninstalls itself after a grace period covering that window.
        """
        for dst, kg_map in redirected.values():
            latencies = [ch.channel.link.latency
                         for ch in dst.input_channels
                         if ch.channel is not None]
            grace = (2 * max(latencies, default=0.001)
                     + self.config.reroute_flush_timeout
                     + self.control_latency)
            owners = dict(kg_map)

            def intercept(channel, element, dst=dst, owners=owners):
                src = owners.get(getattr(element, "key_group", None))
                if src is None:
                    return False
                self._rollback_queue_for(src).queue.append(element)
                src.wake.fire()
                return True

            dst.element_interceptor = intercept

            def clear(dst=dst, intercept=intercept):
                if dst.element_interceptor is intercept:
                    dst.element_interceptor = None
                    dst.wake.fire()

            self.sim.call_in(grace, clear)

    def _retry(self, op_name, new_parallelism, done, attempt):
        """Re-request an aborted rescale after backing off (and after any
        concurrent failure recovery has finished restoring the job)."""
        policy = self.retry_policy
        if self.job.telemetry is not None:
            self.job.telemetry.tracer.instant(
                "scale.retry", category="recovery", track="scale",
                op=op_name, attempt=attempt,
                backoff=policy.backoff(attempt))
        yield self.sim.timeout(policy.backoff(attempt))
        barrier = self.job.recovery_barrier
        if barrier is not None and not barrier.triggered:
            yield barrier
        if done is not None and done.triggered:
            return  # settled elsewhere (exhaustion, supersede)
        self._attempts = attempt
        self._in_retry = True
        try:
            inner = self.request_rescale(op_name, new_parallelism)
        finally:
            self._in_retry = False
        try:
            result = yield inner
        except Exception as error:
            if done is not None and not done.triggered:
                done.fail(error)
            return
        if done is not None and not done.triggered:
            done.succeed(result)


class CoupledSubscaleController(OTFSController):
    """Subscale Division *without* decoupled signals (Fig. 14 "Subscale").

    The move set is divided as DRRS would, but each subscale synchronizes
    with a conventional coupled barrier.  All subscale barriers are injected
    back-to-back, so their alignments interfere (Fig. 7a): a blocked channel
    from subscale *i*'s alignment delays subscale *i+1*'s barrier — the
    source of the large fluctuations the paper reports for this variant.
    """

    name = "subscale_only"

    def __init__(self, job, num_subscales: int = 16,
                 scheduling: bool = False,
                 control_latency: float = 0.002):
        super().__init__(job, migration="fluid", injection="predecessor",
                         scheduling=scheduling,
                         control_latency=control_latency)
        self.num_subscales = num_subscales

    def _execute(self, op_name, plan, scale_id):
        import math

        self._plan = plan
        self._op_name = op_name
        self._route_set = self._upstream_closure(op_name) | {op_name}
        self.job.signal_router = self._on_signal

        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        scaling_instances = (instances[:plan.old_parallelism]
                             + new_instances)
        self._attach_suspension_probes(scaling_instances)
        saved = self._install_handlers(scaling_instances,
                                       scheduling=self.scheduling)

        groups = plan.migrating_groups
        chunk = max(1, math.ceil(len(groups) / self.num_subscales))
        batches = [groups[i:i + chunk]
                   for i in range(0, len(groups), chunk)]

        self._remaining = set(groups)
        self._complete = self.sim.event()
        for phase, batch in enumerate(batches):
            routing = {}
            for kg in batch:
                move = plan.move_for(kg)
                routing[kg] = move.dst_index
                instances[move.src_index].state.require_group(
                    kg).status = StateStatus.PENDING_OUT
                instances[move.dst_index].state.register_group(
                    kg, StateStatus.INCOMING)
            self._aligned_old = set()
            # Back-to-back injection: no waiting between subscales.
            yield from self._inject_phase(op_name, plan, scale_id,
                                          phase=phase, routing=routing)
        if self._remaining:
            yield self._complete
        self._restore_handlers(saved)
        self._detach_suspension_probes(scaling_instances)
        self._finalize_assignment(op_name, plan)


def make_variant(job: StreamJob, variant: str = "drrs",
                 num_subscales: int = 16,
                 control_latency: float = 0.002) -> ScalingController:
    """The four systems of the design-rationale isolation test (Fig. 14)."""
    if variant == "drrs":
        return DRRSController(job, DRRSConfig(num_subscales=num_subscales),
                              control_latency=control_latency)
    if variant == "dr":
        return DRRSController(
            job,
            DRRSConfig(record_scheduling=False, intra_channel=False,
                       subscale_division=False),
            control_latency=control_latency)
    if variant == "schedule":
        return OTFSController(job, migration="fluid",
                              injection="predecessor", scheduling=True,
                              control_latency=control_latency)
    if variant == "subscale":
        return CoupledSubscaleController(job, num_subscales=num_subscales,
                                         control_latency=control_latency)
    raise ValueError(f"unknown DRRS variant: {variant!r}")
