"""Re-route Manager (B4) and epoch bookkeeping (§III-A, §IV-A).

The Re-route Manager runs at a migration *source*: records whose state has
already migrated out, and re-routed confirm barriers, are forwarded to the
migration target over a dedicated direct channel.  Relative order between
records and barriers is preserved — the confirm barrier flushes everything
buffered before it ("immediate re-route of records in network caches"),
giving the target the invariant it needs for implicit alignment:

    every rerouted E_p record of a predecessor precedes that predecessor's
    rerouted confirm barrier on the re-route channel.

Flushing is configurable (capacity- or timeout-based, as in the paper's B4);
the buffer also absorbs bursts so the source never blocks in its input
handler.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..engine.channels import Channel
from ..engine.records import StreamElement
from ..simulation.kernel import Simulator
from ..simulation.primitives import Signal
from .barriers import ConfirmBarrier

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.operators import OperatorInstance

__all__ = ["ReRouteManager"]


class ReRouteManager:
    """Order-preserving forwarder from one migration source to one target."""

    def __init__(self, sim: Simulator, channel: Channel,
                 flush_capacity: int = 16,
                 flush_timeout: float = 0.002,
                 telemetry=None):
        if flush_capacity < 1:
            raise ValueError("flush_capacity must be >= 1")
        self.sim = sim
        self.channel = channel
        self.telemetry = telemetry
        self.flush_capacity = flush_capacity
        self.flush_timeout = flush_timeout
        self._buffer: Deque[StreamElement] = deque()
        self._oldest_at: Optional[float] = None
        self._wake = Signal(sim)
        self._closed = False
        self.records_forwarded = 0
        self.barriers_forwarded = 0
        sim.spawn(self._drain(), name=f"reroute:{channel.name}")

    # -- producer side (called synchronously from the input handler) -------------

    def forward_record(self, element: StreamElement) -> None:
        """Queue a record whose state has migrated out."""
        if self._oldest_at is None:
            self._oldest_at = self.sim.now
        self._buffer.append(element)
        if len(self._buffer) >= self.flush_capacity:
            self._wake.fire()

    def forward_barrier(self, barrier: ConfirmBarrier) -> None:
        """Re-route a confirm barrier; flushes all buffered records first."""
        rerouted = ConfirmBarrier(
            scale_id=barrier.scale_id,
            subscale_id=barrier.subscale_id,
            predecessor_id=barrier.predecessor_id,
            key_groups=barrier.key_groups,
            rerouted=True)
        self._buffer.append(rerouted)
        self.barriers_forwarded += 1
        self._wake.fire()

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def close(self) -> None:
        self._closed = True
        self._wake.fire()

    # -- drain process -------------------------------------------------------------

    def _should_flush(self) -> bool:
        if not self._buffer:
            return False
        if self._closed:
            return True  # shutting down: everything buffered must leave
        if any(isinstance(e, ConfirmBarrier) for e in self._buffer):
            return True
        if len(self._buffer) >= self.flush_capacity:
            return True
        if (self._oldest_at is not None
                and self.sim.now - self._oldest_at
                >= self.flush_timeout - 1e-9):
            return True
        return False

    def _drain(self):
        while True:
            if self._closed and not self._buffer:
                return
            if not self._should_flush():
                if self._buffer:
                    # Wait out the remaining timeout (or a wake-up).  The
                    # floor keeps the wait above float-time resolution so a
                    # sub-epsilon remainder can never spin the loop.
                    remaining = self.flush_timeout - (
                        self.sim.now - (self._oldest_at or self.sim.now))
                    yield self.sim.any_of([
                        self.sim.timeout(max(remaining, 1e-6)),
                        self._wake.wait()])
                else:
                    yield self._wake.wait()
                continue
            flush_span = None
            if self.telemetry is not None:
                flush_span = self.telemetry.tracer.begin(
                    "reroute.flush", category="reroute",
                    track=f"reroute:{self.channel.name}")
            records = barriers = 0
            while self._buffer:
                element = self._buffer.popleft()
                if isinstance(element, ConfirmBarrier):
                    barriers += 1
                    yield self.channel.send(element)
                else:
                    self.records_forwarded += 1
                    records += 1
                    yield self.channel.send(element)
            self._oldest_at = None
            if flush_span is not None:
                self.telemetry.tracer.end(flush_span, records=records,
                                          barriers=barriers)
