"""Record Scheduling (§III-B): pure scanning policies.

Two engine-level, semantics-preserving adjustments of record-execution
order, factored out of the input handler so they can be unit- and
property-tested in isolation:

* **Inter-channel scheduling** — when the head of the active channel is
  unprocessable, switch to any channel whose head *is* processable.  Legal
  because cross-channel arrival order is already non-deterministic.
* **Intra-channel scheduling** — when every head is unprocessable, bypass
  unprocessable records *within* a channel, up to a bounded
  pre-serialization buffer, never crossing a time-semantics signal
  (watermark, checkpoint barrier, confirm barrier, coupled scaling barrier).
  Legal because records of the same key share processability, so a bypass
  always reorders records of *different* keys only.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..engine.channels import InputChannel
from ..engine.records import StreamElement

__all__ = ["scan_inter_channel", "scan_intra_channel"]

Ready = Callable[[StreamElement], bool]


def scan_inter_channel(channels: Sequence[InputChannel], ready: Ready,
                       start: int = 0
                       ) -> Tuple[Optional[InputChannel], bool]:
    """Find a channel whose head is processable.

    Returns ``(channel, saw_unprocessable)``: the first channel (round-robin
    from ``start``) whose head satisfies ``ready``, or ``None``; and whether
    any unprocessable-but-present data was seen (distinguishes suspension
    from idleness).
    """
    n = len(channels)
    saw_unprocessable = False
    for offset in range(n):
        channel = channels[(start + offset) % n]
        if channel.blocked:
            if channel.queue:
                saw_unprocessable = True
            continue
        head = channel.peek()
        if head is None:
            continue
        if ready(head):
            return channel, saw_unprocessable
        saw_unprocessable = True
    return None, saw_unprocessable


def scan_intra_channel(channels: Sequence[InputChannel], ready: Ready,
                       buffer_size: int, start: int = 0
                       ) -> Optional[Tuple[InputChannel, StreamElement]]:
    """Find a processable record behind unprocessable ones.

    Scans at most ``buffer_size`` elements in total (the bounded
    pre-serialization buffer, 200 in the paper's implementation) and stops a
    channel's scan at the first time-semantics signal — bypassing across a
    watermark, checkpoint barrier or scaling barrier would break result
    consistency (§III-B).

    The caller must consume the returned element with
    :meth:`InputChannel.remove`, preserving the rest of the channel's order.
    """
    n = len(channels)
    scanned = 0
    for offset in range(n):
        channel = channels[(start + offset) % n]
        if channel.blocked:
            continue
        for element in channel.queue:
            scanned += 1
            if scanned > buffer_size:
                return None
            if element.is_time_signal:
                break  # never schedule across a time signal
            if ready(element):
                return channel, element
    return None
