"""DRRS decoupled scaling signals (§III-A).

The conventional coupled barrier is split into two signals:

* :class:`TriggerBarrier` — a priority message sent on the channel's control
  lane, bypassing all in-flight data in both output and input caches, so
  state migration starts after a single link latency.
* :class:`ConfirmBarrier` — the routing-confirmation signal.  It is inserted
  at the *front* of the predecessor's output cache (priority in the output
  cache only; records it bypasses are redirected to the new instance's
  channel), then travels in order, and reverts to a non-priority in-band
  element at the scaling operator, where it is re-routed to the migration
  target to drive *implicit alignment*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..engine.records import ControlSignal

__all__ = ["TriggerBarrier", "ConfirmBarrier"]


@dataclass
class TriggerBarrier(ControlSignal):
    """Priority migration trigger for one subscale."""

    scale_id: int = 0
    subscale_id: int = 0
    key_groups: Tuple[int, ...] = ()
    src_index: int = 0
    dst_index: int = 0
    size_bytes: float = 16.0


@dataclass
class ConfirmBarrier(ControlSignal):
    """Ordered routing-confirmation signal for one subscale.

    ``predecessor_id`` identifies the emitting predecessor instance;
    implicit alignment at the migration target completes once the re-routed
    confirm barriers of *all* predecessors have been consumed (globally, or
    per channel under inter-channel scheduling's "fluid confirmation").
    ``rerouted`` marks the copy travelling on the re-route channel.
    """

    scale_id: int = 0
    subscale_id: int = 0
    predecessor_id: int = 0
    key_groups: Tuple[int, ...] = ()
    rerouted: bool = False
    size_bytes: float = 16.0

    @property
    def is_time_signal(self) -> bool:
        # Intra-channel scheduling must never carry a record across a
        # confirm barrier: it is the epoch boundary.
        return True
