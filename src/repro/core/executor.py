"""Scale Executor (B): per-instance scaling machinery (§IV-A).

One :class:`ScaleExecutor` runs on every scaling-operator instance and hosts
the paper's worker-side modules:

* **Scale Input Handler (B1)** — :class:`DRRSInputHandler` replaces the
  native input handler and classifies every incoming element: barriers go to
  the Barrier Handler, processable records to the native path, temporarily
  unprocessable records to the Suspend Manager, migrated-out records to the
  Re-route Manager.
* **Barrier Handler (B2)** — trigger barriers start the subscale's state
  migration (first one wins, duplicates ignored); confirm barriers are
  re-routed to the migration target.
* **Suspend Manager (B3)** — suspension happens only when *all* swappable
  records are unprocessable (delegated to the Record Scheduling scans).
* **Re-route Manager (B4)** — order-preserving forwarding of migrated-out
  records and confirm barriers (see :mod:`repro.core.rerouting`).

An instance may simultaneously be the *source* of some subscales and the
*destination* of others (uniform repartitioning moves key-groups between old
instances too); the executor tracks both directions.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, TYPE_CHECKING

from ..engine.channels import InputChannel
from ..engine.operators import InputHandler, OperatorInstance
from ..engine.records import LatencyMarker, Record, StreamElement
from ..engine.state import StateStatus
from .barriers import ConfirmBarrier, TriggerBarrier
from .planner import Subscale
from .rerouting import ReRouteManager
from .scheduling import scan_intra_channel

if TYPE_CHECKING:  # pragma: no cover
    from .drrs import DRRSController

__all__ = ["ScaleExecutor", "DRRSInputHandler", "READY", "INTERNAL", "BLOCKED"]

READY = "ready"
INTERNAL = "internal"
BLOCKED = "blocked"


class ScaleExecutor:
    """Worker-side scaling state for one scaling-operator instance."""

    def __init__(self, controller: "DRRSController",
                 instance: OperatorInstance):
        self.controller = controller
        self.instance = instance
        self.out_subscales: Dict[int, Subscale] = {}
        self.in_subscales: Dict[int, Subscale] = {}
        self.kg_out: Dict[int, Subscale] = {}
        self.kg_in: Dict[int, Subscale] = {}
        self.reroute_managers: Dict[int, ReRouteManager] = {}
        self._triggered: Set[int] = set()

    # -- coordinator notifications ------------------------------------------------

    def register_out(self, subscale: Subscale) -> None:
        """This instance is the migration source of ``subscale``."""
        self.out_subscales[subscale.subscale_id] = subscale
        for kg in subscale.key_groups:
            self.kg_out[kg] = subscale

    def expect_subscale(self, subscale: Subscale) -> None:
        """This instance is the migration target of ``subscale``."""
        self.in_subscales[subscale.subscale_id] = subscale
        for kg in subscale.key_groups:
            self.kg_in[kg] = subscale
            if self.instance.state.group(kg) is None:
                self.instance.state.register_group(kg, StateStatus.INCOMING)
        self.instance.wake.fire()

    def rollback_subscale(self, subscale: Subscale) -> None:
        """Forget an aborted subscale (both directions).

        Identity-guarded so that a retried scale's re-registered subscale
        carrying the same key-groups is never clobbered by a stale rollback.
        """
        sid = subscale.subscale_id
        if self.out_subscales.get(sid) is subscale:
            del self.out_subscales[sid]
        if self.in_subscales.get(sid) is subscale:
            del self.in_subscales[sid]
        self._triggered.discard(sid)
        for kg in subscale.key_groups:
            if self.kg_out.get(kg) is subscale:
                del self.kg_out[kg]
            if self.kg_in.get(kg) is subscale:
                del self.kg_in[kg]
        self.instance.wake.fire()

    def shutdown(self) -> None:
        for manager in self.reroute_managers.values():
            manager.close()

    # -- Barrier Handler (B2) -----------------------------------------------------

    def on_control(self, channel: Optional[InputChannel],
                   element: StreamElement) -> None:
        """Control-lane delivery: trigger barriers bypass all caches."""
        if isinstance(element, TriggerBarrier):
            self.on_trigger(element)

    def on_trigger(self, barrier: TriggerBarrier) -> None:
        if barrier.subscale_id in self._triggered:
            return  # duplicates from other predecessors are ignored
        self._triggered.add(barrier.subscale_id)
        subscale = self.out_subscales.get(barrier.subscale_id)
        if subscale is None:
            return
        for kg in subscale.key_groups:
            group = self.instance.state.group(kg)
            if group is not None and group.status is StateStatus.LOCAL:
                group.status = StateStatus.PENDING_OUT
        self.controller.start_subscale_migration(subscale)

    def on_confirm(self, barrier: ConfirmBarrier) -> None:
        """In-band confirm barrier at the source: re-route it (B4)."""
        subscale = self.out_subscales.get(barrier.subscale_id)
        if subscale is None:
            return
        self.reroute_manager_for(subscale).forward_barrier(barrier)

    def on_rerouted_confirm(self, barrier: ConfirmBarrier) -> None:
        """Re-routed confirm barrier consumed at the destination."""
        subscale = self.in_subscales.get(barrier.subscale_id)
        if subscale is None:
            return
        subscale.arrived_predecessors.add(barrier.predecessor_id)
        if subscale.aligned:
            self.activate_subscale(subscale)
        self.controller.on_subscale_progress(subscale)
        self.instance.wake.fire()

    def activate_subscale(self, subscale: Subscale) -> None:
        """Implicit alignment achieved: inactive states become active."""
        for kg in subscale.key_groups:
            group = self.instance.state.group(kg)
            if group is not None and group.status is StateStatus.INACTIVE:
                group.status = StateStatus.LOCAL

    # -- Re-route Manager (B4) ------------------------------------------------------

    def reroute_manager_for(self, subscale: Subscale) -> ReRouteManager:
        dst = self.controller.scaling_instances()[subscale.dst_index]
        key = id(dst)
        manager = self.reroute_managers.get(key)
        if manager is None:
            channel = self.controller.job.create_direct_channel(
                self.instance, dst, name_suffix="reroute")
            config = self.controller.config
            manager = ReRouteManager(
                self.instance.sim, channel,
                flush_capacity=config.reroute_flush_capacity,
                flush_timeout=config.reroute_flush_timeout,
                telemetry=self.controller.job.telemetry)
            self.reroute_managers[key] = manager
        return manager

    def reroute_record(self, element: StreamElement) -> None:
        subscale = self.kg_out[element.key_group]
        self.reroute_manager_for(subscale).forward_record(element)
        count = element.count if isinstance(element, Record) else 1
        self.controller.metrics.note_reroute(count)
        telemetry = self.controller.job.telemetry
        if telemetry is not None:
            telemetry.registry.counter(
                "drrs.records_rerouted",
                operator=self.instance.spec.name).inc(count)

    # -- element classification (the heart of B1) -------------------------------------

    def classify(self, channel: Optional[InputChannel],
                 element: StreamElement) -> str:
        """READY to process, INTERNAL to consume here, or BLOCKED."""
        if isinstance(element, ConfirmBarrier):
            return INTERNAL
        key_group = getattr(element, "key_group", None)
        if key_group is None:
            return READY  # watermarks, checkpoint barriers, EOS, ...
        out_sub = self.kg_out.get(key_group)
        if out_sub is not None:
            group = self.instance.state.group(key_group)
            if group is None or group.status is StateStatus.MIGRATED_OUT:
                return INTERNAL  # state left: re-route (Fig. 4c)
            return READY  # LOCAL or PENDING_OUT: still processable (Fig. 4b)
        in_sub = self.kg_in.get(key_group)
        if in_sub is not None:
            group = self.instance.state.group(key_group)
            if group is None or group.status is StateStatus.INCOMING:
                return BLOCKED  # bytes not here yet
            if group.status is StateStatus.LOCAL:
                return READY
            # INACTIVE: bytes arrived, implicit alignment pending.
            if self.controller.config.record_scheduling:
                # Fluid confirmation: this channel alone must be confirmed.
                sender = channel.channel.sender if (
                    channel is not None and channel.channel is not None) \
                    else None
                if sender is not None and (
                        id(sender) in in_sub.arrived_predecessors):
                    return READY
                return BLOCKED
            return BLOCKED  # global implicit alignment required
        return READY  # untouched key-group

    def rerouted_ready(self, element: StreamElement) -> bool:
        """Re-routed records need their state bytes, nothing more."""
        key_group = getattr(element, "key_group", None)
        if key_group is None:
            return True
        group = self.instance.state.group(key_group)
        return group is not None and group.status in (
            StateStatus.INACTIVE, StateStatus.LOCAL, StateStatus.PENDING_OUT)

    def consume_internal(self, channel: Optional[InputChannel],
                         element: StreamElement) -> None:
        if isinstance(element, ConfirmBarrier):
            self.on_confirm(element)
        else:
            self.reroute_record(element)


class DRRSInputHandler(InputHandler):
    """Scale Input Handler (B1): classification + Record Scheduling."""

    def __init__(self, instance: OperatorInstance, executor: ScaleExecutor,
                 inter_channel: bool, intra_channel: bool,
                 buffer_size: int = 200):
        super().__init__(instance)
        self.executor = executor
        self.inter_channel = inter_channel
        self.intra_channel = intra_channel
        self.buffer_size = buffer_size
        self._cursor = 0
        self._committed: Optional[InputChannel] = None

    def _ready(self, channel, element) -> bool:
        return self.executor.classify(channel, element) == READY

    def poll(self):
        executor = self.executor
        channels = self.instance.input_channels
        if not channels:
            self.suspended = False
            return None

        # Phase 0 — priority lanes and internal consumption.
        aux_blocked = False
        progress = True
        while progress:
            progress = False
            for channel in channels:
                if not getattr(channel, "is_auxiliary", False):
                    continue
                while channel.queue:
                    head = channel.peek()
                    if isinstance(head, ConfirmBarrier) and head.rerouted:
                        channel.pop()
                        executor.on_rerouted_confirm(head)
                        progress = True
                        continue
                    if isinstance(head, (Record, LatencyMarker)):
                        if executor.rerouted_ready(head):
                            hold = self.instance.job.aux_hold_hook
                            if hold is not None and hold(self.instance,
                                                        head):
                                # Post-barrier element on an alignment-free
                                # lane: parked until this instance aligns
                                # the checkpoint it postdates (§IV-C).
                                aux_blocked = True
                                break
                            # Re-routed records are special events: processed
                            # immediately, unaffected by suspension (§III-A).
                            return channel, channel.pop()
                        aux_blocked = True
                    break
            for channel in channels:
                if getattr(channel, "is_auxiliary", False) or channel.blocked:
                    continue
                while channel.queue:
                    head = channel.peek()
                    if executor.classify(channel, head) == INTERNAL:
                        channel.pop()
                        executor.consume_internal(channel, head)
                        progress = True
                    else:
                        break

        regular = [ch for ch in channels
                   if not getattr(ch, "is_auxiliary", False)]

        # Phase 1 — head selection.
        if not self.inter_channel:
            polled = self._poll_committed(regular)
            if polled is not None:
                return polled
            self.suspended = self.suspended or aux_blocked
            return None

        channel, saw_unprocessable = self._scan_heads(regular)
        if channel is not None:
            if saw_unprocessable:
                telemetry = self.instance.job.telemetry
                if telemetry is not None:
                    telemetry.registry.counter(
                        "drrs.inter_channel_switches",
                        operator=self.instance.spec.name).inc()
            return channel, channel.pop()

        # Phase 2 — intra-channel scheduling within the bounded buffer.
        if self.intra_channel and saw_unprocessable:
            found = scan_intra_channel(
                regular,
                lambda e: self._ready_nochan(e),
                self.buffer_size,
                start=self._cursor % max(len(regular), 1))
            if found is not None:
                channel, element = found
                channel.remove(element)
                telemetry = self.instance.job.telemetry
                if telemetry is not None:
                    telemetry.registry.counter(
                        "drrs.intra_channel_bypasses",
                        operator=self.instance.spec.name).inc()
                return channel, element

        self.suspended = saw_unprocessable or aux_blocked
        return None

    # -- helpers ----------------------------------------------------------------------

    def _scan_heads(self, channels):
        n = len(channels)
        saw_unprocessable = False
        for offset in range(n):
            channel = channels[(self._cursor + offset) % n]
            if channel.blocked:
                if channel.queue:
                    saw_unprocessable = True
                continue
            head = channel.peek()
            if head is None:
                continue
            if self._ready(channel, head):
                self._cursor = (self._cursor + offset + 1) % n
                return channel, saw_unprocessable
            saw_unprocessable = True
        return None, saw_unprocessable

    def _ready_nochan(self, element) -> bool:
        # Intra-channel candidates: channel context only matters for the
        # per-channel fluid-confirmation check, which uses the channel the
        # element sits in; classify() via kg_in uses arrived_predecessors of
        # the element's subscale.  For simplicity the intra-channel scan only
        # accepts records that are ready *regardless* of channel (globally
        # aligned or untouched/outgoing) — strictly safe.
        return self.executor.classify(None, element) == READY

    def _poll_committed(self, channels):
        """No inter-channel scheduling: engine order with head commitment."""
        if self._committed is not None:
            channel = self._committed
            head = channel.peek()
            if head is None:
                self._committed = None
            elif self.executor.classify(channel, head) == INTERNAL:
                # Internal items never block commitment.
                channel.pop()
                self.executor.consume_internal(channel, head)
                self._committed = None
            elif self._ready(channel, head):
                self._committed = None
                return channel, channel.pop()
            else:
                self.suspended = True
                return None
        n = len(channels)
        saw_data = False
        for offset in range(n):
            channel = channels[(self._cursor + offset) % n]
            if channel.blocked:
                if channel.queue:
                    saw_data = True
                continue
            head = channel.peek()
            if head is None:
                continue
            self._cursor = (self._cursor + offset + 1) % n
            if self._ready(channel, head):
                return channel, channel.pop()
            self._committed = channel
            self.suspended = True
            return None
        self.suspended = saw_data
        return None
