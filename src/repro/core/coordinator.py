"""Scale Coordinator (A): master-side orchestration (§IV-A).

* **Topology Updater (A0)** — provisions the new instances (with the Deploy
  Updater B0 cost) and installs the Scale Input Handlers (B1).
* **Subscale Handler (A1)** — on each subscale command from the planner
  (C1), commands the predecessor operators to inject the decoupled scaling
  signals: routing update, trigger barrier on the control lane, confirm
  barrier at the front of the output cache with redirection of the records
  it bypasses.

The coordinator also runs the greedy subscale scheduling loop under the
per-node concurrency threshold, and performs cleanup so that no DRRS
component remains active after scaling (non-scaling neutrality).
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from ..engine.state import StateStatus
from ..simulation.primitives import Signal
from .barriers import ConfirmBarrier, TriggerBarrier
from .executor import DRRSInputHandler, ScaleExecutor
from .planner import Subscale, SubscalePlanner

if TYPE_CHECKING:  # pragma: no cover
    from ..scaling.plan import MigrationPlan
    from .drrs import DRRSController

__all__ = ["ScaleCoordinator"]


class ScaleCoordinator:
    """One rescale operation's master-side driver."""

    def __init__(self, controller: "DRRSController"):
        self.controller = controller
        self.job = controller.job
        self.sim = controller.sim
        self.config = controller.config

    def execute(self, op_name: str, plan: "MigrationPlan", scale_id: int):
        # The body runs under try/finally: an abort (``abort_and_rollback``
        # interrupting the scale process) must still tear every DRRS
        # resource down — executors, handlers, probes — and commit the
        # partial (rolled-back) assignment, or the job would be left with
        # scaling machinery permanently installed.
        executors: Dict[int, ScaleExecutor] = {}
        saved_handlers = {}
        try:
            yield from self._execute_body(op_name, plan, scale_id,
                                          executors, saved_handlers)
        finally:
            self._cleanup(op_name, plan, executors, saved_handlers)

    def _execute_body(self, op_name: str, plan: "MigrationPlan",
                      scale_id: int, executors, saved_handlers):
        controller = self.controller
        config = self.config
        telemetry = self.job.telemetry

        # -- A0/B0: deploy update -------------------------------------------------
        decouple_span = None
        if telemetry is not None:
            decouple_span = telemetry.tracer.begin(
                "decouple", category="drrs.phase", track="scale",
                op=op_name, scale_id=scale_id)
        new_instances = yield from controller._provision(op_name, plan)
        instances = self.job.instances(op_name)
        for instance in instances:
            executor = ScaleExecutor(controller, instance)
            executors[id(instance)] = executor
            instance.control_handler = executor.on_control
            saved_handlers[instance] = instance.input_handler
            instance.input_handler = DRRSInputHandler(
                instance, executor,
                inter_channel=config.record_scheduling,
                intra_channel=(config.record_scheduling
                               and config.intra_channel),
                buffer_size=config.schedule_buffer)
            instance.wake.fire()
        controller._executors = executors
        controller._attach_suspension_probes(instances)
        if decouple_span is not None:
            telemetry.tracer.end(decouple_span, instances=len(instances))

        # -- C1: divide into subscales --------------------------------------------
        planner = SubscalePlanner(
            num_subscales=(config.num_subscales
                           if config.subscale_division else 1),
            max_concurrent_per_node=config.max_concurrent_per_node,
            strategy=config.subscale_strategy)
        subscales = planner.divide(plan)
        predecessor_ids = {id(sender)
                           for sender, _e in self.job.senders_to(op_name)}
        for subscale in subscales:
            subscale.expected_predecessors = set(predecessor_ids)
            for kg in subscale.key_groups:
                controller.metrics.assign_group(kg, subscale.subscale_id)

        # -- A1: greedy scheduling loop --------------------------------------------
        completion = Signal(self.sim)
        controller._completion_signal = completion
        pending: List[Subscale] = list(subscales)
        running: List[Subscale] = []
        # Concurrency accounting is per worker "node" in the paper's sense:
        # one TaskManager container per instance in the Dockerized setups,
        # so the threshold applies per participating instance.
        node_of = {inst.index: f"container-{inst.index}"
                   for inst in instances}
        node_load: Dict[str, int] = {}
        held = {inst.index: len(inst.state.owned_groups())
                for inst in instances}
        reserved: Dict[int, List[str]] = {}

        while pending or running:
            if controller.cancelled:
                # Superseded (§IV-B): stop launching, let running subscales
                # finish (they are already routed), then clean up partially.
                pending.clear()
            while pending:
                if config.subscale_division:
                    nxt = planner.pick_next(pending, node_load, held,
                                            node_of)
                    if nxt is None:
                        break
                else:
                    nxt = pending[0]
                pending.remove(nxt)
                running.append(nxt)
                nodes = [node_of[nxt.src_index], node_of[nxt.dst_index]]
                reserved[nxt.subscale_id] = nodes
                for node in nodes:
                    node_load[node] = node_load.get(node, 0) + 1
                held[nxt.dst_index] = (held.get(nxt.dst_index, 0)
                                       + len(nxt.key_groups))
                yield from self.launch_subscale(op_name, nxt, executors,
                                                instances)
            if not running and not pending:
                break
            yield completion.wait()
            for subscale in list(running):
                if subscale.done:
                    running.remove(subscale)
                    for node in reserved.pop(subscale.subscale_id, []):
                        node_load[node] = max(0, node_load.get(node, 0) - 1)

    def _cleanup(self, op_name: str, plan: "MigrationPlan",
                 executors, saved_handlers) -> None:
        """Release every DRRS resource; runs even when the scale is aborted.

        On the normal and superseded paths this is the tail of the original
        inline cleanup; on the abort path (Interrupt delivered into
        :meth:`execute`) it additionally copes with partially-installed
        machinery — instances provisioned but not yet started, handlers not
        yet swapped in.
        """
        controller = self.controller
        instances = self.job.instances(op_name)
        # An abort can interrupt _provision between deployment and start-up;
        # finish starting the new instances so the deployed parallelism is
        # fully live before a retry plans against it.
        for instance in instances[plan.old_parallelism:]:
            if not instance.running and not instance.paused:
                instance.start()
        for instance in instances:
            executor = executors.get(id(instance))
            if executor is not None:
                executor.shutdown()
                instance.control_handler = None
            saved = saved_handlers.pop(instance, None)
            if saved is not None:
                instance.input_handler = saved
            for group in instance.state.groups():
                if group.status is StateStatus.INACTIVE:
                    group.status = StateStatus.LOCAL
            instance.wake.fire()
        controller._detach_suspension_probes(instances)
        if controller.cancelled:
            # Partial finalize: the authoritative assignment already
            # reflects every *launched* subscale (updated at launch time,
            # and restored at rollback time for aborted ones).  Rebuild it
            # with the deployed parallelism so a superseding or retried
            # scale plans from reality, and drop the migrated-out stubs.
            from ..engine.keys import KeyGroupAssignment
            old = self.job.assignments[op_name]
            self.job.assignments[op_name] = KeyGroupAssignment(
                old.num_key_groups, len(instances), old.as_dict())
            for instance in instances:
                for group in list(instance.state.groups()):
                    if group.status is StateStatus.MIGRATED_OUT:
                        instance.state.drop_group(group.key_group)
        else:
            controller._finalize_assignment(op_name, plan)

    # -- subscale launch (A1 → predecessors) -----------------------------------------

    def launch_subscale(self, op_name: str, subscale: Subscale,
                        executors: Dict[int, ScaleExecutor],
                        instances) -> None:
        src = instances[subscale.src_index]
        dst = instances[subscale.dst_index]
        executors[id(src)].register_out(subscale)
        executors[id(dst)].expect_subscale(subscale)
        subscale.launched_at = self.sim.now
        self.controller._inflight_subscales[subscale.subscale_id] = subscale
        telemetry = self.job.telemetry
        if telemetry is not None:
            self.controller._wave_spans[subscale.subscale_id] = (
                telemetry.tracer.begin(
                    f"subscale-{subscale.subscale_id}",
                    category="drrs.phase",
                    track=f"subscale[{subscale.subscale_id}]",
                    subscale_id=subscale.subscale_id,
                    src=src.name, dst=dst.name,
                    key_groups=list(subscale.key_groups),
                    bytes_moved=0.0))
        # Keep the job-level assignment consistent with the routing flip:
        # any instance deployed from now on (e.g. by a concurrent scaling
        # of an adjacent operator, §IV-B) must copy the updated routing.
        assignment = self.job.assignments[op_name]
        for kg in subscale.key_groups:
            assignment.apply_move(kg, subscale.dst_index)
        # The authoritative swap above and the per-sender in-band swaps
        # below are not atomic; drop every sender-side routing cache now so
        # the window holds no stale key-group -> channel entries (the
        # in-band set_routing writes re-invalidate per edge as they land).
        self.job.invalidate_routing_caches(op_name)
        # Control-plane command to the predecessors.
        yield self.sim.timeout(self.controller.control_latency)
        self.controller.metrics.signal_injected(subscale.subscale_id,
                                                self.sim.now)
        if telemetry is not None:
            # Emitted at the exact sim-time ScalingMetrics records, so the
            # span-derived propagation delay matches the metric.
            telemetry.tracer.instant(
                "signal.injected", category="drrs.phase",
                track=f"subscale[{subscale.subscale_id}]",
                subscale_id=subscale.subscale_id)
        for sender, edge in self.job.senders_to(op_name):
            sender.run_inband(self._make_injection(subscale, edge))

    def _make_injection(self, subscale: Subscale, edge):
        """Decoupled signal injection, executed in-band at one predecessor.

        Order of operations within the atomic in-band step (§III-A, Fig. 4a):
        routing update → trigger barrier on the control lane → confirm
        barrier at the *front* of the old output cache → redirection of the
        bypassed records (preserving relative order) to the new channel.
        """
        controller = self.controller
        key_groups = set(subscale.key_groups)
        epoch = controller._abort_epoch

        def inject(predecessor):
            if controller._abort_epoch != epoch:
                # The scale was aborted between command and in-band
                # execution: injecting now would flip routing towards a
                # rolled-back destination.
                return
            old_channel = edge.channels[subscale.src_index]
            new_channel = edge.channels[subscale.dst_index]
            for kg in subscale.key_groups:
                edge.set_routing(kg, subscale.dst_index)
            old_channel.send_control(TriggerBarrier(
                scale_id=controller._scale_ids,
                subscale_id=subscale.subscale_id,
                key_groups=tuple(subscale.key_groups),
                src_index=subscale.src_index,
                dst_index=subscale.dst_index))
            # Confirm barrier overtakes the output cache; bypassed records
            # are redirected (§III-A), except those belonging to a pending
            # checkpoint's consistent cut (§IV-C, Fig. 9a).
            bypassed = old_channel.inject_confirm(
                lambda e: getattr(e, "key_group", None) in key_groups,
                ConfirmBarrier(
                    scale_id=controller._scale_ids,
                    subscale_id=subscale.subscale_id,
                    predecessor_id=id(predecessor),
                    key_groups=tuple(subscale.key_groups)))
            for element in bypassed:
                yield new_channel.send(element)

        return inject
