"""Scale Planner (C): subscale division and greedy scheduling (§III-C, §IV-A).

The default strategies match the paper's implementation:

* **Policy Generator (C0)** — user-request trigger with uniform
  repartitioning (provided by :class:`repro.scaling.plan.MigrationPlan`).
* **Subscale Scheduler (C1)** — lexicographically divides the migrating
  key-groups into subsets as equally sized as possible, and schedules them
  greedily, prioritising subscales that migrate to the instance currently
  holding the *fewest* keys (so new instances join the computation quickly),
  under a per-node concurrency threshold of two simultaneous subscale
  operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..scaling.plan import MigrationPlan

__all__ = ["Subscale", "SubscalePlanner"]


@dataclass
class Subscale:
    """One independently migrating subset of state units."""

    subscale_id: int
    key_groups: List[int]
    src_index: int
    dst_index: int
    launched_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Destination-side implicit-alignment bookkeeping: identities of
    #: predecessor instances whose re-routed confirm barriers must arrive.
    expected_predecessors: Set[int] = field(default_factory=set)
    arrived_predecessors: Set[int] = field(default_factory=set)
    migrated_groups: Set[int] = field(default_factory=set)

    @property
    def launched(self) -> bool:
        return self.launched_at is not None

    @property
    def aligned(self) -> bool:
        return self.arrived_predecessors >= self.expected_predecessors

    @property
    def migrated(self) -> bool:
        return self.migrated_groups >= set(self.key_groups)

    @property
    def done(self) -> bool:
        return self.aligned and self.migrated

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<Subscale #{self.subscale_id} "
                f"{self.src_index}->{self.dst_index} "
                f"kgs={len(self.key_groups)} "
                f"{'done' if self.done else 'open'}>")


class SubscalePlanner:
    """C1: divide the plan into subscales and schedule them greedily."""

    def __init__(self, num_subscales: int = 16,
                 max_concurrent_per_node: int = 2,
                 strategy: str = "greedy"):
        if num_subscales < 1:
            raise ValueError("num_subscales must be >= 1")
        if max_concurrent_per_node < 1:
            raise ValueError("max_concurrent_per_node must be >= 1")
        if strategy not in ("greedy", "fifo"):
            raise ValueError(f"unknown scheduling strategy: {strategy!r}")
        self.num_subscales = num_subscales
        self.max_concurrent_per_node = max_concurrent_per_node
        self.strategy = strategy

    # -- division ------------------------------------------------------------------

    def divide(self, plan: MigrationPlan) -> List[Subscale]:
        """Lexicographic, as-equal-as-possible division of the move set.

        A subscale has a single migration path (one src, one dst), so moves
        are first grouped by path; each path's key-groups (already sorted)
        are then chopped into chunks of the global target size.
        """
        total = len(plan.moves)
        if total == 0:
            return []
        chunk = max(1, math.ceil(total / self.num_subscales))
        subscales: List[Subscale] = []
        next_id = 0
        for (src, dst), kgs in sorted(plan.by_path().items()):
            for i in range(0, len(kgs), chunk):
                subscales.append(Subscale(
                    subscale_id=next_id,
                    key_groups=kgs[i:i + chunk],
                    src_index=src,
                    dst_index=dst))
                next_id += 1
        return subscales

    # -- greedy scheduling ------------------------------------------------------------

    def pick_next(self, pending: List[Subscale],
                  node_load: Dict[str, int],
                  held_keys: Dict[int, int],
                  node_of: Dict[int, str]) -> Optional[Subscale]:
        """The next launchable subscale, or None if none fits right now.

        ``node_load`` counts subscale participations per node;
        ``held_keys`` counts key-groups currently held per instance index;
        ``node_of`` maps instance index → node name.
        """
        eligible = []
        for subscale in pending:
            src_node = node_of[subscale.src_index]
            dst_node = node_of[subscale.dst_index]
            extra: Dict[str, int] = {}
            extra[src_node] = extra.get(src_node, 0) + 1
            extra[dst_node] = extra.get(dst_node, 0) + 1
            if all(node_load.get(node, 0) + n <= self.max_concurrent_per_node
                   for node, n in extra.items()):
                eligible.append(subscale)
        if not eligible:
            return None
        if self.strategy == "fifo":
            return min(eligible, key=lambda s: s.subscale_id)
        # Greedy default: fewest held keys at the destination first (brings
        # new instances into the computation fastest); ties by subscale id.
        return min(eligible,
                   key=lambda s: (held_keys.get(s.dst_index, 0),
                                  s.subscale_id))
