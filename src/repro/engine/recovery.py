"""Checkpoint-based failure recovery (the fault-tolerance half of §IV-C).

The scaling mechanisms coexist with Flink-style fault tolerance; this
module completes the substrate: snapshots taken by the aligned-checkpoint
machinery are *retained* (state copies + source offsets), and a failure
rolls the whole job back to the newest completed checkpoint —

1. every instance pauses, all in-flight channel contents are discarded,
2. each instance's keyed state is restored from its snapshot,
3. sources rewind to their checkpointed offsets and replay,
4. processing resumes after a restart delay + state-restore time.

Semantics delivered (matching Flink without transactional sinks):
**exactly-once state** — post-recovery keyed state reflects each input
record exactly once — and **at-least-once output** (records processed
between the checkpoint and the failure are emitted again on replay).

Checkpoints taken **during** a scaling operation are restorable (§IV-C):
key-group bytes that are on the wire between two instances when a
checkpoint barrier passes are *folded* into the snapshot of the instance
they departed from, and a scrub drops any double capture at the
destination.  At restore time, key-group ownership is re-derived from
where the snapshot actually holds the bytes, so a checkpoint cut
mid-migration restores a consistent (possibly mixed old/new) assignment.

A failure that strikes while scaling is in flight first asks the active
controller to abort and roll the migration back (DRRS supports this;
controllers without an ``abort_and_rollback`` method still raise), then
restores as usual; the controller's retry waits on
``job.recovery_barrier`` so it cannot race the restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .keys import KeyGroupAssignment
from .operators import OperatorInstance
from .records import CheckpointBarrier
from .runtime import SourceInstance, StreamJob
from .state import ChangelogChainError, KeyGroupState, StateStatus

__all__ = ["RecoveryManager", "RecoveryError"]


class RecoveryError(RuntimeError):
    """Raised when recovery is impossible (no checkpoint, scaling active)."""


@dataclass
class _InstanceSnapshot:
    state: Dict[int, KeyGroupState]
    #: For sources: how many admitted elements had been consumed.
    source_offset: Optional[int] = None


@dataclass
class _Checkpoint:
    checkpoint_id: int
    #: instance name -> snapshot
    snapshots: Dict[str, _InstanceSnapshot] = field(default_factory=dict)
    completed_at: Optional[float] = None
    #: Diagnostic: any snapshot of this checkpoint was taken while a
    #: scaling operation was in flight.  Such checkpoints are restorable
    #: (migrating bytes are folded into the departing instance's snapshot,
    #: §IV-C); the flag only feeds reporting and tests.
    mid_scaling: bool = False
    #: Key-group assignments at checkpoint time.  Restore *derives* the
    #: effective owner of each key-group from where the snapshots hold its
    #: bytes; this map is the fallback for groups no snapshot claims.
    assignments: Dict[str, object] = field(default_factory=dict)
    #: ``(op name, key group) -> instance name``: which snapshot *captured*
    #: each key-group's bytes.  Filled by folds of in-flight transfers, by
    #: landing-time amendments, and by plain aligned snapshots claiming the
    #: bytes they hold.  First capture wins — the scrub drops later claims —
    #: and once a group is captured, records it should contain but that were
    #: applied afterwards are compensated via :attr:`pending_records`.
    folded: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: Captures taken before their owning instance aligned (bytes in flight
    #: at checkpoint creation, or landed at a not-yet-aligned destination):
    #: ``(op, key group) -> (owner instance name, frozen state)``.  Merged
    #: into the owner's snapshot when it aligns, *replacing* the live group
    #: (post-capture mutations are compensated record-by-record instead).
    prefolds: Dict[Tuple[str, int], Tuple[str, KeyGroupState]] = field(
        default_factory=dict)
    #: Records whose key-group was captured for this checkpoint *before*
    #: they were applied, yet precede the checkpoint's source cut
    #: (``src_seq < source offset``) — their effect is in no snapshot, so
    #: restore re-injects them: ``(op name, key group, record)``.
    pending_records: List[Tuple[str, int, object]] = field(
        default_factory=list)
    #: record_ids already in :attr:`pending_records` (double-failure guard:
    #: a re-injected record re-processed after a first restore must not be
    #: queued twice for the next).
    pending_ids: set = field(default_factory=set)
    #: Changelog backends only: the delta segment each instance cut for
    #: this checkpoint (instance name -> ChangelogSegment).  The chain of
    #: segments back to the nearest anchor is what a restore must re-read;
    #: the checkpoint is complete only once every segment's asynchronous
    #: upload has landed.
    segments: Dict[str, object] = field(default_factory=dict)


class RecoveryManager:
    """Retains checkpoint snapshots and performs rollback recovery."""

    def __init__(self, job: StreamJob,
                 restart_seconds: float = 1.0,
                 restore_bandwidth: float = 400e6,
                 retain_checkpoints: int = 5):
        if retain_checkpoints < 1:
            raise ValueError("retain_checkpoints must be >= 1")
        self.job = job
        self.restart_seconds = restart_seconds
        self.restore_bandwidth = restore_bandwidth
        #: Newest-N completed checkpoints kept restorable; older ones (and
        #: superseded incomplete ones) are dropped, and source replay
        #: history older than the oldest retained checkpoint is trimmed.
        self.retain_checkpoints = retain_checkpoints
        self._checkpoints: Dict[int, _Checkpoint] = {}
        #: Changelog segment store, ``(instance name, checkpoint id) ->
        #: ChangelogSegment``.  Deliberately *not* tied to checkpoint
        #: lifetime: a segment outlives its own checkpoint for as long as
        #: any retained checkpoint's delta chain runs through it (e.g. the
        #: anchoring full image of a checkpoint whose upload was slow and
        #: which was superseded before completing).  Pruned only below the
        #: newest anchor the oldest retained checkpoint can reach.
        self._segments: Dict[Tuple[str, int], object] = {}
        #: Retained checkpoint ids, ascending (iteration newest-first).
        self._cids: List[int] = []
        #: Ids of retained checkpoints that are still aligning — the only
        #: ones the auxiliary-lane hold has to consider.
        self._open_cids: List[int] = []
        self.recoveries: List[Tuple[float, int]] = []
        self._installed = False
        self._recover_proc = None
        self._pending_dones: List = []

    # -- installation ------------------------------------------------------------

    def install(self) -> "RecoveryManager":
        """Start retaining snapshots; sources begin keeping replay history."""
        if self._installed:
            return self
        self._installed = True
        # Recovery needs per-record capture (lineage for consistent cuts)
        # and auxiliary-lane holds — both bypassed by analytic batches, so
        # the batched plane is permanently collapsed for this job.
        self.job.disable_batching()
        self.job.snapshot_listener = self._on_snapshot
        self.job.flight_landed_hook = self._on_flight_landed
        self.job.record_capture_listener = self._on_record
        self.job.aux_hold_hook = self._should_hold_aux
        self.job.upload_listeners.append(self._on_upload)
        for source in self.job.sources():
            source.enable_replay_history()
        return self

    def _reindex(self) -> None:
        self._cids = sorted(self._checkpoints)
        self._open_cids = [cid for cid in self._cids
                           if self._checkpoints[cid].completed_at is None]

    def _on_snapshot(self, instance: OperatorInstance,
                     barrier: CheckpointBarrier) -> None:
        checkpoint = self._checkpoints.get(barrier.checkpoint_id)
        if checkpoint is None:
            checkpoint = _Checkpoint(
                barrier.checkpoint_id,
                assignments={op: assignment.copy()
                             for op, assignment
                             in self.job.assignments.items()})
            self._checkpoints[barrier.checkpoint_id] = checkpoint
            # §IV-C fold, taken eagerly: bytes already on the wire when
            # this checkpoint is born are captured *now*, frozen as of
            # extraction (nothing mutates an unlanded flight).  Waiting
            # for the source's own barrier would capture the same frozen
            # copy later — by which time the destination may have applied
            # pre-cut records to the landed group, which the frozen copy
            # cannot contain and which would then silently vanish.  With
            # the capture on record, those records are compensated
            # through :meth:`_on_record` instead.
            for (op, kg), flight in self.job.inflight_state.items():
                checkpoint.prefolds[(op, kg)] = (
                    flight.src_name,
                    KeyGroupState(key_group=kg, status=StateStatus.LOCAL,
                                  size_bytes=flight.size_bytes,
                                  entries=dict(flight.entries)))
                checkpoint.folded[(op, kg)] = flight.src_name
            self._reindex()
        if self.job.scaling_active:
            checkpoint.mid_scaling = True
        snapshot = _InstanceSnapshot(state=instance.state.snapshot())
        if isinstance(instance, SourceInstance):
            snapshot.source_offset = instance.consumed_elements
        op_name = instance.spec.name
        # Captures this instance owns that were taken early (prefolds)
        # replace its live view: the frozen copy is the consistent cut,
        # and anything applied since is compensated record-by-record.
        for (op, kg), (owner, frozen) in list(checkpoint.prefolds.items()):
            if op == op_name and owner == instance.name:
                snapshot.state[kg] = frozen
                del checkpoint.prefolds[(op, kg)]
        # Flights in the air *from this instance* at its alignment that no
        # earlier capture covers: fold the frozen bytes into this snapshot —
        # at restore time they land back where they departed.
        for (op, kg), flight in self.job.inflight_state.items():
            if flight.src_name != instance.name:
                continue
            if (op, kg) in checkpoint.folded:
                continue
            snapshot.state[kg] = KeyGroupState(
                key_group=kg, status=StateStatus.LOCAL,
                size_bytes=flight.size_bytes,
                entries=dict(flight.entries))
            checkpoint.folded[(op, kg)] = instance.name
        # First capture wins: a key-group someone else already captured is
        # scrubbed from this snapshot (the landed copy at a destination
        # would otherwise be a second, differently-timed capture).
        for (op, kg), src_name in list(checkpoint.folded.items()):
            if op != op_name or instance.name == src_name:
                continue
            snapshot.state.pop(kg, None)
        # Plain claims: key-groups whose bytes this snapshot holds and that
        # no one captured yet are captured here and now.  Recording the
        # claim is what lets _on_record spot post-capture stragglers.
        for kg, group in snapshot.state.items():
            if group.status in (StateStatus.MIGRATED_OUT,
                                StateStatus.INCOMING):
                continue
            checkpoint.folded.setdefault((op_name, kg), instance.name)
        # Changelog backends: adopt the delta segment the runtime cut for
        # this snapshot (the cut happens before the listeners fire, so it
        # is always registered by now).
        segment = self.job.changelog_segments.pop(
            (instance.name, barrier.checkpoint_id), None)
        if segment is not None:
            checkpoint.segments[instance.name] = segment
            self._segments[(instance.name, barrier.checkpoint_id)] = \
                segment
        checkpoint.snapshots[instance.name] = snapshot
        self._maybe_complete(checkpoint)

    def _on_upload(self, instance_name: str, checkpoint_id: int,
                   segment) -> None:
        """An asynchronous segment upload landed — re-check completeness.

        A landing upload can unblock *later* checkpoints too (their delta
        chains reference every earlier segment), so every still-open
        checkpoint is re-checked oldest-first.  Uploads for checkpoints
        already completed, pruned, or discarded (incomplete at a restore)
        are ignored."""
        for cid in sorted(self._checkpoints):
            checkpoint = self._checkpoints.get(cid)
            if checkpoint is None or checkpoint.completed_at is not None:
                continue
            self._maybe_complete(checkpoint)

    def _uploads_done(self, checkpoint: _Checkpoint) -> bool:
        # The checkpoint's delta chain references every earlier segment,
        # so it is durable only once all uploads up to and including its
        # own id have landed.
        cid = checkpoint.checkpoint_id
        return not any(pending_cid <= cid
                       for _, pending_cid in self.job.pending_uploads)

    def _maybe_complete(self, checkpoint: _Checkpoint) -> None:
        if (self._covers_everything(checkpoint)
                and self._uploads_done(checkpoint)):
            checkpoint.completed_at = self.job.sim.now
            self._prune()
            self._reindex()

    def _on_flight_landed(self, flight, dst: OperatorInstance) -> None:
        """A migrating key-group just installed at its destination.

        Closes the remaining fold race: the destination's barrier passed
        *before* the bytes arrived (its snapshot shows no bytes) and the
        source's barrier has not arrived yet (its snapshot will show only a
        ``MIGRATED_OUT`` stub).  Amend the destination's snapshot with the
        landed bytes — they are exactly the state as of extraction, which
        no one has mutated in between.
        """
        for checkpoint in self._checkpoints.values():
            if checkpoint.completed_at is not None:
                continue
            key = (flight.op_name, flight.key_group)
            if key in checkpoint.folded:
                continue
            if flight.src_name in checkpoint.snapshots:
                continue
            frozen = KeyGroupState(
                key_group=flight.key_group, status=StateStatus.LOCAL,
                size_bytes=flight.size_bytes,
                entries=dict(flight.entries))
            dst_snapshot = checkpoint.snapshots.get(dst.name)
            if dst_snapshot is not None:
                dst_snapshot.state[flight.key_group] = frozen
            else:
                # Destination not aligned yet: park the frozen capture; it
                # replaces the live group when the destination's barrier
                # arrives (records applied in between are compensated via
                # _on_record, which sees the capture on record below).
                checkpoint.prefolds[key] = (dst.name, frozen)
            checkpoint.folded[key] = dst.name

    def _on_record(self, instance: OperatorInstance, record) -> None:
        """Record-level checkpoint compensation (the aux-lane gap closer).

        Called for every record an instance is about to apply.  A retained
        checkpoint whose cut the record *precedes* (``src_seq < source
        offset``) but whose capture of the record's key-group has already
        been taken cannot contain the record's effect in any snapshot — it
        travelled an alignment-free path (re-route lane, rollback queue) or
        reached a group captured early (prefold).  Queue it for re-injection
        should that checkpoint ever be restored.
        """
        seq = record.src_seq
        if seq is None:
            return
        origin = record.src_origin
        op = instance.spec.name
        kg = record.key_group
        for cid in reversed(self._cids):
            checkpoint = self._checkpoints.get(cid)
            if checkpoint is None:
                continue
            snapshot = checkpoint.snapshots.get(origin)
            offset = None if snapshot is None else snapshot.source_offset
            if offset is not None and seq >= offset:
                # On/after this cut — and older cuts are only earlier.
                break
            if checkpoint.folded.get((op, kg)) is None:
                continue  # capture still pending: it will include this
            if record.record_id in checkpoint.pending_ids:
                continue
            checkpoint.pending_ids.add(record.record_id)
            checkpoint.pending_records.append((op, kg, record))

    def _should_hold_aux(self, instance: OperatorInstance,
                         element) -> bool:
        """Hold a post-cut element on an alignment-free lane (§IV-C).

        Regular channels park post-barrier elements until the receiver has
        aligned; auxiliary lanes do not.  Without this hold, a record
        consumed *after* a checkpoint's cut could be applied before the
        receiving instance snapshots, contaminating a pre-cut capture with
        a post-cut effect (a double-count after restore).  The hold lasts
        only until the instance's own barrier arrives.
        """
        if not self._open_cids:
            return False
        seq = getattr(element, "src_seq", None)
        if seq is None:
            return False
        origin = element.src_origin
        name = instance.name
        for cid in self._open_cids:
            checkpoint = self._checkpoints.get(cid)
            if checkpoint is None or name in checkpoint.snapshots:
                continue
            snapshot = checkpoint.snapshots.get(origin)
            offset = None if snapshot is None else snapshot.source_offset
            if offset is not None and seq >= offset:
                return True
        return False

    def _covers_everything(self, checkpoint: _Checkpoint) -> bool:
        names = {inst.name for inst in self.job.all_instances()
                 if inst.running or inst.paused}
        return set(checkpoint.snapshots) >= names

    def _prune(self) -> None:
        """Satellite of checkpoint completion: bound retention.

        Keeps the newest :attr:`retain_checkpoints` completed checkpoints,
        drops completed ones beyond that and incomplete ones older than the
        oldest retained (their barriers can no longer complete), and trims
        source replay history below the oldest retained offset.
        """
        completed = sorted(c.checkpoint_id
                           for c in self._checkpoints.values()
                           if c.completed_at is not None)
        if not completed:
            return
        retained = set(completed[-self.retain_checkpoints:])
        oldest = min(retained)
        for cid in list(self._checkpoints):
            ckpt = self._checkpoints[cid]
            if ckpt.completed_at is not None:
                if cid not in retained:
                    del self._checkpoints[cid]
            elif cid < oldest:
                del self._checkpoints[cid]
        oldest_ckpt = self._checkpoints[oldest]
        for source in self.job.sources():
            snapshot = oldest_ckpt.snapshots.get(source.name)
            if snapshot is not None and snapshot.source_offset is not None:
                source.trim_history_before(snapshot.source_offset)
        # Changelog segments below the newest anchor the oldest retained
        # checkpoint can reach are unreachable from every restorable
        # chain — drop them.  Segments *between* that anchor and the
        # oldest retained checkpoint stay, even when their own checkpoint
        # is long gone.
        for name in {name for name, _cid in self._segments}:
            cids = sorted(cid for n, cid in self._segments if n == name)
            anchor = None
            for cid in cids:
                if cid > oldest:
                    break
                if self._segments[(name, cid)].anchors_chain:
                    anchor = cid
            if anchor is None:
                continue
            for cid in cids:
                if cid < anchor:
                    del self._segments[(name, cid)]

    # -- queries --------------------------------------------------------------------

    def latest_completed(self) -> Optional[_Checkpoint]:
        """Newest complete, restorable checkpoint."""
        done = [c for c in self._checkpoints.values()
                if c.completed_at is not None]
        return max(done, key=lambda c: c.checkpoint_id) if done else None

    def checkpoint(self, checkpoint_id: int) -> Optional[_Checkpoint]:
        """A retained checkpoint by id (None once pruned)."""
        return self._checkpoints.get(checkpoint_id)

    def restore_chain(self, checkpoint: _Checkpoint,
                      instance_name: str) -> List[object]:
        """The delta chain a restore of ``instance_name`` must replay.

        Walks the segment store newest-to-oldest from ``checkpoint``
        collecting the instance's segments until one anchors the chain
        (whole-state image, or the beginning of history).  Raises
        :class:`~repro.engine.state.ChangelogChainError` when no anchor is
        reachable — an incomplete chain must never be restored from.
        """
        chain: List[object] = []
        cids = sorted((cid for name, cid in self._segments
                       if name == instance_name), reverse=True)
        for cid in cids:
            if cid > checkpoint.checkpoint_id:
                continue
            segment = self._segments[(instance_name, cid)]
            chain.append(segment)
            if segment.anchors_chain:
                chain.reverse()
                return chain
        raise ChangelogChainError(
            f"no anchoring segment for {instance_name} within retained "
            f"checkpoints (chain ending at checkpoint "
            f"{checkpoint.checkpoint_id} is incomplete)")

    # -- recovery ---------------------------------------------------------------------

    def fail_and_recover(self, reason: str = "injected failure") -> "object":
        """Simulate a failure now; returns an Event firing when recovered.

        Rolls every instance back to the newest completed checkpoint and
        replays sources from their checkpointed offsets.  If a scaling
        operation is in flight, the controller is asked to abort and roll
        the migration back first (``abort_and_rollback``; controllers
        without one still make this an error).  Calling again while a
        recovery is already restoring models a *double failure*: the
        in-flight restore is abandoned and recovery restarts from scratch.
        """
        if not self._installed:
            raise RecoveryError("RecoveryManager not installed")
        checkpoint = self.latest_completed()
        if checkpoint is None:
            raise RecoveryError("no completed checkpoint to recover from")
        job = self.job
        if job.scaling_active:
            scalers = list(job.active_scalers)
            unsupported = [s for s in scalers
                           if not hasattr(s, "abort_and_rollback")]
            if unsupported:
                names = ", ".join(s.name for s in unsupported)
                raise RecoveryError(
                    f"a scaling operation ({names}) is in flight and the "
                    "controller cannot abort it; complete or cancel it "
                    "before injecting a failure")
            if job.recovery_barrier is None:
                job.recovery_barrier = job.sim.event()
            for scaler in scalers:
                scaler.abort_and_rollback(reason, retry=True)
        if job.recovery_barrier is None:
            job.recovery_barrier = job.sim.event()
        if self._recover_proc is not None and self._recover_proc.is_alive:
            # Double failure: abandon the half-done restore and start over.
            self._recover_proc.interrupt(reason)
        done = job.sim.event()
        self._pending_dones.append(done)
        self._recover_proc = job.sim.spawn(
            self._recover(checkpoint),
            name=f"recover:ckpt-{checkpoint.checkpoint_id}")
        return done

    def _settle(self, error: Optional[BaseException],
                value=None) -> None:
        dones, self._pending_dones = self._pending_dones, []
        for done in dones:
            if done.triggered:
                continue
            if error is not None:
                done.fail(error)
            else:
                done.succeed(value)

    def _release_barrier(self) -> None:
        barrier = self.job.recovery_barrier
        self.job.recovery_barrier = None
        if barrier is not None and not barrier.triggered:
            barrier.succeed()

    def _derived_owners(self, checkpoint: _Checkpoint
                        ) -> Dict[str, Dict[int, int]]:
        """Per keyed operator: key-group → owner index, from the snapshots.

        A snapshot *claims* a key-group when it holds its bytes (``LOCAL``,
        ``PENDING_OUT``, ``INACTIVE``, or a folded group); ``MIGRATED_OUT``
        and ``INCOMING`` stubs never claim.  Groups no snapshot claims fall
        back to the assignment recorded at checkpoint time.  Two snapshots
        claiming the same group is a retention bug → :class:`RecoveryError`.
        """
        derived: Dict[str, Dict[int, int]] = {}
        for op_name in self.job.assignments:
            by_name = {inst.name: inst
                       for inst in self.job.instances(op_name)}
            claimed: Dict[int, int] = {}
            for name, snapshot in checkpoint.snapshots.items():
                instance = by_name.get(name)
                if instance is None:
                    continue
                for kg, group in snapshot.state.items():
                    if group.status in (StateStatus.MIGRATED_OUT,
                                        StateStatus.INCOMING):
                        continue
                    prev = claimed.get(kg)
                    if prev is not None and prev != instance.index:
                        raise RecoveryError(
                            f"checkpoint {checkpoint.checkpoint_id} holds "
                            f"key-group {kg} of {op_name} on two instances "
                            f"(indices {prev} and {instance.index})")
                    claimed[kg] = instance.index
            fallback = checkpoint.assignments.get(op_name)
            if fallback is not None:
                for kg, owner in fallback.as_dict().items():
                    if kg not in claimed and owner < len(by_name):
                        claimed[kg] = owner
            derived[op_name] = claimed
        return derived

    def _recover(self, checkpoint: _Checkpoint):
        job = self.job
        sim = job.sim
        self.recoveries.append((sim.now, checkpoint.checkpoint_id))
        restore_span = None
        if job.telemetry is not None:
            restore_span = job.telemetry.tracer.begin(
                "recovery.restore", category="recovery", track="recovery",
                checkpoint_id=checkpoint.checkpoint_id)

        # 0. Fail fast — before tearing anything down — when the checkpoint
        # covers instances that no longer exist (decommissioned by a
        # completed scale-in).  Surfaced through the done event: raising
        # here would explode inside a spawned process nobody observes.
        current_names = {inst.name for inst in job.all_instances()}
        missing = set(checkpoint.snapshots) - current_names
        if missing:
            error = RecoveryError(
                f"checkpoint {checkpoint.checkpoint_id} covers "
                f"decommissioned instances {sorted(missing)}; no "
                "restorable checkpoint exists")
            if restore_span is not None:
                job.telemetry.tracer.end(restore_span, failed=True)
            self._release_barrier()
            self._settle(error)
            return
        try:
            derived = self._derived_owners(checkpoint)
        except RecoveryError as error:
            if restore_span is not None:
                job.telemetry.tracer.end(restore_span, failed=True)
            self._release_barrier()
            self._settle(error)
            return

        # 1. Halt everything and discard in-flight data.  ``abandon_work``
        # covers the straggler window: an element already mid-service when
        # the failure hit would otherwise be emitted into the freshly
        # flushed channels on wake-up and then *also* replayed — the flag
        # makes the instance discard it instead.
        instances = job.all_instances()
        for instance in instances:
            instance.pause()
            instance.abandon_work = True

        # 1a. Incomplete checkpoints die with the cut they were collecting:
        # their barriers are about to be flushed, so they can never
        # complete, and their half-taken snapshots mix pre-crash state.
        for cid in list(self._checkpoints):
            if self._checkpoints[cid].completed_at is None:
                del self._checkpoints[cid]
        self._reindex()
        # Segments newer than the restore point belong to those discarded
        # cuts; post-restore backends re-anchor (``restart_changelog``),
        # so the pre-crash tail must not shadow the fresh chain.
        for name, cid in list(self._segments):
            if cid > checkpoint.checkpoint_id:
                del self._segments[(name, cid)]

        # 1b. Sweep alignment-free lanes (re-route channels, rollback
        # queues, re-route manager buffers) for stranded *pre-cut* records
        # before everything is flushed.  Regular channels cannot hold
        # pre-cut records of a completed checkpoint — alignment would not
        # have finished over them — so auxiliary lanes are the only leak.
        offsets = {name: snap.source_offset
                   for name, snap in checkpoint.snapshots.items()
                   if snap.source_offset is not None}

        def queue_stranded(op_name, element):
            if not element.is_record:
                return
            seq = element.src_seq
            if seq is None:
                return
            offset = offsets.get(element.src_origin)
            if offset is None or seq >= offset:
                return  # post-cut: source replay re-delivers it
            if element.record_id in checkpoint.pending_ids:
                return
            checkpoint.pending_ids.add(element.record_id)
            checkpoint.pending_records.append(
                (op_name, element.key_group, element))

        for instance in instances:
            op = instance.spec.name
            for input_channel in instance.input_channels:
                if not input_channel.is_auxiliary:
                    continue
                for element in input_channel.queue:
                    queue_stranded(op, element)
                backing = input_channel.channel
                if backing is None:
                    continue
                for element in backing.outbox:
                    queue_stranded(op, element)
                for _ev, element in backing._send_waiters:
                    queue_stranded(op, element)
                for element, epoch in backing._wire:
                    if epoch == backing._epoch:
                        queue_stranded(op, element)
                if (backing._serializing is not None
                        and backing._serializing_epoch == backing._epoch):
                    queue_stranded(op, backing._serializing)
        for hook in job.aux_sweep_hooks:
            for op, element in hook():
                queue_stranded(op, element)

        total_bytes = 0.0
        for instance in instances:
            for channel in instance.router.all_channels():
                channel.flush()
            for input_channel in instance.input_channels:
                input_channel.queue.clear()
                input_channel.block_tokens.clear()
            instance._pending_checkpoint.clear()
            snapshot = checkpoint.snapshots.get(instance.name)
            if snapshot is not None:
                full_bytes = sum(g.size_bytes
                                 for g in snapshot.state.values())
                if getattr(instance.state, "is_incremental", False):
                    # Local recovery: the materialized base is durable and
                    # locally available — restore re-reads only the delta
                    # tail back to the nearest anchor.  A broken chain
                    # falls back to the full-state cost.
                    try:
                        chain = self.restore_chain(checkpoint,
                                                   instance.name)
                    except ChangelogChainError:
                        chain = None
                    if chain is not None:
                        full_bytes = min(full_bytes, sum(
                            seg.restore_tail_bytes for seg in chain))
                total_bytes += full_bytes
        job.inflight_state.clear()

        # 2. Restart + restore costs.
        yield sim.timeout(self.restart_seconds)
        if total_bytes > 0:
            yield sim.timeout(total_bytes / self.restore_bandwidth)

        # 3. Restore state, routing and source offsets.  Ownership is
        # derived from where the snapshots hold each group's bytes, so a
        # checkpoint cut mid-migration restores the mixed assignment it
        # actually captured.
        for op_name, owner_map in derived.items():
            assignment = KeyGroupAssignment(
                job.graph.num_key_groups,
                len(job.instances(op_name)), owner_map)
            job.assignments[op_name] = assignment
            for _sender, edge in job.senders_to(op_name):
                for kg, owner in owner_map.items():
                    edge.set_routing(kg, owner)
        for instance in instances:
            snapshot = checkpoint.snapshots.get(instance.name)
            owner_map = derived.get(instance.spec.name)
            if snapshot is None:
                # Added after the checkpoint: starts empty, receives no
                # routed records under the restored assignment.
                if instance.spec.keyed:
                    instance.state._groups = {}
                    if hasattr(instance.state, "restart_changelog"):
                        instance.state.restart_changelog()
                continue
            restored = {}
            for kg, group in snapshot.state.items():
                if group.status in (StateStatus.MIGRATED_OUT,
                                    StateStatus.INCOMING):
                    continue
                if owner_map is not None \
                        and owner_map.get(kg) != instance.index:
                    continue
                restored[kg] = KeyGroupState(
                    key_group=kg, status=StateStatus.LOCAL,
                    size_bytes=group.size_bytes,
                    entries=dict(group.entries))
            if owner_map is not None:
                # Groups this instance owns but no snapshot held bytes for
                # (fallback-assigned): start them empty and LOCAL.
                for kg, owner in owner_map.items():
                    if owner == instance.index and kg not in restored:
                        restored[kg] = KeyGroupState(
                            key_group=kg, status=StateStatus.LOCAL)
            instance.state._groups = restored
            if hasattr(instance.state, "restart_changelog"):
                # Re-anchor: the pre-failure log is meaningless against
                # the restored state; the next cut carries a whole-state
                # image so later chains anchor past the restore.
                instance.state.restart_changelog()
            instance.current_watermark = float("-inf")
            for input_channel in instance.input_channels:
                if not input_channel.is_auxiliary:
                    input_channel.watermark = float("-inf")
            if (isinstance(instance, SourceInstance)
                    and snapshot.source_offset is not None):
                instance.rewind_to(snapshot.source_offset)

        # 3.5 Re-inject compensation records: pre-cut records whose effect
        # the snapshots cannot contain (applied after their key-group's
        # capture, or stranded on an alignment-free lane at the crash).
        # They go to the restored owner's input queue ahead of replay; the
        # list stays with the checkpoint so a second failure restoring the
        # same checkpoint re-injects them again.
        for op, kg, record in checkpoint.pending_records:
            owner_map = derived.get(op)
            owner = None if owner_map is None else owner_map.get(kg)
            if owner is None:
                continue
            targets = job.instances(op)
            if owner >= len(targets):
                continue
            for input_channel in targets[owner].input_channels:
                if not input_channel.is_auxiliary:
                    input_channel.deliver(record)
                    break

        # 4. Resume.
        for instance in instances:
            instance.abandon_work = False
            instance.resume()
        if restore_span is not None:
            job.telemetry.tracer.end(restore_span,
                                     restored_bytes=total_bytes)
        self._release_barrier()
        self._settle(None, checkpoint.checkpoint_id)
