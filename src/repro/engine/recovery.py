"""Checkpoint-based failure recovery (the fault-tolerance half of §IV-C).

The scaling mechanisms coexist with Flink-style fault tolerance; this
module completes the substrate: snapshots taken by the aligned-checkpoint
machinery are *retained* (state copies + source offsets), and a failure
rolls the whole job back to the newest completed checkpoint —

1. every instance pauses, all in-flight channel contents are discarded,
2. each instance's keyed state is restored from its snapshot,
3. sources rewind to their checkpointed offsets and replay,
4. processing resumes after a restart delay + state-restore time.

Semantics delivered (matching Flink without transactional sinks):
**exactly-once state** — post-recovery keyed state reflects each input
record exactly once — and **at-least-once output** (records processed
between the checkpoint and the failure are emitted again on replay).

Limitations (documented, asserted): recovery must not race an in-flight
scaling operation — complete or cancel it first; the topology restored is
the one current at the checkpoint, so checkpoints taken after a rescale
restore the rescaled deployment naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .operators import OperatorInstance
from .records import CheckpointBarrier
from .runtime import SourceInstance, StreamJob
from .state import KeyGroupState, StateStatus

__all__ = ["RecoveryManager", "RecoveryError"]


class RecoveryError(RuntimeError):
    """Raised when recovery is impossible (no checkpoint, scaling active)."""


@dataclass
class _InstanceSnapshot:
    state: Dict[int, KeyGroupState]
    #: For sources: how many admitted elements had been consumed.
    source_offset: Optional[int] = None


@dataclass
class _Checkpoint:
    checkpoint_id: int
    #: instance name -> snapshot
    snapshots: Dict[str, _InstanceSnapshot] = field(default_factory=dict)
    completed_at: Optional[float] = None
    #: True when any snapshot of this checkpoint was taken while a scaling
    #: operation was in flight: migrating state may be double- or
    #: un-snapshotted (the paper's §IV-C folds scaling state into the
    #: snapshot to close this gap; we conservatively skip such
    #: checkpoints at restore time instead).
    tainted: bool = False
    #: Key-group assignments at checkpoint time, restored with the state so
    #: routing matches where the state lands.
    assignments: Dict[str, object] = field(default_factory=dict)


class RecoveryManager:
    """Retains checkpoint snapshots and performs rollback recovery."""

    def __init__(self, job: StreamJob,
                 restart_seconds: float = 1.0,
                 restore_bandwidth: float = 400e6):
        self.job = job
        self.restart_seconds = restart_seconds
        self.restore_bandwidth = restore_bandwidth
        self._checkpoints: Dict[int, _Checkpoint] = {}
        self.recoveries: List[Tuple[float, int]] = []
        self._installed = False

    # -- installation ------------------------------------------------------------

    def install(self) -> "RecoveryManager":
        """Start retaining snapshots; sources begin keeping replay history."""
        if self._installed:
            return self
        self._installed = True
        self.job.snapshot_listener = self._on_snapshot
        for source in self.job.sources():
            source.enable_replay_history()
        return self

    def _on_snapshot(self, instance: OperatorInstance,
                     barrier: CheckpointBarrier) -> None:
        checkpoint = self._checkpoints.get(barrier.checkpoint_id)
        if checkpoint is None:
            checkpoint = _Checkpoint(
                barrier.checkpoint_id,
                assignments={op: assignment.copy()
                             for op, assignment
                             in self.job.assignments.items()})
            self._checkpoints[barrier.checkpoint_id] = checkpoint
        if self.job.scaling_active:
            checkpoint.tainted = True
        snapshot = _InstanceSnapshot(state=instance.state.snapshot())
        if isinstance(instance, SourceInstance):
            snapshot.source_offset = instance.consumed_elements
        checkpoint.snapshots[instance.name] = snapshot
        if self._covers_everything(checkpoint):
            checkpoint.completed_at = self.job.sim.now

    def _covers_everything(self, checkpoint: _Checkpoint) -> bool:
        names = {inst.name for inst in self.job.all_instances()
                 if inst.running or inst.paused}
        return set(checkpoint.snapshots) >= names

    # -- queries --------------------------------------------------------------------

    def latest_completed(self) -> Optional[_Checkpoint]:
        """Newest complete, restorable (non-tainted) checkpoint."""
        done = [c for c in self._checkpoints.values()
                if c.completed_at is not None and not c.tainted]
        return max(done, key=lambda c: c.checkpoint_id) if done else None

    # -- recovery ---------------------------------------------------------------------

    def fail_and_recover(self) -> "object":
        """Simulate a failure now; returns an Event firing when recovered.

        Rolls every instance back to the newest completed checkpoint and
        replays sources from their checkpointed offsets.
        """
        if not self._installed:
            raise RecoveryError("RecoveryManager not installed")
        checkpoint = self.latest_completed()
        if checkpoint is None:
            raise RecoveryError("no completed checkpoint to recover from")
        if self.job.scaling_active:
            raise RecoveryError(
                "a scaling operation is in flight; complete or cancel it "
                "before injecting a failure")
        done = self.job.sim.event()
        self.job.sim.spawn(self._recover(checkpoint, done),
                           name=f"recover:ckpt-{checkpoint.checkpoint_id}")
        return done

    def _recover(self, checkpoint: _Checkpoint, done):
        job = self.job
        sim = job.sim
        self.recoveries.append((sim.now, checkpoint.checkpoint_id))
        restore_span = None
        if job.telemetry is not None:
            restore_span = job.telemetry.tracer.begin(
                "recovery.restore", category="recovery", track="recovery",
                checkpoint_id=checkpoint.checkpoint_id)

        # 1. Halt everything and discard in-flight data.
        instances = job.all_instances()
        for instance in instances:
            instance.pause()
        total_bytes = 0.0
        for instance in instances:
            for channel in instance.router.all_channels():
                channel.flush()
            for input_channel in instance.input_channels:
                input_channel.queue.clear()
                input_channel.block_tokens.clear()
            instance._pending_checkpoint.clear()
            snapshot = checkpoint.snapshots.get(instance.name)
            if snapshot is not None:
                total_bytes += sum(g.size_bytes
                                   for g in snapshot.state.values())

        # 2. Restart + restore costs.
        yield sim.timeout(self.restart_seconds)
        if total_bytes > 0:
            yield sim.timeout(total_bytes / self.restore_bandwidth)

        # 3. Restore state, routing and source offsets.
        current_names = {inst.name for inst in instances}
        missing = set(checkpoint.snapshots) - current_names
        if missing:
            raise RecoveryError(
                f"checkpoint {checkpoint.checkpoint_id} covers "
                f"decommissioned instances {sorted(missing)}; no "
                "restorable checkpoint exists")
        for op_name, assignment in checkpoint.assignments.items():
            job.assignments[op_name] = assignment.copy()
            for _sender, edge in job.senders_to(op_name):
                for kg, owner in assignment.as_dict().items():
                    edge.set_routing(kg, owner)
        for instance in instances:
            snapshot = checkpoint.snapshots.get(instance.name)
            if snapshot is None:
                # Added after the checkpoint: starts empty, receives no
                # routed records under the restored assignment.
                if instance.spec.keyed:
                    instance.state._groups = {}
                continue
            restored = {}
            for kg, group in snapshot.state.items():
                restored[kg] = KeyGroupState(
                    key_group=kg, status=StateStatus.LOCAL,
                    size_bytes=group.size_bytes,
                    entries=dict(group.entries))
            instance.state._groups = restored
            instance.current_watermark = float("-inf")
            for input_channel in instance.input_channels:
                if not input_channel.is_auxiliary:
                    input_channel.watermark = float("-inf")
            if (isinstance(instance, SourceInstance)
                    and snapshot.source_offset is not None):
                instance.rewind_to(snapshot.source_offset)

        # 4. Resume.
        for instance in instances:
            instance.resume()
        if restore_span is not None:
            job.telemetry.tracer.end(restore_span,
                                     restored_bytes=total_bytes)
        done.succeed(checkpoint.checkpoint_id)
