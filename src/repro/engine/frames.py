"""Columnar cut-edge frames for the sharded shared-memory transport.

One frame is one flush from an upstream shard to a downstream shard: a
struct-packed header carrying the piggybacked grant, then the staged
cut-edge messages.  ``RecordBatch`` payloads — the hot path at paper scale
— are shipped as *columns*: seven packed numeric arrays (visible/event/
created times, sizes, counts, record ids, key groups) plus one pickle for
the object-typed remainder (keys, values, lineage).  That single pickle
per frame replaces one pickle traversal per Record, which is where the
pipe transport burned its cross-shard budget (see docs/performance.md).

Watermarks — the bulk of cut-edge *messages* — are pure structs (no
pickle at all).  Anything else (latency markers, barriers, control
signals, and batches whose columnar encode fails) rides the trailing
pickle blob verbatim: the fallback keeps the codec total without
sacrificing the fast paths.

Bit-exactness contract: floats round-trip through ``<d`` (IEEE-754
binary64, the in-memory representation), ints through ``<q``, and object
payloads through pickle exactly as the pipe transport moved them — so a
decoded element is indistinguishable from its pipe-transported twin and
the sharded equivalence bar (byte-identical sink dumps, state digests,
watermark traces) is unaffected by transport choice.

Column arrays are reused from the columnar record plane when available:
``RecordBatch.columns()`` views serialize via ``ndarray.tobytes`` (a
memcpy) instead of per-field Python loops.
"""

from __future__ import annotations

import pickle
import struct
import sys
from typing import Any, Iterable, List, Tuple

from .columnar import HAVE_NUMPY
from .records import Record, RecordBatch, Watermark

__all__ = ["encode_frame", "decode_frame"]

#: numpy ``tobytes`` only matches the ``<d``/``<q`` wire format on
#: little-endian hosts; elsewhere the struct path is used for encode.
_NATIVE_LE = sys.byteorder == "little"
_PROTO = pickle.HIGHEST_PROTOCOL

#: Frame header: grant f64, flags u8 (bit0 = final), message count u32,
#: object-tail pickle length u32 (the tail is the frame's final bytes).
_FRAME_HDR = struct.Struct("<dBII")
FLAG_FINAL = 0x01

#: Per-message header: wire kind u8, channel id u32, delivery time f64.
_MSG_HDR = struct.Struct("<BId")
_MSG_BATCH = 0      # columnar RecordBatch ("b")
_MSG_ELEMENT = 1    # pickled element ("e")
_MSG_CONTROL = 2    # pickled control payload ("c")
_MSG_WATERMARK = 3  # struct-packed Watermark ("e")
_MSG_PICKLED_BATCH = 4  # whole-batch pickle fallback ("b")

#: Batch section header: nrec u32, next_index u32, column flags u8,
#: batch size_bytes f64.
_BATCH_HDR = struct.Struct("<IIBd")
_COL_LINEAGE = 0x01   # object tail carries (keys, values, origins, seqs)
_COL_VISIBLE = 0x02   # visible_times column present

_WM = struct.Struct("<dd")  # timestamp, size_bytes

_WIRE_KIND = {_MSG_BATCH: "b", _MSG_PICKLED_BATCH: "b",
              _MSG_ELEMENT: "e", _MSG_WATERMARK: "e",
              _MSG_CONTROL: "c"}


def _pack_f64(values: Iterable[float], n: int) -> bytes:
    return struct.pack(f"<{n}d", *values)


def _pack_i64(values: Iterable[int], n: int) -> bytes:
    return struct.pack(f"<{n}q", *values)


def _encode_batch(batch: RecordBatch, parts: List[bytes],
                  objtail: List[Any]) -> None:
    records = batch.records
    n = len(records)
    flags = 0
    vts = batch.visible_times
    if vts is not None:
        flags |= _COL_VISIBLE
    lineage = any(r.src_origin is not None for r in records)
    if lineage:
        flags |= _COL_LINEAGE
    parts.append(_BATCH_HDR.pack(n, batch.next_index, flags,
                                 batch.size_bytes))
    cols = batch.columns() if (_NATIVE_LE and HAVE_NUMPY) else None
    if vts is not None:
        if cols is not None and cols.visible_time is not None:
            parts.append(cols.visible_time.tobytes())
        else:
            parts.append(_pack_f64(vts, n))
    if cols is not None:
        parts.append(cols.event_time.tobytes())
    else:
        parts.append(_pack_f64((r.event_time for r in records), n))
    parts.append(_pack_f64((r.created_at for r in records), n))
    if cols is not None:
        parts.append(cols.size_bytes.tobytes())
        parts.append(cols.count.tobytes())
    else:
        parts.append(_pack_f64((r.size_bytes for r in records), n))
        parts.append(_pack_i64((r.count for r in records), n))
    parts.append(_pack_i64((r.record_id for r in records), n))
    # Key-group -1 encodes None (real key groups are always >= 0).
    if cols is not None:
        parts.append(cols.key_group.tobytes())
    else:
        parts.append(_pack_i64(
            (-1 if r.key_group is None else r.key_group for r in records),
            n))
    if lineage:
        objtail.append((tuple(r.key for r in records),
                        tuple(r.value for r in records),
                        tuple(r.src_origin for r in records),
                        tuple(r.src_seq for r in records)))
    else:
        objtail.append((tuple(r.key for r in records),
                        tuple(r.value for r in records)))


def encode_frame(msgs: Iterable[Tuple[str, int, float, Any]],
                 grant: float, final: bool = False,
                 stats: Any = None) -> bytes:
    """Encode staged cut-edge messages plus the piggybacked grant.

    ``msgs`` entries are ``(kind, cid, t, element)`` exactly as the
    egress endpoints stage them (kind "e"/"b"/"c").  The byte string is
    self-contained: safe to hand to any transport and decode later even
    if the caller clears/mutates ``msgs`` or the elements afterwards
    (object payloads are captured via pickle at encode time).

    ``stats``, when given, is an object with a ``batch_fallbacks``
    counter bumped for every batch that had to take the whole-pickle
    fallback path.
    """
    parts: List[bytes] = [b""]  # placeholder for the frame header
    objtail: List[Any] = []
    nmsg = 0
    for kind, cid, t, element in msgs:
        nmsg += 1
        if kind == "b":
            mark = len(parts)
            tail_mark = len(objtail)
            parts.append(_MSG_HDR.pack(_MSG_BATCH, cid, t))
            try:
                _encode_batch(element, parts, objtail)
            except (struct.error, TypeError, ValueError, OverflowError):
                # Non-columnar payload (exotic field types): fall back to
                # pickling the whole carrier, minus any cached numpy view.
                del parts[mark:]
                del objtail[tail_mark:]
                parts.append(_MSG_HDR.pack(_MSG_PICKLED_BATCH, cid, t))
                element._columns = None
                objtail.append(element)
                if stats is not None:
                    stats.batch_fallbacks += 1
        elif kind == "e":
            if type(element) is Watermark:
                parts.append(_MSG_HDR.pack(_MSG_WATERMARK, cid, t))
                parts.append(_WM.pack(element.timestamp,
                                      element.size_bytes))
            else:
                parts.append(_MSG_HDR.pack(_MSG_ELEMENT, cid, t))
                objtail.append(element)
        else:  # "c"
            parts.append(_MSG_HDR.pack(_MSG_CONTROL, cid, t))
            objtail.append(element)
    blob = pickle.dumps(objtail, _PROTO) if objtail else b""
    parts[0] = _FRAME_HDR.pack(grant, FLAG_FINAL if final else 0, nmsg,
                               len(blob))
    parts.append(blob)
    return b"".join(parts)


def _decode_batch(data: bytes, off: int, objtail: List[Any],
                  obj_idx: int) -> Tuple[RecordBatch, int, int]:
    n, next_index, flags, size_bytes = _BATCH_HDR.unpack_from(data, off)
    off += _BATCH_HDR.size
    f64 = struct.Struct(f"<{n}d")
    i64 = struct.Struct(f"<{n}q")
    if flags & _COL_VISIBLE:
        visible_times: Any = list(f64.unpack_from(data, off))
        off += f64.size
    else:
        visible_times = None
    event_time = f64.unpack_from(data, off); off += f64.size
    created_at = f64.unpack_from(data, off); off += f64.size
    sizes = f64.unpack_from(data, off); off += f64.size
    counts = i64.unpack_from(data, off); off += i64.size
    record_ids = i64.unpack_from(data, off); off += i64.size
    key_groups = i64.unpack_from(data, off); off += i64.size
    entry = objtail[obj_idx]
    if flags & _COL_LINEAGE:
        keys, values, origins, seqs = entry
    else:
        keys, values = entry
        origins = seqs = None
    records = []
    append = records.append
    for i in range(n):
        rec = Record.__new__(Record)
        rec.key = keys[i]
        kg = key_groups[i]
        rec.key_group = None if kg == -1 else kg
        rec.event_time = event_time[i]
        rec.value = values[i]
        rec.count = counts[i]
        rec.size_bytes = sizes[i]
        rec.created_at = created_at[i]
        rec.record_id = record_ids[i]
        if origins is not None:
            rec.src_origin = origins[i]
            rec.src_seq = seqs[i]
        else:
            rec.src_origin = None
            rec.src_seq = None
        append(rec)
    batch = RecordBatch.__new__(RecordBatch)
    batch.records = records
    batch.visible_times = visible_times
    batch.next_index = next_index
    batch.size_bytes = size_bytes
    batch._columns = None
    return batch, off, obj_idx + 1


def decode_frame(data: bytes) -> Tuple[float, bool,
                                       List[Tuple[str, int, float, Any]]]:
    """Inverse of :func:`encode_frame`: ``(grant, final, msgs)``."""
    grant, hflags, nmsg, blob_len = _FRAME_HDR.unpack_from(data, 0)
    off = _FRAME_HDR.size
    objtail: List[Any] = (
        pickle.loads(data[len(data) - blob_len:]) if blob_len else [])
    obj_idx = 0
    msgs: List[Tuple[str, int, float, Any]] = []
    for _ in range(nmsg):
        mkind, cid, t = _MSG_HDR.unpack_from(data, off)
        off += _MSG_HDR.size
        if mkind == _MSG_BATCH:
            element, off, obj_idx = _decode_batch(data, off, objtail,
                                                  obj_idx)
        elif mkind == _MSG_WATERMARK:
            ts, sb = _WM.unpack_from(data, off)
            off += _WM.size
            element = Watermark.__new__(Watermark)
            element.timestamp = ts
            element.size_bytes = sb
        else:
            element = objtail[obj_idx]
            obj_idx += 1
        msgs.append((_WIRE_KIND[mkind], cid, t, element))
    return grant, bool(hflags & FLAG_FINAL), msgs
