"""Runtime metrics: end-to-end latency, throughput, backlog.

The collector mirrors the paper's measurement methodology (§V-A):

* **End-to-end latency** comes from periodically injected latency markers
  that flow through the system as regular records but bypass windowing.
  Marker latency includes source-admission (Kafka-transit-equivalent) time,
  so backpressure on sources shows up in the latency signal.
* **Throughput** is the output rate of source operators over fixed windows,
  covering both ingest consumption and internal generation.

**Empty-input contract**: every summary helper in this module is total over
empty inputs — :func:`percentile`, :func:`series_peak` and
:func:`series_mean` all return ``0.0`` when given no samples, matching the
zero-filled dict :meth:`MetricsCollector.latency_stats` returns for an empty
window.  Measurement windows that happen to contain no markers (warm-up,
short scaling windows) are ordinary, not exceptional; only genuinely
malformed arguments (``pct`` outside [0, 100], non-positive windows) raise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["MetricsCollector", "series_peak", "series_mean", "percentile"]


class MetricsCollector:
    """Central sink for measurements produced during one simulated run."""

    def __init__(self):
        self.latency_samples: List[Tuple[float, float]] = []
        self._source_events: List[Tuple[float, int]] = []
        self._sink_events: List[Tuple[float, int]] = []
        self.custom: Dict[str, List[Tuple[float, float]]] = {}

    # -- recording -------------------------------------------------------------

    def record_latency(self, time: float, latency: float) -> None:
        self.latency_samples.append((time, latency))

    def record_source_output(self, time: float, count: int) -> None:
        self._source_events.append((time, count))

    def record_sink_input(self, time: float, count: int) -> None:
        self._sink_events.append((time, count))

    def record_custom(self, name: str, time: float, value: float) -> None:
        self.custom.setdefault(name, []).append((time, value))

    # -- series ------------------------------------------------------------------

    def latency_series(self) -> List[Tuple[float, float]]:
        return list(self.latency_samples)

    def throughput_series(self, window: float = 1.0,
                          start: float = 0.0,
                          end: Optional[float] = None
                          ) -> List[Tuple[float, float]]:
        """Source output rate (records/s) per ``window``-second bucket."""
        return _rate_series(self._source_events, window, start, end)

    def sink_rate_series(self, window: float = 1.0,
                         start: float = 0.0,
                         end: Optional[float] = None
                         ) -> List[Tuple[float, float]]:
        return _rate_series(self._sink_events, window, start, end)

    def total_source_output(self, start: float = 0.0,
                            end: float = math.inf) -> int:
        return sum(c for t, c in self._source_events if start <= t < end)

    def total_sink_input(self, start: float = 0.0,
                         end: float = math.inf) -> int:
        return sum(c for t, c in self._sink_events if start <= t < end)

    # -- scalar summaries ----------------------------------------------------------

    def latency_stats(self, start: float = 0.0, end: float = math.inf
                      ) -> Dict[str, float]:
        values = [v for t, v in self.latency_samples if start <= t < end]
        if not values:
            return {"peak": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "count": 0}
        return {
            "peak": max(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
            "count": len(values),
        }


def _rate_series(events: Sequence[Tuple[float, int]], window: float,
                 start: float, end: Optional[float]
                 ) -> List[Tuple[float, float]]:
    if window <= 0:
        raise ValueError("window must be positive")
    if not events:
        return []
    if end is None:
        end = max(t for t, _c in events) + window
    buckets: Dict[int, int] = {}
    for t, count in events:
        if t < start or t >= end:
            continue
        buckets[int((t - start) // window)] = (
            buckets.get(int((t - start) // window), 0) + count)
    n_buckets = int(math.ceil((end - start) / window))
    series = []
    for i in range(n_buckets):
        series.append((start + (i + 0.5) * window,
                       buckets.get(i, 0) / window))
    return series


def series_peak(series: Sequence[Tuple[float, float]],
                start: float = 0.0, end: float = math.inf) -> float:
    values = [v for t, v in series if start <= t < end]
    return max(values) if values else 0.0


def series_mean(series: Sequence[Tuple[float, float]],
                start: float = 0.0, end: float = math.inf) -> float:
    values = [v for t, v in series if start <= t < end]
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``values`` (pct in [0, 100]).

    Returns 0.0 for empty input (see the module's empty-input contract);
    a ``pct`` outside [0, 100] is a programming error and raises.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # a + (b - a) * frac, not a*(1-frac) + b*frac: the latter can lose an
    # ulp and break monotonicity in pct when neighbours are (nearly) equal.
    return ordered[low] + (ordered[high] - ordered[low]) * frac
