"""Key-group partitioned state backend and state-transfer cost model.

State is organised exactly as the mechanisms need it: per key-group, with a
nominal byte size (drives transfer/snapshot costs) plus real per-key entries
(drives correctness tests), and a status machine covering the migration
lifecycle on both ends:

=================  ==========================================================
``LOCAL``          owned and active here; records may be processed.
``PENDING_OUT``    selected for migration but not yet extracted; still
                   processable (the paper's ``R4`` case in Fig. 4b).
``MIGRATED_OUT``   extracted and shipped; records for it must be re-routed.
``INCOMING``       expected here, bytes not yet arrived; records suspend.
``INACTIVE``       bytes arrived but implicit alignment not achieved
                   (the paper's ``S3`` inactive→active transition, Fig. 4d).
=================  ==========================================================

Sub-key-groups (used by the Meces baseline's Hierarchical State
Organization) divide one key-group into equal slices that can be fetched
independently.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "StateStatus",
    "KeyGroupState",
    "KeyedStateBackend",
    "StateTransferCostModel",
]


class StateStatus(enum.Enum):
    LOCAL = "local"
    PENDING_OUT = "pending_out"
    MIGRATED_OUT = "migrated_out"
    INCOMING = "incoming"
    INACTIVE = "inactive"


#: Process-wide version stamp source for :attr:`KeyGroupState.version`.
#: Global (not per-group) so a dropped-and-re-registered key-group can never
#: reuse a version an observer memoised for the old incarnation.
_versions = itertools.count()


@dataclass
class KeyGroupState:
    """All state of one key-group on one instance."""

    key_group: int
    status: StateStatus = StateStatus.LOCAL
    size_bytes: float = 0.0
    entries: Dict[Any, Any] = field(default_factory=dict)
    #: Number of sub-key-groups (Meces hierarchical organisation); the
    #: fraction of sub-groups locally present when partially fetched.
    sub_groups_present: Optional[set] = None
    #: Bulk-mutation stamp: any code path that replaces or merges
    #: ``entries`` wholesale (migration install, rollback, recovery merge)
    #: must call :meth:`bump_version`.  Operator logics that cache derived
    #: views of ``entries`` (e.g. the window operators' fire-floor memo)
    #: validate against this stamp; the owning logic's *own* incremental
    #: mutations maintain the cache in place and need no bump.
    version: int = field(default_factory=lambda: next(_versions))

    @property
    def processable(self) -> bool:
        return self.status in (StateStatus.LOCAL, StateStatus.PENDING_OUT)

    def bump_version(self) -> None:
        """Invalidate observers' memoised views of :attr:`entries`."""
        self.version = next(_versions)


class KeyedStateBackend:
    """Per-instance keyed state store, organised by key-group."""

    def __init__(self, bytes_per_entry: float = 256.0):
        self.bytes_per_entry = bytes_per_entry
        self._groups: Dict[int, KeyGroupState] = {}

    # -- ownership ------------------------------------------------------------

    def register_group(self, key_group: int,
                       status: StateStatus = StateStatus.LOCAL,
                       size_bytes: float = 0.0) -> KeyGroupState:
        group = KeyGroupState(key_group=key_group, status=status,
                              size_bytes=size_bytes)
        self._groups[key_group] = group
        return group

    def group(self, key_group: int) -> Optional[KeyGroupState]:
        return self._groups.get(key_group)

    def require_group(self, key_group: int) -> KeyGroupState:
        group = self._groups.get(key_group)
        if group is None:
            raise KeyError(f"key-group {key_group} not present")
        return group

    def drop_group(self, key_group: int) -> KeyGroupState:
        return self._groups.pop(key_group)

    def install_group(self, key_group: int, entries: Dict[Any, Any],
                      size_bytes: float,
                      status: StateStatus = StateStatus.LOCAL,
                      sub_groups_present: Optional[set] = None
                      ) -> KeyGroupState:
        """Install a key-group's bytes wholesale (migration arrival or
        rollback), replacing any stub registered for it."""
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group, status)
        group.entries = entries
        group.size_bytes = size_bytes
        group.status = status
        group.sub_groups_present = sub_groups_present
        group.bump_version()
        return group

    def groups(self) -> List[KeyGroupState]:
        return list(self._groups.values())

    def owned_groups(self) -> List[int]:
        return sorted(kg for kg, g in self._groups.items()
                      if g.status in (StateStatus.LOCAL,
                                      StateStatus.PENDING_OUT))

    def has_processable(self, key_group: int) -> bool:
        group = self._groups.get(key_group)
        return group is not None and group.processable

    # -- value access (used by operator logics) --------------------------------

    def get(self, key_group: int, key: Any, default: Any = None) -> Any:
        group = self._groups.get(key_group)
        if group is None:
            return default
        return group.entries.get(key, default)

    def put(self, key_group: int, key: Any, value: Any) -> None:
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group)
        if key not in group.entries:
            group.size_bytes += self.bytes_per_entry
        group.entries[key] = value

    def delete(self, key_group: int, key: Any) -> None:
        group = self._groups.get(key_group)
        if group is not None and key in group.entries:
            del group.entries[key]
            group.size_bytes = max(0.0,
                                   group.size_bytes - self.bytes_per_entry)

    def add_bytes(self, key_group: int, delta: float) -> None:
        """Adjust the nominal size of a key-group (window panes etc.)."""
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group)
        group.size_bytes = max(0.0, group.size_bytes + delta)

    # -- aggregates -------------------------------------------------------------

    def total_bytes(self) -> float:
        return sum(g.size_bytes for g in self._groups.values())

    def snapshot(self) -> Dict[int, KeyGroupState]:
        """A structural copy for checkpoints (entries shared copy-on-write
        is unnecessary in simulation; we copy dicts)."""
        copied = {}
        for kg, group in self._groups.items():
            copied[kg] = KeyGroupState(
                key_group=kg, status=group.status,
                size_bytes=group.size_bytes,
                entries=dict(group.entries),
            )
        return copied


@dataclass
class StateTransferCostModel:
    """Costs that make up the paper's inherent overhead :math:`L_o`.

    ``extract_seconds_per_group`` models state extraction + serialization
    set-up per migration unit; bytes then move at the link bandwidth (shared
    with data traffic is approximated by a dedicated fraction).
    """

    extract_seconds_per_group: float = 0.002
    #: Fraction of link bandwidth state transfer may use (data keeps flowing).
    bandwidth_fraction: float = 0.5
    #: Fixed per-transfer handshake overhead (seconds).
    handshake_seconds: float = 0.001

    def transfer_seconds(self, size_bytes: float, bandwidth: float,
                         latency: float) -> float:
        effective = max(bandwidth * self.bandwidth_fraction, 1.0)
        return (self.handshake_seconds + latency
                + size_bytes / effective)
