"""Key-group partitioned state backend and state-transfer cost model.

State is organised exactly as the mechanisms need it: per key-group, with a
nominal byte size (drives transfer/snapshot costs) plus real per-key entries
(drives correctness tests), and a status machine covering the migration
lifecycle on both ends:

=================  ==========================================================
``LOCAL``          owned and active here; records may be processed.
``PENDING_OUT``    selected for migration but not yet extracted; still
                   processable (the paper's ``R4`` case in Fig. 4b).
``MIGRATED_OUT``   extracted and shipped; records for it must be re-routed.
``INCOMING``       expected here, bytes not yet arrived; records suspend.
``INACTIVE``       bytes arrived but implicit alignment not achieved
                   (the paper's ``S3`` inactive→active transition, Fig. 4d).
=================  ==========================================================

Sub-key-groups (used by the Meces baseline's Hierarchical State
Organization) divide one key-group into equal slices that can be fetched
independently.

Storage itself is pluggable behind :class:`StateBackend`:

* :class:`DictStateBackend` — the reference in-memory store (full-copy
  snapshots; checkpoints pay for the whole state on the barrier path).
  ``KeyedStateBackend`` remains as a compatibility alias.
* :class:`ChangelogStateBackend` — log-structured: every mutation appends
  to a per-key-group changelog; checkpoints cut *delta segments* (only
  what changed since the previous cut) that are uploaded asynchronously
  off the barrier path, and a background *materialization* periodically
  folds the log into a durable base so the log — and with it the
  recovery-time delta tail — stays bounded.  Restore replays
  materialized base + delta tail (:meth:`ChangelogStateBackend.replay_chain`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "StateStatus",
    "KeyGroupState",
    "StateBackend",
    "DictStateBackend",
    "KeyedStateBackend",
    "ChangelogStateBackend",
    "ChangelogSegment",
    "ChangelogChainError",
    "StateTransferCostModel",
]


class StateStatus(enum.Enum):
    LOCAL = "local"
    PENDING_OUT = "pending_out"
    MIGRATED_OUT = "migrated_out"
    INCOMING = "incoming"
    INACTIVE = "inactive"


#: Process-wide version stamp source for :attr:`KeyGroupState.version`.
#: Global (not per-group) so a dropped-and-re-registered key-group can never
#: reuse a version an observer memoised for the old incarnation.
_versions = itertools.count()


@dataclass
class KeyGroupState:
    """All state of one key-group on one instance."""

    key_group: int
    status: StateStatus = StateStatus.LOCAL
    size_bytes: float = 0.0
    entries: Dict[Any, Any] = field(default_factory=dict)
    #: Number of sub-key-groups (Meces hierarchical organisation); the
    #: fraction of sub-groups locally present when partially fetched.
    sub_groups_present: Optional[set] = None
    #: Bulk-mutation stamp: any code path that replaces or merges
    #: ``entries`` wholesale (migration install, rollback, recovery merge)
    #: must call :meth:`bump_version`.  Operator logics that cache derived
    #: views of ``entries`` (e.g. the window operators' fire-floor memo)
    #: validate against this stamp; the owning logic's *own* incremental
    #: mutations maintain the cache in place and need no bump.
    version: int = field(default_factory=lambda: next(_versions))

    @property
    def processable(self) -> bool:
        return self.status in (StateStatus.LOCAL, StateStatus.PENDING_OUT)

    def bump_version(self) -> None:
        """Invalidate observers' memoised views of :attr:`entries`."""
        self.version = next(_versions)


class StateBackend:
    """Abstract per-instance keyed state store, organised by key-group.

    Concrete backends must provide the full ownership / value-access /
    aggregate surface below.  The two checkpoint-facing hooks are what
    distinguish backends:

    * :meth:`checkpoint_sync_bytes` — bytes charged *synchronously* on the
      barrier path when a checkpoint barrier aligns.  Full-copy backends
      pay the whole state; incremental backends pay a small constant
      manifest and move the real bytes asynchronously.
    * :attr:`is_incremental` — whether checkpoints are cut as delta
      segments that must be uploaded (and chained) before the checkpoint
      can complete.
    """

    #: Stable identifier used by config plumbing and reports.
    name = "abstract"
    #: Incremental backends cut delta segments + async uploads.
    is_incremental = False

    # -- ownership ------------------------------------------------------------
    def register_group(self, key_group: int,
                       status: StateStatus = StateStatus.LOCAL,
                       size_bytes: float = 0.0) -> KeyGroupState:
        raise NotImplementedError

    def group(self, key_group: int) -> Optional[KeyGroupState]:
        raise NotImplementedError

    def require_group(self, key_group: int) -> KeyGroupState:
        raise NotImplementedError

    def drop_group(self, key_group: int) -> KeyGroupState:
        raise NotImplementedError

    def install_group(self, key_group: int, entries: Dict[Any, Any],
                      size_bytes: float,
                      status: StateStatus = StateStatus.LOCAL,
                      sub_groups_present: Optional[set] = None
                      ) -> KeyGroupState:
        raise NotImplementedError

    def groups(self) -> List[KeyGroupState]:
        raise NotImplementedError

    def owned_groups(self) -> List[int]:
        raise NotImplementedError

    def has_processable(self, key_group: int) -> bool:
        raise NotImplementedError

    # -- value access (used by operator logics) -------------------------------
    def get(self, key_group: int, key: Any, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, key_group: int, key: Any, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key_group: int, key: Any) -> None:
        raise NotImplementedError

    def add_bytes(self, key_group: int, delta: float) -> None:
        raise NotImplementedError

    # -- aggregates -----------------------------------------------------------
    def total_bytes(self) -> float:
        raise NotImplementedError

    def snapshot(self) -> Dict[int, KeyGroupState]:
        raise NotImplementedError

    # -- checkpoint surface ---------------------------------------------------
    def checkpoint_sync_bytes(self) -> float:
        """Bytes serialized synchronously on the barrier path."""
        return self.total_bytes()


class DictStateBackend(StateBackend):
    """Reference in-memory store: full-copy snapshots, synchronous
    checkpoint cost proportional to total state size."""

    name = "dict"

    def __init__(self, bytes_per_entry: float = 256.0):
        self.bytes_per_entry = bytes_per_entry
        self._groups: Dict[int, KeyGroupState] = {}

    # -- ownership ------------------------------------------------------------

    def register_group(self, key_group: int,
                       status: StateStatus = StateStatus.LOCAL,
                       size_bytes: float = 0.0) -> KeyGroupState:
        group = KeyGroupState(key_group=key_group, status=status,
                              size_bytes=size_bytes)
        self._groups[key_group] = group
        return group

    def group(self, key_group: int) -> Optional[KeyGroupState]:
        return self._groups.get(key_group)

    def require_group(self, key_group: int) -> KeyGroupState:
        group = self._groups.get(key_group)
        if group is None:
            raise KeyError(f"key-group {key_group} not present")
        return group

    def drop_group(self, key_group: int) -> KeyGroupState:
        return self._groups.pop(key_group)

    def install_group(self, key_group: int, entries: Dict[Any, Any],
                      size_bytes: float,
                      status: StateStatus = StateStatus.LOCAL,
                      sub_groups_present: Optional[set] = None
                      ) -> KeyGroupState:
        """Install a key-group's bytes wholesale (migration arrival or
        rollback), replacing any stub registered for it."""
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group, status)
        group.entries = entries
        group.size_bytes = size_bytes
        group.status = status
        group.sub_groups_present = sub_groups_present
        group.bump_version()
        return group

    def groups(self) -> List[KeyGroupState]:
        return list(self._groups.values())

    def owned_groups(self) -> List[int]:
        return sorted(kg for kg, g in self._groups.items()
                      if g.status in (StateStatus.LOCAL,
                                      StateStatus.PENDING_OUT))

    def has_processable(self, key_group: int) -> bool:
        group = self._groups.get(key_group)
        return group is not None and group.processable

    # -- value access (used by operator logics) --------------------------------

    def get(self, key_group: int, key: Any, default: Any = None) -> Any:
        group = self._groups.get(key_group)
        if group is None:
            return default
        return group.entries.get(key, default)

    def put(self, key_group: int, key: Any, value: Any) -> None:
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group)
        if key not in group.entries:
            group.size_bytes += self.bytes_per_entry
        group.entries[key] = value

    def delete(self, key_group: int, key: Any) -> None:
        group = self._groups.get(key_group)
        if group is not None and key in group.entries:
            del group.entries[key]
            group.size_bytes = max(0.0,
                                   group.size_bytes - self.bytes_per_entry)

    def add_bytes(self, key_group: int, delta: float) -> None:
        """Adjust the nominal size of a key-group (window panes etc.)."""
        group = self._groups.get(key_group)
        if group is None:
            group = self.register_group(key_group)
        group.size_bytes = max(0.0, group.size_bytes + delta)

    # -- aggregates -------------------------------------------------------------

    def total_bytes(self) -> float:
        return sum(g.size_bytes for g in self._groups.values())

    def snapshot(self) -> Dict[int, KeyGroupState]:
        """A structural copy for checkpoints (entries shared copy-on-write
        is unnecessary in simulation; we copy dicts)."""
        copied = {}
        for kg, group in self._groups.items():
            copied[kg] = KeyGroupState(
                key_group=kg, status=group.status,
                size_bytes=group.size_bytes,
                entries=dict(group.entries),
            )
        return copied


#: Backwards-compatible alias: the concrete backend historically exposed
#: under this name.  New code should pick a backend explicitly.
KeyedStateBackend = DictStateBackend


class ChangelogChainError(RuntimeError):
    """A delta chain cannot be replayed (gap or missing anchor)."""


@dataclass
class ChangelogSegment:
    """The delta cut for one checkpoint on one instance.

    ``groups`` maps key-group → payload, one of::

        ("full",  entries_copy, size_bytes, status)   # whole-group image
        ("deltas", [op, ...])                         # ops since last cut
        ("drop",)                                     # group vanished

    where each op is ``("put", key, value, size_delta)``,
    ``("del", key, size_delta)`` or ``("bytes", delta)``.

    ``delta_bytes`` is what the asynchronous upload must move;
    ``restore_tail_bytes`` is what a restore must re-read and replay —
    full-group images count only a small manifest there because the
    materialized base is durable and locally recoverable.
    """

    checkpoint_id: int
    seq_from: int
    seq_to: int
    groups: Dict[int, tuple]
    delta_bytes: float
    restore_tail_bytes: float
    #: True when the segment carries a whole-state image (every live
    #: group as a ``full`` payload) — a valid chain anchor.
    full_base: bool

    @property
    def anchors_chain(self) -> bool:
        return self.full_base or self.seq_from == 0


class ChangelogStateBackend(DictStateBackend):
    """Log-structured backend: per-key-group append-only changelogs.

    Every mutation appends an op to the owning group's log.  A checkpoint
    *cut* (:meth:`cut_segment`) captures the ops since the previous cut as
    a :class:`ChangelogSegment`; the runtime uploads segments
    asynchronously off the barrier path, so the synchronous barrier cost
    (:meth:`checkpoint_sync_bytes`) is a small constant manifest
    regardless of state size.

    *Materialization* periodically folds the log into a durable base
    (modeled: the live entries at that instant become the base), clears
    the logs, and flags every group so the next cut re-uploads it as a
    whole-group image — bounding both the log length and the delta tail a
    restore must replay.  It triggers automatically every
    ``materialize_interval`` mutations, or sooner when any single group's
    log exceeds ``max_log_entries`` (truncation bound).

    Bulk mutations that bypass the logging surface (scaling controllers
    replace ``group.entries`` wholesale) are caught by the
    :attr:`KeyGroupState.version` contract: any wholesale replace bumps
    the version, and a version observed to have changed since the last
    cut forces a whole-group image instead of an unsound delta replay.
    """

    name = "changelog"
    is_incremental = True
    #: Synchronous barrier-path cost: the checkpoint manifest (constant).
    MANIFEST_BYTES = 65536.0

    def __init__(self, bytes_per_entry: float = 256.0,
                 materialize_interval: int = 4096,
                 max_log_entries: int = 8192):
        super().__init__(bytes_per_entry=bytes_per_entry)
        if materialize_interval < 1:
            raise ValueError("materialize_interval must be >= 1")
        self.materialize_interval = int(materialize_interval)
        self.max_log_entries = int(max_log_entries)
        #: Global op counter — segment seq ranges chain on it.
        self._seq = 0
        self._last_cut_seq = 0
        #: Per-group ops since the last materialization.
        self._log: Dict[int, List[tuple]] = {}
        #: Per-group op index (into the global seq) of each group's first
        #: un-cut op: ops with seq > _last_cut_seq belong to the next cut.
        self._log_seqs: Dict[int, List[int]] = {}
        self._log_bytes: Dict[int, float] = {}
        #: Version each group had when last captured (cut or materialize);
        #: a mismatch at cut time means out-of-band bulk mutation.
        self._cut_versions: Dict[int, int] = {}
        #: Groups whose next cut must carry a whole-group image.
        self._pending_full: set = set()
        self._mutations_since_materialize = 0
        self.materializations = 0
        #: Version at which each group's base is durably captured —
        #: gates the changelog-tail migration fast path.
        self._durable_versions: Dict[int, int] = {}

    # -- logging mutations ----------------------------------------------------

    def _append(self, key_group: int, op: tuple, cost: float) -> None:
        self._seq += 1
        self._log.setdefault(key_group, []).append(op)
        self._log_seqs.setdefault(key_group, []).append(self._seq)
        self._log_bytes[key_group] = self._log_bytes.get(key_group, 0.0) + cost
        self._mutations_since_materialize += 1
        if (self._mutations_since_materialize >= self.materialize_interval
                or len(self._log[key_group]) > self.max_log_entries):
            self.materialize()

    def put(self, key_group: int, key: Any, value: Any) -> None:
        group = self._groups.get(key_group)
        new_key = group is None or key not in group.entries
        super().put(key_group, key, value)
        delta = self.bytes_per_entry if new_key else 0.0
        self._append(key_group, ("put", key, value, delta),
                     self.bytes_per_entry)

    def delete(self, key_group: int, key: Any) -> None:
        group = self._groups.get(key_group)
        if group is None or key not in group.entries:
            return
        super().delete(key_group, key)
        self._append(key_group, ("del", key, -self.bytes_per_entry),
                     self.bytes_per_entry)

    def add_bytes(self, key_group: int, delta: float) -> None:
        super().add_bytes(key_group, delta)
        self._append(key_group, ("bytes", delta), abs(delta))

    # -- materialization & truncation ----------------------------------------

    def materialize(self) -> None:
        """Fold the logs into a durable base (the live entries at this
        instant) and clear them; the next cut re-anchors the chain with
        whole-group images."""
        self._log.clear()
        self._log_seqs.clear()
        self._log_bytes.clear()
        self._pending_full = set(self._groups)
        self._mutations_since_materialize = 0
        self.materializations += 1
        for kg, group in self._groups.items():
            self._durable_versions[kg] = group.version
            self._cut_versions[kg] = group.version

    def restart_changelog(self) -> None:
        """Re-anchor after a restore: discard any pre-failure log state so
        the next cut carries a whole-state image."""
        self.materialize()

    def log_length(self, key_group: int) -> int:
        return len(self._log.get(key_group, ()))

    # -- checkpoint cuts ------------------------------------------------------

    def checkpoint_sync_bytes(self) -> float:
        return self.MANIFEST_BYTES

    def cut_segment(self, checkpoint_id: int) -> ChangelogSegment:
        """Capture everything since the previous cut as a delta segment."""
        groups: Dict[int, tuple] = {}
        delta_bytes = 0.0
        restore_tail = 0.0
        seq_from = self._last_cut_seq
        seq_to = self._seq
        live = set(self._groups)
        for kg, group in self._groups.items():
            version_break = self._cut_versions.get(kg, -1) != group.version
            ops = []
            op_bytes = 0.0
            log, seqs = self._log.get(kg), self._log_seqs.get(kg)
            if log:
                for op, seq in zip(log, seqs):
                    if seq > seq_from:
                        ops.append(op)
                        op_bytes += (abs(op[1]) if op[0] == "bytes"
                                     else self.bytes_per_entry)
            if kg in self._pending_full or version_break:
                groups[kg] = ("full", dict(group.entries),
                              group.size_bytes, group.status)
                delta_bytes += group.size_bytes + self.bytes_per_entry
                # Base image becomes durable: restores read it locally.
                restore_tail += self.bytes_per_entry
                self._durable_versions[kg] = group.version
            elif ops:
                groups[kg] = ("deltas", ops)
                delta_bytes += op_bytes
                restore_tail += op_bytes
            self._cut_versions[kg] = group.version
        for kg in list(self._cut_versions):
            if kg not in live:
                groups[kg] = ("drop",)
                del self._cut_versions[kg]
                self._durable_versions.pop(kg, None)
        full_base = bool(live) and all(
            groups.get(kg, ("",))[0] == "full" for kg in live)
        self._pending_full.clear()
        self._last_cut_seq = seq_to
        return ChangelogSegment(
            checkpoint_id=checkpoint_id, seq_from=seq_from, seq_to=seq_to,
            groups=groups, delta_bytes=delta_bytes,
            restore_tail_bytes=restore_tail,
            full_base=full_base or seq_from == 0)

    # -- restore --------------------------------------------------------------

    @staticmethod
    def replay_chain(segments: List["ChangelogSegment"]
                     ) -> Dict[int, KeyGroupState]:
        """Rebuild keyed state from an ordered, contiguous delta chain.

        Raises :class:`ChangelogChainError` on a seq gap or when the
        first segment is neither a whole-state image nor the beginning of
        history — an incomplete chain must never be silently replayed.
        """
        if not segments:
            raise ChangelogChainError("empty delta chain")
        if not segments[0].anchors_chain:
            raise ChangelogChainError(
                f"chain does not anchor: first segment (checkpoint "
                f"{segments[0].checkpoint_id}) starts at seq "
                f"{segments[0].seq_from} and is not a full base")
        for prev, nxt in zip(segments, segments[1:]):
            if nxt.seq_from != prev.seq_to:
                raise ChangelogChainError(
                    f"chain gap between checkpoints {prev.checkpoint_id} "
                    f"(..{prev.seq_to}) and {nxt.checkpoint_id} "
                    f"({nxt.seq_from}..)")
        state: Dict[int, KeyGroupState] = {}
        for seg in segments:
            for kg in sorted(seg.groups):
                payload = seg.groups[kg]
                kind = payload[0]
                if kind == "full":
                    _, entries, size, status = payload
                    state[kg] = KeyGroupState(
                        key_group=kg, status=status,
                        size_bytes=size, entries=dict(entries))
                elif kind == "drop":
                    state.pop(kg, None)
                elif kind == "deltas":
                    group = state.get(kg)
                    if group is None:
                        group = KeyGroupState(key_group=kg)
                        state[kg] = group
                    for op in payload[1]:
                        if op[0] == "put":
                            _, key, value, size_delta = op
                            group.entries[key] = value
                            group.size_bytes += size_delta
                        elif op[0] == "del":
                            _, key, size_delta = op
                            group.entries.pop(key, None)
                            group.size_bytes = max(
                                0.0, group.size_bytes + size_delta)
                        else:  # ("bytes", delta)
                            group.size_bytes = max(
                                0.0, group.size_bytes + op[1])
                else:
                    raise ChangelogChainError(
                        f"unknown payload kind {kind!r}")
        return state

    # -- migration fast path --------------------------------------------------

    def changelog_tail_bytes(self, key_group: int) -> Optional[float]:
        """Bytes a migration must move when the destination can fetch the
        durable base and replay only the tail — or None when no durable
        base covers this group's current version (full transfer needed)."""
        group = self._groups.get(key_group)
        if group is None:
            return None
        if self._durable_versions.get(key_group) != group.version:
            return None
        # Ops up to the last cut live in uploaded segments — durable like
        # the base.  Only the un-cut tail has to ride the wire.
        tail = 0.0
        log = self._log.get(key_group)
        if log:
            for op, seq in zip(log, self._log_seqs[key_group]):
                if seq > self._last_cut_seq:
                    tail += (abs(op[1]) if op[0] == "bytes"
                             else self.bytes_per_entry)
        return tail + self.bytes_per_entry


@dataclass
class StateTransferCostModel:
    """Costs that make up the paper's inherent overhead :math:`L_o`.

    ``extract_seconds_per_group`` models state extraction + serialization
    set-up per migration unit; bytes then move at the link bandwidth (shared
    with data traffic is approximated by a dedicated fraction).
    """

    extract_seconds_per_group: float = 0.002
    #: Fraction of link bandwidth state transfer may use (data keeps flowing).
    bandwidth_fraction: float = 0.5
    #: Fixed per-transfer handshake overhead (seconds).
    handshake_seconds: float = 0.001

    def transfer_seconds(self, size_bytes: float, bandwidth: float,
                         latency: float) -> float:
        effective = max(bandwidth * self.bandwidth_fraction, 1.0)
        return (self.handshake_seconds + latency
                + size_bytes / effective)
