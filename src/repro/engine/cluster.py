"""Cluster model: nodes, links and deployment slots.

Models the paper's two deployments:

* the single-machine Dockerized setup (homogeneous node, negligible and
  uniform network latency), and
* the 4-node heterogeneous Docker Swarm cluster on Gigabit Ethernet used for
  the sensitivity analysis (§V-D).

Only the properties the scaling mechanisms are sensitive to are modelled:
per-link latency/bandwidth, per-node relative CPU speed, and per-node slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["NodeSpec", "LinkSpec", "ClusterModel", "single_machine", "swarm_cluster"]

GBIT = 125_000_000.0  # 1 Gbps in bytes/second


@dataclass
class NodeSpec:
    """One worker node."""

    name: str
    #: Relative CPU speed (1.0 = reference); service times divide by this.
    speed: float = 1.0
    #: How many operator instances (containers) the node can host.
    slots: int = 64


@dataclass
class LinkSpec:
    """Network parameters between two nodes (or loopback)."""

    latency: float = 0.0005  # one-way propagation, seconds
    bandwidth: float = GBIT  # bytes/second


class ClusterModel:
    """A set of nodes plus a link model, with round-robin slot placement."""

    def __init__(self, nodes: List[NodeSpec],
                 default_link: LinkSpec = None,
                 loopback: LinkSpec = None):
        if not nodes:
            raise ValueError("cluster needs at least one node")
        self.nodes = list(nodes)
        self.default_link = default_link or LinkSpec()
        self.loopback = loopback or LinkSpec(latency=0.00005,
                                             bandwidth=8 * GBIT)
        self._links: Dict[Tuple[str, str], LinkSpec] = {}
        self._occupancy: Dict[str, int] = {n.name: 0 for n in nodes}
        self._next = 0

    def set_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Override the link between two named nodes (symmetric)."""
        self._links[(a, b)] = link
        self._links[(b, a)] = link

    def link(self, a: str, b: str) -> LinkSpec:
        if a == b:
            return self.loopback
        return self._links.get((a, b), self.default_link)

    def node(self, name: str) -> NodeSpec:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    def place(self, preferred: Optional[str] = None) -> NodeSpec:
        """Pick a node for a new instance (round-robin over free slots)."""
        if preferred is not None:
            node = self.node(preferred)
            self._occupancy[node.name] += 1
            return node
        for _ in range(len(self.nodes)):
            node = self.nodes[self._next % len(self.nodes)]
            self._next += 1
            if self._occupancy[node.name] < node.slots:
                self._occupancy[node.name] += 1
                return node
        # All full: overcommit the least-loaded node rather than failing.
        node = min(self.nodes, key=lambda n: self._occupancy[n.name])
        self._occupancy[node.name] += 1
        return node

    def occupancy(self) -> Dict[str, int]:
        return dict(self._occupancy)


def single_machine() -> ClusterModel:
    """The paper's single-machine Dockerized environment.

    Containers on one host talk over the Docker bridge; the loopback
    bandwidth is set so state moves at realistic extract/serialize/restore
    rates (~60 MB/s effective with the default transfer model) rather than
    at memcpy speed — state-transfer time is central to every experiment.
    """
    node = NodeSpec(name="server-0", speed=1.0, slots=256)
    return ClusterModel(
        [node],
        default_link=LinkSpec(latency=0.0001, bandwidth=GBIT),
        loopback=LinkSpec(latency=0.0001, bandwidth=GBIT),
    )


def swarm_cluster() -> ClusterModel:
    """The paper's 4-node heterogeneous Swarm cluster (§V-A).

    One Gold 5218 node, two Silver 4210 nodes, one Gold 6230 node, joined by
    Gigabit Ethernet.  Speeds are rough clock-derived ratios.
    """
    nodes = [
        NodeSpec(name="gold-5218", speed=1.0, slots=64),
        NodeSpec(name="silver-4210-a", speed=0.93, slots=64),
        NodeSpec(name="silver-4210-b", speed=0.93, slots=64),
        NodeSpec(name="gold-6230", speed=0.97, slots=64),
    ]
    return ClusterModel(
        nodes,
        default_link=LinkSpec(latency=0.0005, bandwidth=GBIT),
    )
