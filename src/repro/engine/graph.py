"""Job graphs: logical operators and edges, validated as a DAG."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .operators import OperatorLogic, PassThroughLogic, SinkLogic
from .routing import Partitioning

__all__ = ["OperatorSpec", "EdgeSpec", "JobGraph"]


@dataclass
class OperatorSpec:
    """Logical operator: parallel instances share this description.

    Attributes:
        name: unique operator name.
        logic_factory: zero-arg callable producing one logic per instance.
        parallelism: number of parallel instances.
        service_time: seconds of CPU per physical record (before node speed).
        bytes_per_entry: nominal state bytes per distinct key entry.
        keyed: whether the operator owns key-group state (scalable target).
        is_source / is_sink: role flags.
        initial_state_bytes_per_group: pre-populated state, for experiments
            that need a state-size floor at scale time.
    """

    name: str
    logic_factory: Callable[[], OperatorLogic] = PassThroughLogic
    parallelism: int = 1
    service_time: float = 0.0
    bytes_per_entry: float = 256.0
    keyed: bool = False
    is_source: bool = False
    is_sink: bool = False
    initial_state_bytes_per_group: float = 0.0

    def __post_init__(self):
        if self.parallelism < 1:
            raise ValueError(f"{self.name}: parallelism must be >= 1")
        if self.service_time < 0:
            raise ValueError(f"{self.name}: service_time must be >= 0")


@dataclass
class EdgeSpec:
    """A logical edge between two operators."""

    src: str
    dst: str
    partitioning: Partitioning = Partitioning.FORWARD

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"


class JobGraph:
    """Logical dataflow: operators plus edges; validates DAG shape."""

    def __init__(self, name: str = "job", num_key_groups: int = 128):
        if num_key_groups < 1:
            raise ValueError("num_key_groups must be >= 1")
        self.name = name
        self.num_key_groups = num_key_groups
        self.operators: Dict[str, OperatorSpec] = {}
        self.edges: List[EdgeSpec] = []

    # -- construction -----------------------------------------------------------

    def add_operator(self, spec: OperatorSpec) -> OperatorSpec:
        if spec.name in self.operators:
            raise ValueError(f"duplicate operator name: {spec.name}")
        self.operators[spec.name] = spec
        return spec

    def add_source(self, name: str, parallelism: int = 1,
                   service_time: float = 0.0) -> OperatorSpec:
        return self.add_operator(OperatorSpec(
            name=name, parallelism=parallelism, service_time=service_time,
            is_source=True))

    def add_sink(self, name: str, parallelism: int = 1,
                 collect: bool = False,
                 service_time: float = 0.0) -> OperatorSpec:
        return self.add_operator(OperatorSpec(
            name=name, logic_factory=lambda: SinkLogic(collect=collect),
            parallelism=parallelism, service_time=service_time,
            is_sink=True))

    def connect(self, src: str, dst: str,
                partitioning: Partitioning = Partitioning.FORWARD
                ) -> EdgeSpec:
        if src not in self.operators:
            raise KeyError(f"unknown operator: {src}")
        if dst not in self.operators:
            raise KeyError(f"unknown operator: {dst}")
        edge = EdgeSpec(src=src, dst=dst, partitioning=partitioning)
        self.edges.append(edge)
        return edge

    # -- queries -------------------------------------------------------------------

    def upstream_of(self, name: str) -> List[str]:
        return [e.src for e in self.edges if e.dst == name]

    def downstream_of(self, name: str) -> List[str]:
        return [e.dst for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[EdgeSpec]:
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, name: str) -> List[EdgeSpec]:
        return [e for e in self.edges if e.src == name]

    def sources(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if op.is_source]

    def sinks(self) -> List[OperatorSpec]:
        return [op for op in self.operators.values() if op.is_sink]

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Raises ValueError for cycles, dangling operators or missing roles."""
        if not self.sources():
            raise ValueError("job graph has no source operator")
        # Kahn's algorithm for cycle detection.
        indegree = {name: 0 for name in self.operators}
        for edge in self.edges:
            indegree[edge.dst] += 1
        frontier = [name for name, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            name = frontier.pop()
            visited += 1
            for edge in self.out_edges(name):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    frontier.append(edge.dst)
        if visited != len(self.operators):
            raise ValueError("job graph contains a cycle")
        for edge in self.edges:
            if (edge.partitioning is Partitioning.HASH
                    and not self.operators[edge.dst].keyed):
                raise ValueError(
                    f"hash edge {edge.name} targets non-keyed operator")
