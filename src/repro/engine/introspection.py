"""Job introspection: structured snapshots of a running dataflow.

Answers the operational questions every scaling decision needs — who is
busy, where queues are building, where state lives — as plain dict rows,
renderable with :func:`repro.experiments.report.format_table` or exported
as JSON.  The CLI's ``workload --inspect`` and the policies' debugging all
build on this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .operators import OperatorInstance
from .runtime import SourceInstance, StreamJob

__all__ = ["instance_rows", "operator_rows", "channel_rows",
           "hot_instance", "job_summary"]


def instance_rows(job: StreamJob, operator: Optional[str] = None,
                  since: float = 0.0) -> List[Dict]:
    """One row per operator instance: load, queues, state.

    ``since`` turns ``busy_fraction`` into a rate over ``now - since``
    rather than the whole run.
    """
    horizon = max(job.sim.now - since, 1e-9)
    rows = []
    names = [operator] if operator else list(job.graph.operators)
    for name in names:
        for inst in job.instances(name):
            inbox = sum(len(ch) for ch in inst.input_channels)
            outbox = sum(ch.backlog for ch in inst.router.all_channels())
            row = {
                "instance": inst.name,
                "node": inst.node.name,
                "running": inst.running,
                "busy_fraction": min(inst.busy_seconds / horizon, 1.0),
                "records_processed": inst.records_processed,
                "inbox_depth": inbox,
                "outbox_backlog": outbox,
                "state_mb": inst.state.total_bytes() / 1e6,
                "key_groups": len(inst.state.owned_groups()),
                "suspended_s": inst.suspended_seconds,
            }
            if isinstance(inst, SourceInstance):
                row["admission_backlog"] = inst.backlog
            rows.append(row)
    return rows


def operator_rows(job: StreamJob, since: float = 0.0) -> List[Dict]:
    """One row per operator: aggregated over its instances."""
    rows = []
    for name in job.graph.operators:
        per_instance = instance_rows(job, operator=name, since=since)
        if not per_instance:
            continue
        busy = [r["busy_fraction"] for r in per_instance]
        rows.append({
            "operator": name,
            "parallelism": len(per_instance),
            "busy_mean": sum(busy) / len(busy),
            "busy_max": max(busy),
            "inbox_depth": sum(r["inbox_depth"] for r in per_instance),
            "state_mb": sum(r["state_mb"] for r in per_instance),
            "records_processed": sum(r["records_processed"]
                                     for r in per_instance),
            "suspended_s": sum(r["suspended_s"] for r in per_instance),
        })
    return rows


def channel_rows(job: StreamJob, min_backlog: int = 1) -> List[Dict]:
    """Channels with at least ``min_backlog`` unconsumed elements —
    the congestion map."""
    rows = []
    for inst in job.all_instances():
        for edge in inst.router.edges:
            for channel in edge.channels:
                if channel.backlog >= min_backlog:
                    rows.append({
                        "channel": channel.name,
                        "outbox": len(channel.outbox),
                        "in_flight": channel._in_flight,
                        "inbox": (len(channel.input_channel)
                                  if channel.input_channel else 0),
                        "credits": channel.credits,
                    })
    rows.sort(key=lambda r: -(r["outbox"] + r["in_flight"] + r["inbox"]))
    return rows


def hot_instance(job: StreamJob, operator: str,
                 since: float = 0.0) -> Dict:
    """The busiest instance of an operator (skew diagnosis)."""
    rows = instance_rows(job, operator=operator, since=since)
    if not rows:
        raise ValueError(f"operator {operator!r} has no instances")
    return max(rows, key=lambda r: r["busy_fraction"])


def job_summary(job: StreamJob) -> Dict:
    """One-row health summary of the whole job."""
    sources = job.sources()
    return {
        "sim_time_s": job.sim.now,
        "kernel_events": job.sim.events_processed,
        "operators": len(job.graph.operators),
        "instances": len(job.all_instances()),
        "records_generated": job.metrics.total_source_output(),
        "records_delivered": job.metrics.total_sink_input(),
        "admission_backlog": sum(s.backlog for s in sources),
        "total_state_mb": sum(
            inst.state.total_bytes() for inst in job.all_instances()) / 1e6,
        "congested_channels": len(channel_rows(job, min_backlog=8)),
    }
