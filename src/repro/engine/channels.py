"""Network channels: output caches, credit-based input buffers, control lane.

Each :class:`Channel` connects one sender instance to one receiver instance
and models the parts of Flink's Netty stack the paper's mechanisms act on:

* a bounded **outbox** (the "output cache"): records wait here for
  serialization; a full outbox blocks the sender → backpressure.
* a serializer/drainer process: one element at a time, costing
  ``size_bytes / bandwidth`` seconds, then ``latency`` seconds of propagation.
* **credit-based flow control**: the receiver grants ``inbox_capacity``
  credits; the drainer stalls with no credits, so a slow receiver backs the
  whole pipeline up (the "input cache" is the per-channel inbox).
* a **control lane** (:meth:`send_control`): priority messages that bypass
  all in-flight data in both caches — how DRRS trigger barriers achieve
  topologically-shortest, alignment-free propagation.
* outbox **introspection/redirection** (:meth:`extract_outbox`,
  :meth:`send_front`): how confirm barriers jump the output cache and how the
  records they bypass are re-queued onto the new instance's channel.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from ..simulation.kernel import Event, Simulator
from ..simulation.primitives import Signal
from .cluster import LinkSpec
from .records import StreamElement, Watermark

if TYPE_CHECKING:  # pragma: no cover
    from .operators import OperatorInstance

__all__ = ["Channel", "InputChannel"]


class Channel:
    """A one-way link from a sender instance to a receiver input channel."""

    def __init__(self, sim: Simulator, link: LinkSpec, name: str = "",
                 outbox_capacity: int = 64, inbox_capacity: int = 64):
        self.sim = sim
        self.link = link
        self.name = name
        self.outbox_capacity = outbox_capacity
        self.outbox: Deque[StreamElement] = deque()
        self.credits = inbox_capacity
        self.inbox_capacity = inbox_capacity
        self.input_channel: Optional["InputChannel"] = None
        self._drain_wake = Signal(sim)
        self._send_waiters: Deque = deque()  # (Event, StreamElement) pairs
        self._in_flight = 0  # elements past the outbox, not yet delivered
        self._closed = False
        #: Bumped by flush(); deliveries scheduled under an older epoch are
        #: dropped (failure recovery discards in-flight data).
        self._epoch = 0
        self.sender: Optional["OperatorInstance"] = None
        #: Telemetry bundle shared with the owning job (None = disabled).
        self.telemetry = None
        sim.spawn(self._drainer(), name=f"drain:{name}")

    # -- sender API ----------------------------------------------------------

    def send(self, element: StreamElement) -> Event:
        """Enqueue ``element``; the returned event fires once accepted.

        Blocks (event stays pending) while the outbox is full — this is the
        backpressure path.
        """
        ev = self.sim.event()
        if self._closed:
            ev.succeed()  # decommissioned target: accept and drop
        elif len(self.outbox) < self.outbox_capacity:
            self.outbox.append(element)
            ev.succeed()
            self._drain_wake.fire()
        else:
            if self.telemetry is not None:
                self.telemetry.registry.counter(
                    "channel.backpressure_blocks", channel=self.name).inc()
            self._send_waiters.append((ev, element))
        return ev

    def try_send(self, element: StreamElement) -> bool:
        """Non-blocking send; False when the outbox is full."""
        if self._closed:
            return True  # accept and drop
        if len(self.outbox) >= self.outbox_capacity:
            return False
        self.outbox.append(element)
        self._drain_wake.fire()
        return True

    def send_front(self, element: StreamElement) -> None:
        """Insert at the *front* of the outbox (priority-in-output-cache).

        Used by confirm barriers: they overtake everything queued in the
        output cache.  Control elements are tiny, so this never blocks.
        """
        self.outbox.appendleft(element)
        self._drain_wake.fire()

    def send_control(self, element: StreamElement) -> None:
        """Priority control-lane send: bypass both caches entirely.

        The element reaches the receiver's control handler after only the
        link propagation latency — this is how trigger barriers bypass all
        in-flight data (§III-A).
        """
        self.sim.call_in(self.link.latency,
                         lambda: self._deliver_control(element))

    def extract_outbox(
            self, predicate: Callable[[StreamElement], bool]
    ) -> List[StreamElement]:
        """Remove and return outbox elements matching ``predicate``.

        Relative order among the extracted elements is preserved; the rest of
        the outbox keeps its order.  Used to redirect bypassed records to a
        newly created channel during confirm-barrier injection.
        """
        kept: Deque[StreamElement] = deque()
        extracted: List[StreamElement] = []
        for element in self.outbox:
            if predicate(element):
                extracted.append(element)
            else:
                kept.append(element)
        self.outbox = kept
        # Also redirect records still *waiting* for outbox space: they were
        # emitted (routed) before the injection, so they belong to the
        # preceding epoch and must travel with the other bypassed records.
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                extracted.append(element)
                if not ev.triggered:
                    ev.succeed()  # accepted — by redirection
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        if extracted:
            self._grant_sends()
        return extracted

    def inject_confirm(self, predicate: Callable[[StreamElement], bool],
                       barrier: StreamElement) -> List[StreamElement]:
        """Priority-in-output-cache barrier insertion with redirection.

        Implements the confirm-barrier placement of §III-A together with
        the fault-tolerance rule of §IV-C (Fig. 9a): the barrier overtakes
        the output cache, the records it bypasses that match ``predicate``
        are removed (returned for redirection), **but redirection concludes
        at the newest checkpoint barrier in the cache** — elements at or
        before that barrier belong to the snapshot's consistent cut and
        stay put, and the confirm barrier lands immediately after it
        (forming the integrated signal).

        Blocked send-waiters are logically behind the whole cache, so
        matching waiter elements are always redirected.
        """
        from .records import CheckpointBarrier

        elements = list(self.outbox)
        cut = -1
        for index, element in enumerate(elements):
            if isinstance(element, CheckpointBarrier):
                cut = index
        kept: List[StreamElement] = []
        bypassed: List[StreamElement] = []
        for index, element in enumerate(elements):
            if index > cut and predicate(element):
                bypassed.append(element)
            else:
                kept.append(element)
        # All elements <= cut were kept, so the checkpoint barrier sits at
        # position `cut` in `kept`; the confirm barrier goes right after it
        # (or at the very front when there is no checkpoint barrier).
        kept.insert(cut + 1, barrier)
        self.outbox = deque(kept)
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                bypassed.append(element)
                if not ev.triggered:
                    ev.succeed()
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        self._grant_sends()
        self._drain_wake.fire()
        return bypassed

    @property
    def queued(self) -> int:
        """Elements in the outbox plus in flight (for diagnostics)."""
        return len(self.outbox) + self._in_flight

    @property
    def backlog(self) -> int:
        """Total unconsumed elements on this channel end-to-end."""
        inbox = len(self.input_channel.queue) if self.input_channel else 0
        return len(self.outbox) + self._in_flight + inbox

    def flush(self) -> None:
        """Discard everything queued or in flight (failure recovery).

        The outbox empties, blocked senders are released with their
        elements dropped, in-flight deliveries are invalidated, and flow-
        control credits reset to a full window.
        """
        self._epoch += 1
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self.credits = self.inbox_capacity
        self._drain_wake.fire()

    def close(self) -> None:
        """Stop the channel: the drainer exits, queued and future sends are
        dropped, and any blocked sender is released."""
        self._closed = True
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self._drain_wake.fire()

    # -- receiver attachment -------------------------------------------------

    def attach(self, input_channel: "InputChannel") -> None:
        self.input_channel = input_channel
        input_channel.channel = self
        self._drain_wake.fire()

    def _return_credit(self) -> None:
        self.credits += 1
        self._drain_wake.fire()

    # -- internals -------------------------------------------------------------

    def _grant_sends(self) -> None:
        while self._send_waiters and len(self.outbox) < self.outbox_capacity:
            waiter, element = self._send_waiters.popleft()
            if waiter.triggered:
                continue
            self.outbox.append(element)
            waiter.succeed()
            self._drain_wake.fire()

    def _drainer(self):
        """Serialize and ship outbox elements, one at a time."""
        while True:
            while (self._closed
                   or not self.outbox
                   or self.credits <= 0
                   or self.input_channel is None):
                if self._closed:
                    return
                if (self.telemetry is not None and self.outbox
                        and self.credits <= 0
                        and self.input_channel is not None):
                    # Flow control, not emptiness, is stalling the drainer.
                    self.telemetry.registry.counter(
                        "channel.credit_stalls", channel=self.name).inc()
                yield self._drain_wake.wait()
            element = self.outbox.popleft()
            if self.telemetry is not None:
                registry = self.telemetry.registry
                registry.counter("channel.elements_shipped",
                                 channel=self.name).inc()
                registry.counter("channel.bytes_shipped",
                                 channel=self.name).inc(element.size_bytes)
            self._grant_sends()
            self.credits -= 1
            self._in_flight += 1
            epoch = self._epoch
            serialize = element.size_bytes / self.link.bandwidth
            if serialize > 0:
                yield self.sim.timeout(serialize)
            self.sim.call_in(
                self.link.latency,
                lambda e=element, ep=epoch: self._deliver(e, ep))

    def _deliver(self, element: StreamElement, epoch: int = None) -> None:
        self._in_flight -= 1
        if epoch is not None and epoch != self._epoch:
            return  # flushed while in flight: dropped
        if self.input_channel is not None:
            self.input_channel.deliver(element)

    def _deliver_control(self, element: StreamElement) -> None:
        if self.input_channel is not None:
            self.input_channel.deliver_control(element)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Channel {self.name} backlog={self.backlog}>"


class InputChannel:
    """The receiver-side view of one channel: the per-channel input cache."""

    def __init__(self, instance: "OperatorInstance", name: str = ""):
        self.instance = instance
        self.name = name
        self.queue: Deque[StreamElement] = deque()
        self.channel: Optional[Channel] = None
        #: Latest watermark seen on this channel.
        self.watermark = float("-inf")
        #: Tokens of the alignments currently blocking this channel; the
        #: channel is readable only when no token is held.  Token-based
        #: blocking lets overlapping alignments (concurrent subscales,
        #: checkpoint + scaling) coexist without releasing each other.
        self.block_tokens: set = set()
        #: True for runtime-created auxiliary channels (re-route paths);
        #: excluded from watermark aggregation, checkpoint alignment and EOS.
        self.is_auxiliary = False

    @property
    def blocked(self) -> bool:
        return bool(self.block_tokens)

    def block(self, token) -> None:
        self.block_tokens.add(token)

    def unblock(self, token) -> None:
        self.block_tokens.discard(token)
        if not self.block_tokens:
            self.instance.wake.fire()

    def deliver(self, element: StreamElement) -> None:
        self.queue.append(element)
        self.instance.wake.fire()

    def deliver_control(self, element: StreamElement) -> None:
        self.instance.on_control(self, element)

    def peek(self) -> Optional[StreamElement]:
        return self.queue[0] if self.queue else None

    def pop(self) -> StreamElement:
        """Consume the head element and return its flow-control credit."""
        element = self.queue.popleft()
        if self.channel is not None:
            self.channel._return_credit()
        return element

    def remove(self, element: StreamElement) -> None:
        """Consume a specific (possibly non-head) element.

        Used by intra-channel scheduling, which may process a later record
        while the head is unprocessable.  Credit accounting matches
        :meth:`pop`.
        """
        self.queue.remove(element)
        if self.channel is not None:
            self.channel._return_credit()

    def note_watermark(self, watermark: Watermark) -> None:
        if watermark.timestamp > self.watermark:
            self.watermark = watermark.timestamp

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<InputChannel {self.name} depth={len(self.queue)}>"
