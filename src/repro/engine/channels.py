"""Network channels: output caches, credit-based input buffers, control lane.

Each :class:`Channel` connects one sender instance to one receiver instance
and models the parts of Flink's Netty stack the paper's mechanisms act on:

* a bounded **outbox** (the "output cache"): records wait here for
  serialization; a full outbox blocks the sender → backpressure.
* a serializer/drainer process: one element at a time, costing
  ``size_bytes / bandwidth`` seconds, then ``latency`` seconds of propagation.
* **credit-based flow control**: the receiver grants ``inbox_capacity``
  credits; the drainer stalls with no credits, so a slow receiver backs the
  whole pipeline up (the "input cache" is the per-channel inbox).
* a **control lane** (:meth:`send_control`): priority messages that bypass
  all in-flight data in both caches — how DRRS trigger barriers achieve
  topologically-shortest, alignment-free propagation.
* outbox **introspection/redirection** (:meth:`extract_outbox`,
  :meth:`send_front`): how confirm barriers jump the output cache and how the
  records they bypass are re-queued onto the new instance's channel.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from ..simulation.kernel import Event, Simulator, _Callback
from .cluster import LinkSpec
from .records import StreamElement, Watermark

if TYPE_CHECKING:  # pragma: no cover
    from .operators import OperatorInstance

__all__ = ["Channel", "InputChannel"]


class Channel:
    """A one-way link from a sender instance to a receiver input channel.

    The drainer is a callback-driven state machine, not a generator process:
    :meth:`_kick` plays the role the old drain Signal's ``fire()`` played
    (wake a parked drainer, or latch a pending wake-up), and
    :meth:`_drain_loop` is the loop body.  Each wake-up and each serialize
    step draws exactly the same event-heap counters the generator version
    drew, so simulated timing and tie-break order are bit-identical — only
    the per-element generator-resume machinery is gone.
    """

    __slots__ = ("sim", "link", "name", "outbox_capacity", "outbox",
                 "credits", "inbox_capacity", "input_channel",
                 "_send_waiters", "_in_flight", "_closed", "_epoch",
                 "sender", "telemetry", "_drain_parked",
                 "_drain_entry", "_ship_entry", "_deliver_entry",
                 "_serializing", "_serializing_epoch", "_wire",
                 "fault_hook")

    def __init__(self, sim: Simulator, link: LinkSpec, name: str = "",
                 outbox_capacity: int = 64, inbox_capacity: int = 64):
        self.sim = sim
        self.link = link
        self.name = name
        self.outbox_capacity = outbox_capacity
        self.outbox: Deque[StreamElement] = deque()
        self.credits = inbox_capacity
        self.inbox_capacity = inbox_capacity
        self.input_channel: Optional["InputChannel"] = None
        self._send_waiters: Deque = deque()  # (Event, StreamElement) pairs
        self._in_flight = 0  # elements past the outbox, not yet delivered
        self._closed = False
        #: Bumped by flush(); deliveries scheduled under an older epoch are
        #: dropped (failure recovery discards in-flight data).
        self._epoch = 0
        self.sender: Optional["OperatorInstance"] = None
        #: Telemetry bundle shared with the owning job (None = disabled).
        self.telemetry = None
        #: Optional ``hook(channel, element) -> action`` consulted at the
        #: delivery point (after the epoch check).  ``"drop"`` discards the
        #: element (its flow-control credit is returned here, since the
        #: receiver will never pop it); ``"duplicate"`` delivers it twice
        #: (the extra pop over-returns one credit — accepted, documented
        #: fault-injection artefact); anything else delivers normally.
        #: None — the default — costs one attribute check.
        self.fault_hook = None
        # Drainer state: parked = waiting for a kick.  Born parked: with
        # nothing queued, the first productive kick (send/attach) starts
        # the loop.  No pending latch is needed — a scheduled or running
        # drain pass is atomic and re-checks all conditions before parking.
        self._drain_parked = True
        # Reusable heap entries (one allocation per channel, not per
        # element).  Drain/ship have at most one outstanding schedule each;
        # the deliver entry may sit in the heap at several positions, one
        # per in-flight element — `_wire` holds their (element, epoch)
        # payloads in delivery order (fixed per-channel latency keeps the
        # wire FIFO).
        self._drain_entry = _Callback(self._drain_loop)
        self._ship_entry = _Callback(self._ship)
        self._deliver_entry = _Callback(self._deliver_next)
        self._serializing: Optional[StreamElement] = None
        # Epoch captured when the serializing element left the outbox: a
        # flush() mid-serialize must still invalidate it.
        self._serializing_epoch = 0
        self._wire: Deque = deque()  # (element, epoch) pairs

    # -- sender API ----------------------------------------------------------

    def send(self, element: StreamElement) -> Event:
        """Enqueue ``element``; the returned event fires once accepted.

        Blocks (event stays pending) while the outbox is full — this is the
        backpressure path.
        """
        if self._closed:
            # Decommissioned target: accept and drop.  The shared
            # pre-succeeded event costs neither an allocation nor a heap
            # push at send time.
            return self.sim.done
        if len(self.outbox) < self.outbox_capacity:
            # Accepted immediately: kick the drainer and hand the sender the
            # shared pre-succeeded event — no allocation, no heap push, and
            # the sender's generator resumes synchronously (see
            # Process._resume's processed-event fast path).
            self.outbox.append(element)
            self._kick()
            return self.sim.done
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                "channel.backpressure_blocks", channel=self.name).inc()
        ev = self.sim.event()
        self._send_waiters.append((ev, element))
        return ev

    def try_send(self, element: StreamElement) -> bool:
        """Non-blocking send; False when the outbox is full."""
        if self._closed:
            return True  # accept and drop
        if len(self.outbox) >= self.outbox_capacity:
            return False
        self.outbox.append(element)
        self._kick()
        return True

    def send_front(self, element: StreamElement) -> None:
        """Insert at the *front* of the outbox (priority-in-output-cache).

        Used by confirm barriers: they overtake everything queued in the
        output cache.  Control elements are tiny, so this never blocks.
        """
        self.outbox.appendleft(element)
        self._kick()

    def send_control(self, element: StreamElement) -> None:
        """Priority control-lane send: bypass both caches entirely.

        The element reaches the receiver's control handler after only the
        link propagation latency — this is how trigger barriers bypass all
        in-flight data (§III-A).
        """
        self.sim.call_in(self.link.latency,
                         lambda: self._deliver_control(element))

    def extract_outbox(
            self, predicate: Callable[[StreamElement], bool]
    ) -> List[StreamElement]:
        """Remove and return outbox elements matching ``predicate``.

        Relative order among the extracted elements is preserved; the rest of
        the outbox keeps its order.  Used to redirect bypassed records to a
        newly created channel during confirm-barrier injection.
        """
        kept: Deque[StreamElement] = deque()
        extracted: List[StreamElement] = []
        for element in self.outbox:
            if predicate(element):
                extracted.append(element)
            else:
                kept.append(element)
        self.outbox = kept
        # Also redirect records still *waiting* for outbox space: they were
        # emitted (routed) before the injection, so they belong to the
        # preceding epoch and must travel with the other bypassed records.
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                extracted.append(element)
                if not ev.triggered:
                    ev.succeed()  # accepted — by redirection
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        if extracted:
            self._grant_sends()
        return extracted

    def inject_confirm(self, predicate: Callable[[StreamElement], bool],
                       barrier: StreamElement) -> List[StreamElement]:
        """Priority-in-output-cache barrier insertion with redirection.

        Implements the confirm-barrier placement of §III-A together with
        the fault-tolerance rule of §IV-C (Fig. 9a): the barrier overtakes
        the output cache, the records it bypasses that match ``predicate``
        are removed (returned for redirection), **but redirection concludes
        at the newest checkpoint barrier in the cache** — elements at or
        before that barrier belong to the snapshot's consistent cut and
        stay put, and the confirm barrier lands immediately after it
        (forming the integrated signal).

        Blocked send-waiters are logically behind the whole cache, so
        matching waiter elements are always redirected.
        """
        from .records import CheckpointBarrier

        elements = list(self.outbox)
        cut = -1
        for index, element in enumerate(elements):
            if isinstance(element, CheckpointBarrier):
                cut = index
        kept: List[StreamElement] = []
        bypassed: List[StreamElement] = []
        for index, element in enumerate(elements):
            if index > cut and predicate(element):
                bypassed.append(element)
            else:
                kept.append(element)
        # All elements <= cut were kept, so the checkpoint barrier sits at
        # position `cut` in `kept`; the confirm barrier goes right after it
        # (or at the very front when there is no checkpoint barrier).
        kept.insert(cut + 1, barrier)
        self.outbox = deque(kept)
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                bypassed.append(element)
                if not ev.triggered:
                    ev.succeed()
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        self._grant_sends()
        self._kick()
        return bypassed

    @property
    def queued(self) -> int:
        """Elements in the outbox plus in flight (for diagnostics)."""
        return len(self.outbox) + self._in_flight

    @property
    def backlog(self) -> int:
        """Total unconsumed elements on this channel end-to-end."""
        inbox = len(self.input_channel.queue) if self.input_channel else 0
        return len(self.outbox) + self._in_flight + inbox

    def flush(self) -> None:
        """Discard everything queued or in flight (failure recovery).

        The outbox empties, blocked senders are released with their
        elements dropped, in-flight deliveries are invalidated, and flow-
        control credits reset to a full window.
        """
        self._epoch += 1
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self.credits = self.inbox_capacity
        self._kick()

    def close(self) -> None:
        """Stop the channel: the drainer exits, queued and future sends are
        dropped, and any blocked sender is released."""
        self._closed = True
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self._kick()

    # -- receiver attachment -------------------------------------------------

    def attach(self, input_channel: "InputChannel") -> None:
        self.input_channel = input_channel
        input_channel.channel = self
        self._kick()

    def _return_credit(self) -> None:
        self.credits += 1
        self._kick()

    # -- internals -------------------------------------------------------------

    def _grant_sends(self) -> None:
        while self._send_waiters and len(self.outbox) < self.outbox_capacity:
            waiter, element = self._send_waiters.popleft()
            if waiter.triggered:
                continue
            self.outbox.append(element)
            waiter.succeed()
            self._kick()

    def _kick(self) -> None:
        """Wake the drainer (the old drain Signal's ``fire()``).

        The wake-up must go through the heap, not run inline: an element
        sent at time T stays in the output cache until the drain *event*
        dispatches, so same-timestamp ``send_front``/``inject_confirm``/
        ``extract_outbox`` can still overtake or redirect it — the cache
        semantics every bypass protocol in the paper relies on.

        Two classes of wake-up are dropped without scheduling anything:

        * The drainer is not parked.  A scheduled-or-running drain pass is
          atomic (no yields), so it re-checks the outbox/credits/attachment
          state the kicker just changed before it exits — the old
          level-triggered pending latch re-checked conditions the loop had
          already seen.
        * The drainer could not make progress anyway (empty outbox, closed,
          no credits, unattached).  Every one of those conditions kicks
          again at the call site that clears it (send/send_front/
          _grant_sends/inject_confirm, close is terminal, pop's credit
          return, attach), so a parked drainer can never be stranded.
        """
        if (self._drain_parked and not self._closed and self.outbox
                and self.input_channel is not None):
            if self.credits <= 0:
                if self.telemetry is not None:
                    # The drain pass this kick would have started would
                    # have stalled on flow control; count it here since
                    # the pass itself is elided.
                    self.telemetry.registry.counter(
                        "channel.credit_stalls", channel=self.name).inc()
                return
            self._drain_parked = False
            sim = self.sim
            sim.schedule_entry(sim._now, self._drain_entry)

    def _drain_loop(self) -> None:
        """Serialize and ship outbox elements until blocked or drained.

        Runs of queued elements are handled in one wake-up: each element
        schedules its own serialize completion (``_ship``), which re-enters
        this loop directly — no per-element Signal round-trip.
        """
        sim = self.sim
        while True:
            if (self._closed or not self.outbox or self.credits <= 0
                    or self.input_channel is None):
                if self._closed:
                    return
                if (self.telemetry is not None and self.outbox
                        and self.credits <= 0
                        and self.input_channel is not None):
                    # Flow control, not emptiness, is stalling the drainer.
                    self.telemetry.registry.counter(
                        "channel.credit_stalls", channel=self.name).inc()
                self._drain_parked = True
                return
            element = self.outbox.popleft()
            if self.telemetry is not None:
                registry = self.telemetry.registry
                registry.counter("channel.elements_shipped",
                                 channel=self.name).inc()
                registry.counter("channel.bytes_shipped",
                                 channel=self.name).inc(element.size_bytes)
            if self._send_waiters:
                self._grant_sends()
            self.credits -= 1
            self._in_flight += 1
            serialize = element.size_bytes / self.link.bandwidth
            if serialize > 0:
                self._serializing = element
                self._serializing_epoch = self._epoch
                sim.schedule_entry(sim._now + serialize, self._ship_entry)
                return
            self._wire.append((element, self._epoch))
            sim.schedule_entry(sim._now + self.link.latency,
                               self._deliver_entry)

    def _ship(self) -> None:
        """Serialize finished: put the element on the wire, keep draining."""
        sim = self.sim
        element, self._serializing = self._serializing, None
        self._wire.append((element, self._serializing_epoch))
        sim.schedule_entry(sim._now + self.link.latency, self._deliver_entry)
        self._drain_loop()

    def _deliver_next(self) -> None:
        element, epoch = self._wire.popleft()
        self._in_flight -= 1
        if epoch != self._epoch:
            return  # flushed while in flight: dropped
        hook = self.fault_hook
        if hook is not None:
            action = hook(self, element)
            if action == "drop":
                self.credits += 1
                self._kick()
                return
            if action == "duplicate" and self.input_channel is not None:
                self.input_channel.deliver(element)
        if self.input_channel is not None:
            self.input_channel.deliver(element)

    def _deliver_control(self, element: StreamElement) -> None:
        if self.input_channel is not None:
            self.input_channel.deliver_control(element)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Channel {self.name} backlog={self.backlog}>"


class InputChannel:
    """The receiver-side view of one channel: the per-channel input cache."""

    __slots__ = ("instance", "name", "queue", "channel", "watermark",
                 "block_tokens", "is_auxiliary")

    def __init__(self, instance: "OperatorInstance", name: str = ""):
        self.instance = instance
        self.name = name
        self.queue: Deque[StreamElement] = deque()
        self.channel: Optional[Channel] = None
        #: Latest watermark seen on this channel.
        self.watermark = float("-inf")
        #: Tokens of the alignments currently blocking this channel; the
        #: channel is readable only when no token is held.  Token-based
        #: blocking lets overlapping alignments (concurrent subscales,
        #: checkpoint + scaling) coexist without releasing each other.
        self.block_tokens: set = set()
        #: True for runtime-created auxiliary channels (re-route paths);
        #: excluded from watermark aggregation, checkpoint alignment and EOS.
        self.is_auxiliary = False

    @property
    def blocked(self) -> bool:
        return bool(self.block_tokens)

    def block(self, token) -> None:
        self.block_tokens.add(token)

    def unblock(self, token) -> None:
        self.block_tokens.discard(token)
        if not self.block_tokens:
            self.instance.wake.fire()

    def deliver(self, element: StreamElement) -> None:
        self.queue.append(element)
        self.instance.wake.fire()

    def deliver_control(self, element: StreamElement) -> None:
        self.instance.on_control(self, element)

    def peek(self) -> Optional[StreamElement]:
        return self.queue[0] if self.queue else None

    def pop(self) -> StreamElement:
        """Consume the head element and return its flow-control credit."""
        element = self.queue.popleft()
        channel = self.channel
        if channel is not None:
            # Inlined _return_credit (hot path).
            channel.credits += 1
            channel._kick()
        return element

    def remove(self, element: StreamElement) -> None:
        """Consume a specific (possibly non-head) element.

        Used by intra-channel scheduling, which may process a later record
        while the head is unprocessable.  Credit accounting matches
        :meth:`pop`.
        """
        self.queue.remove(element)
        if self.channel is not None:
            self.channel._return_credit()

    def note_watermark(self, watermark: Watermark) -> None:
        if watermark.timestamp > self.watermark:
            self.watermark = watermark.timestamp

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<InputChannel {self.name} depth={len(self.queue)}>"
